"""Quickstart: the Selection-Conversion-Extraction pipeline in ~40 lines.

Generates a day of NYC-like taxi events, persists them T-STR-partitioned
with an on-disk metadata index, then runs the three-stage pipeline to
extract an hourly flow profile — the paper's Figure 1b workflow end to
end.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import Duration, EngineContext, Selector, TSTRPartitioner, save_dataset
from repro.core import TimeSeriesStructure
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.datasets import NYC_BBOX, generate_nyc_events
from repro.datasets.common import EPOCH_2013


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-quickstart-"))
    ctx = EngineContext(default_parallelism=8)

    # -- one-off preprocessing: generate + index + persist ---------------------
    events = generate_nyc_events(20_000, seed=7, days=7)
    save_dataset(
        workspace / "nyc",
        events,
        instance_type="event",
        partitioner=TSTRPartitioner(gt=4, gs=4),
        ctx=ctx,
    )
    print(f"persisted {len(events):,} events to {workspace/'nyc'}")

    # -- stage 1: selection -----------------------------------------------------
    manhattan = NYC_BBOX.to_envelope()
    one_day = Duration(EPOCH_2013, EPOCH_2013 + 86_400.0)
    selector = Selector(manhattan, one_day, partitioner=TSTRPartitioner(2, 4))
    selected = selector.select(ctx, workspace / "nyc")
    stats = selector.last_load_stats
    print(
        f"selected {selected.count():,} events "
        f"(read {stats.partitions_read}/{stats.partitions_total} partitions, "
        f"{stats.records_loaded:,} records deserialized)"
    )

    # -- stage 2: conversion ------------------------------------------------------
    slots = TimeSeriesStructure.of_interval(one_day, 3_600.0)
    converted = Event2TsConverter(slots).convert(selected)

    # -- stage 3: extraction -------------------------------------------------------
    flow = TsFlowExtractor().extract(converted)
    print("\nhour  flow")
    for i, count in enumerate(flow.cell_values()):
        print(f"{i:4d}  {'#' * (count // 5)} {count}")

    print("\nengine work:", ctx.metrics.snapshot())


if __name__ == "__main__":
    main()
