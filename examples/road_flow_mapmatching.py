"""Case study 2 (Section 6): road-network flow from camera trajectories.

Sparse camera-derived trajectories are map-matched onto the road network
with the HMM trajectory→trajectory conversion, routes are completed over
uninstrumented segments, and hourly per-segment flows are extracted — the
application the paper notes cannot be built by simply extending GeoSpark
or GeoMesa.

Run:  python examples/road_flow_mapmatching.py
"""

import tempfile
from collections import defaultdict
from pathlib import Path

from repro import Duration, EngineContext, Envelope, save_dataset
from repro.apps import case_road_flow
from repro.datasets import generate_hangzhou_case


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-roadflow-"))
    ctx = EngineContext(default_parallelism=8)

    case = generate_hangzhou_case(
        n_vehicles=400, seed=5, grid_rows=10, grid_cols=10, camera_fraction=0.5
    )
    save_dataset(workspace / "hz", case.trajectories, instance_type="trajectory", ctx=ctx)
    pts = [len(t.entries) for t in case.trajectories]
    print(
        f"{len(case.trajectories)} camera trajectories, "
        f"avg {sum(pts)/len(pts):.1f} points each, "
        f"{case.network.n_segments} road segments, "
        f"{len(case.camera_nodes)} instrumented junctions"
    )

    area = Envelope(120.10, 30.23, 120.25, 30.35)
    day = Duration(0.0, 86_400.0)
    flows = case_road_flow.run_st4ml(
        ctx, workspace / "hz", case.network, area, day
    )
    summary = case_road_flow.flow_summary(flows)
    print(
        f"\nflow inferred on {summary['segments_covered']} segments "
        f"(total flow {summary['total_flow']}, peak hour {summary['peak_hour']})"
    )

    per_hour: dict[int, int] = defaultdict(int)
    for (_, hour), count in flows.items():
        per_hour[hour] += count
    print("\nhour  network flow")
    for hour in sorted(per_hour):
        print(f"{hour:4d}  {'#' * (per_hour[hour] // 20)} {per_hour[hour]}")


if __name__ == "__main__":
    main()
