"""Streaming ingestion with watermarks and incremental extraction.

The paper's §4.1 discussion ("periodically index the new group of data
and merge the metadata file with the existing ones") is the batch half;
this example runs the full streaming loop on top of it: a week of
NYC-like events arrives one day at a time through ``StDataset.ingest``
— each micro-batch T-STR-fitted into its own blocks, the persisted
watermark advancing with every commit — while
``Pipeline.run_incremental`` keeps a week-long hourly-flow feature
current by extracting *only the new blocks* after each ingest.

The exit condition is the incremental-parity gate: the incrementally
maintained feature must equal — bit for bit — a from-scratch batch run
over the full week.  The example raises if it doesn't.

Run:  python examples/periodic_ingestion.py
"""

import tempfile
from pathlib import Path

from repro import Duration, EngineContext, Pipeline, Selector, StDataset, TSTRPartitioner
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.core.structures import TimeSeriesStructure
from repro.datasets import NYC_BBOX, generate_nyc_events
from repro.datasets.common import EPOCH_2013
from repro.viz import render_time_series

DAYS = 7
EVENTS_PER_DAY = 4_000


def day_events(day: int) -> list:
    """One day's batch (each day generated with its own seed)."""
    events = generate_nyc_events(EVENTS_PER_DAY, seed=500 + day, days=1,
                                 start=EPOCH_2013 + day * 86_400.0)
    return events


def make_pipeline(window: Duration) -> Pipeline:
    """The week-long hourly-flow pipeline (no partitioner: incremental
    runs bank one partial per on-disk block, so the layout must stay
    block-aligned — exactly what a plain Selector preserves)."""
    slots = TimeSeriesStructure.of_interval(window, 3_600.0)
    return Pipeline(
        selector=Selector(NYC_BBOX.to_envelope(), window),
        converter=Event2TsConverter(slots),
        extractor=TsFlowExtractor(),
    )


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-periodic-"))
    ctx = EngineContext(default_parallelism=8)
    dataset_dir = workspace / "nyc_stream"
    week = Duration(EPOCH_2013, EPOCH_2013 + DAYS * 86_400.0)

    # -- the streaming loop: ingest a day, extend the feature ------------------
    ds = StDataset(dataset_dir)
    pipeline = make_pipeline(week)
    state = None
    for day in range(DAYS):
        report = ds.ingest(
            day_events(day),
            partitioner=TSTRPartitioner(1, 4),
            instance_type="event",
        )
        run = pipeline.run_incremental(ctx, dataset_dir, state=state)
        state = run.state
        print(
            f"day {day}: ingested {report.records:,} events "
            f"(+{report.blocks_added} blocks, generation {report.generation}, "
            f"watermark {report.watermark:.0f}); incremental run extracted "
            f"{run.blocks_selected} new blocks"
        )

    meta = ds.metadata()
    print(
        f"\nweek ingested: {meta.total_records:,} records in "
        f"{len(meta.partitions)} blocks, watermark {meta.watermark:.0f}"
    )

    # -- the parity gate: incremental must equal from-scratch batch ------------
    batch = make_pipeline(week).run(ctx, dataset_dir)
    incremental = run.result
    if incremental.cell_values() != batch.cell_values():
        raise AssertionError(
            "incremental-vs-batch parity violated: the incrementally "
            "maintained feature differs from a from-scratch run"
        )
    print("parity gate: incremental output == from-scratch batch run ✓")

    # Selection over one mid-week day still reads only that day's blocks.
    target_day = 3
    window = Duration(EPOCH_2013 + target_day * 86_400.0,
                      EPOCH_2013 + (target_day + 1) * 86_400.0)
    selector = Selector(NYC_BBOX.to_envelope(), window)
    selected = selector.select(ctx, dataset_dir)
    stats = selector.last_load_stats
    print(f"\nday-{target_day} selection: {selected.count():,} events, read "
          f"{stats.partitions_read}/{stats.partitions_total} partitions "
          f"({stats.records_loaded:,} records deserialized)")

    # Hourly flow of that day, rendered as a sparkline.
    slots = TimeSeriesStructure.of_interval(window, 3_600.0)
    flow = TsFlowExtractor().extract(Event2TsConverter(slots).convert(selected))
    print(render_time_series(flow, title=f"day-{target_day} hourly flow"))


if __name__ == "__main__":
    main()
