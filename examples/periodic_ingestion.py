"""Periodic indexing of continuously generated data (paper §4.1 discussion).

"In scenarios where data are continuously generated, application
programmers may periodically index the new group of data and merge the
metadata file with the existing ones."  This example ingests a week of
NYC-like events one day at a time, appending each day's T-STR-partitioned
batch to the same dataset, then shows that a selection over any day reads
only that day's partitions.

Run:  python examples/periodic_ingestion.py
"""

import tempfile
from pathlib import Path

from repro import Duration, EngineContext, Selector, StDataset, TSTRPartitioner, save_dataset
from repro.datasets import NYC_BBOX, generate_nyc_events
from repro.datasets.common import EPOCH_2013
from repro.viz import render_time_series
from repro.core.converters import Event2TsConverter
from repro.core.extractors import TsFlowExtractor
from repro.core.structures import TimeSeriesStructure

DAYS = 7
EVENTS_PER_DAY = 4_000


def day_events(day: int) -> list:
    """One day's batch (each day generated with its own seed)."""
    events = generate_nyc_events(EVENTS_PER_DAY, seed=500 + day, days=1,
                                 start=EPOCH_2013 + day * 86_400.0)
    return events


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-periodic-"))
    ctx = EngineContext(default_parallelism=8)
    dataset_dir = workspace / "nyc_stream"

    # Day 0 creates the dataset; days 1..6 append with merged metadata.
    save_dataset(dataset_dir, day_events(0), "event",
                 partitioner=TSTRPartitioner(1, 4), ctx=ctx)
    ds = StDataset(dataset_dir)
    for day in range(1, DAYS):
        batch = day_events(day)
        ds.append_rdd(ctx.parallelize(batch, 4), partitioner=TSTRPartitioner(1, 4))
        meta = ds.metadata()
        print(f"day {day}: appended {len(batch):,} events "
              f"(total {meta.total_records:,} in {len(meta.partitions)} partitions)")

    # Select one mid-week day: only that day's partitions are read.
    target_day = 3
    window = Duration(EPOCH_2013 + target_day * 86_400.0,
                      EPOCH_2013 + (target_day + 1) * 86_400.0)
    selector = Selector(NYC_BBOX.to_envelope(), window)
    selected = selector.select(ctx, dataset_dir)
    n = selected.count()
    stats = selector.last_load_stats
    print(f"\nday-{target_day} selection: {n:,} events, read "
          f"{stats.partitions_read}/{stats.partitions_total} partitions "
          f"({stats.records_loaded:,} records deserialized)")

    # Hourly flow of that day, rendered as a sparkline.
    slots = TimeSeriesStructure.of_interval(window, 3_600.0)
    flow = TsFlowExtractor().extract(Event2TsConverter(slots).convert(selected))
    print(render_time_series(flow, title=f"day-{target_day} hourly flow"))


if __name__ == "__main__":
    main()
