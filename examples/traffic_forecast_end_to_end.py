"""Full STDML loop: raw trajectories → ST4ML features → forecaster.

This is the paper's motivating application (Section 2.1) end to end:

1. vehicle trajectories with a daily rhythm are persisted with a T-STR
   metadata index;
2. ST4ML extracts regional hourly speeds as a (district, hour) raster over
   several days — the ``[A^t0, A^t1, ...]`` matrix sequence;
3. the sequence becomes a supervised sliding-window dataset and a ridge
   forecaster predicts the next hour's city-wide speeds, compared against
   the persist-last-frame baseline.

Run:  python examples/traffic_forecast_end_to_end.py
"""

import math
import random
import tempfile
from pathlib import Path

from repro import Duration, EngineContext, RasterStructure, Selector, TSTRPartitioner, save_dataset
from repro.core.converters import Traj2RasterConverter
from repro.core.extractors import RasterSpeedExtractor
from repro.instances import Trajectory
from repro.ml import (
    RidgeForecaster,
    raster_to_matrix_sequence,
    sliding_window_dataset,
    train_test_split_windows,
)
from repro.ml.forecast import naive_last_value_rmse

GRID = 4          # districts per side
DAYS = 6
HOURS = DAYS * 24
CITY_MIN = (0.0, 0.0)
CITY_DEG = 0.2    # ~20 km city


def rhythmic_trajectories(n: int, seed: int) -> list[Trajectory]:
    """Taxi-like trips whose speed follows a daily rhythm: fast at night,
    slow at rush hour — the signal the forecaster should learn."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        t = rng.uniform(0, DAYS * 86_400.0 - 1800.0)
        hour = (t % 86_400.0) / 3600.0
        congestion = 0.5 + 0.5 * math.cos(2 * math.pi * (hour - 3) / 24)
        speed_kmh = 15 + 35 * congestion + rng.gauss(0, 2)
        heading = rng.uniform(0, 2 * math.pi)
        x = rng.uniform(CITY_MIN[0], CITY_MIN[0] + CITY_DEG)
        y = rng.uniform(CITY_MIN[1], CITY_MIN[1] + CITY_DEG)
        points = []
        for _ in range(12):
            points.append((x, y, t))
            step_deg = speed_kmh / 3.6 * 30.0 / 111_000.0
            x += math.cos(heading) * step_deg
            y += math.sin(heading) * step_deg
            t += 30.0
        out.append(Trajectory.of_points(points, data=f"trip-{i}"))
    return out


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-forecast-"))
    ctx = EngineContext(default_parallelism=8)

    trajectories = rhythmic_trajectories(12_000, seed=9)
    save_dataset(
        workspace / "city", trajectories, "trajectory",
        partitioner=TSTRPartitioner(DAYS, 4), ctx=ctx,
    )

    # Feature extraction: the (district, hour) speed raster over all days.
    from repro.geometry import Envelope

    city = Envelope(CITY_MIN[0], CITY_MIN[1], CITY_MIN[0] + CITY_DEG, CITY_MIN[1] + CITY_DEG)
    window = Duration(0.0, DAYS * 86_400.0)
    raster = RasterStructure.regular(city, window, GRID, GRID, HOURS)

    selected = Selector(city, window).select(ctx, workspace / "city")
    converted = Traj2RasterConverter(raster).convert(selected)
    speeds = RasterSpeedExtractor(unit="kmh").extract(converted)

    tensor = raster_to_matrix_sequence(
        speeds, nx=GRID, ny=GRID, nt=HOURS,
        value_of=lambda v: v[1] if v[1] is not None else 0.0,
    )
    print(f"extracted speed tensor: {tensor.shape} (hours, rows, cols)")

    # Supervised dataset: 24 h of history → next hour, chronological split.
    X, y = sliding_window_dataset(tensor, history=24, horizon=1)
    X_tr, y_tr, X_te, y_te = train_test_split_windows(X, y, 0.75)
    model = RidgeForecaster(alpha=1.0).fit(X_tr, y_tr)

    model_rmse = model.score_rmse(X_te, y_te)
    naive_rmse = naive_last_value_rmse(X_te, y_te, feature_size=GRID * GRID)
    print(f"test windows: {X_te.shape[0]}")
    print(f"ridge forecaster RMSE : {model_rmse:6.2f} km/h")
    print(f"persist-last baseline : {naive_rmse:6.2f} km/h")
    print(f"improvement           : {100 * (1 - model_rmse / naive_rmse):.0f}%")


if __name__ == "__main__":
    main()
