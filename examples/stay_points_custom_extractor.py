"""Custom extraction with the RDD-level APIs of Table 4.

Reproduces the stay-point listing of Section 3.3: a function over *one
trajectory* is lifted to all trajectories in distributed spatial maps via
``mapValuePlus``, wrapped as a custom extractor, and the distributed
results are fetched with ``collectAndMerge``.

Run:  python examples/stay_points_custom_extractor.py
"""

import tempfile
from pathlib import Path

from repro import (
    Duration,
    EngineContext,
    InstanceRDD,
    Selector,
    SpatialMapStructure,
    save_dataset,
)
from repro.core.converters import Traj2SmConverter
from repro.core.extractors import CustomExtractor
from repro.core.extractors.trajectory import extract_stay_points
from repro.datasets import PORTO_BBOX, generate_porto_trajectories
from repro.datasets.porto import PORTO_START
from repro.geometry.base import Geometry


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-staypoints-"))
    ctx = EngineContext(default_parallelism=8)

    # Slow-moving, dwell-heavy trajectories so stay points exist.
    trajectories = generate_porto_trajectories(
        800, seed=3, days=2, mean_speed_kmh=4.0, min_points=30, max_points=80
    )
    save_dataset(workspace / "porto", trajectories, instance_type="trajectory", ctx=ctx)

    # Step 1 (the paper's listing): the logic over ONE trajectory.
    def extract_from_one(traj, cell_geometry: Geometry, cell_duration: Duration):
        points = extract_stay_points(traj, distance_meters=200.0, min_duration_seconds=600.0)
        # Keep only stay points inside this cell to avoid double counting
        # when a trajectory spans several cells.
        from repro.geometry import Point

        return [p for p in points if cell_geometry.intersects(Point(p.lon, p.lat))]

    # Step 2: lift it with mapValuePlus and wrap as an extractor.
    def f(rdd):
        def per_cell(values, spatial, temporal):
            out = []
            for traj in values:
                out.extend(extract_from_one(traj, spatial, temporal))
            return out

        return InstanceRDD(rdd).map_value_plus(per_cell)

    extractor = CustomExtractor(f)

    # Pipeline: select → convert to spatial map → custom extraction.
    city = PORTO_BBOX.to_envelope()
    window = Duration(PORTO_START, PORTO_START + 2 * 86_400.0)
    selected = Selector(city, window).select(ctx, workspace / "porto")
    spatial_map = Traj2SmConverter(SpatialMapStructure.regular(city, 8, 8)).convert(selected)
    extracted = extractor.extract(spatial_map)

    # Step 3: collectAndMerge, exactly as in the paper's listing.
    all_stay_points = extracted.collect_and_merge([], lambda acc, v: acc + v)
    print(f"{selected.count()} trajectories → {len(all_stay_points)} stay points")
    for p in all_stay_points[:5]:
        print(f"  ({p.lon:.5f}, {p.lat:.5f})  dwell {p.value/60:.1f} min")


if __name__ == "__main__":
    main()
