"""The paper's running example (Section 3.4): traffic speed on a raster.

Porto-like vehicle trajectories are selected for a city area and a day,
converted to a (district, hour) raster, and the built-in
RasterSpeedExtractor returns (vehicle count, average km/h) per cell —
ready to be fed as the [A^t0, A^t1, ...] matrix sequence of a traffic
forecasting model.

Run:  python examples/traffic_speed_raster.py
"""

import tempfile
from pathlib import Path

from repro import Duration, EngineContext, RasterStructure, Selector, TSTRPartitioner, save_dataset
from repro.core.converters import Traj2RasterConverter
from repro.core.extractors import RasterSpeedExtractor
from repro.datasets import PORTO_BBOX, generate_porto_trajectories
from repro.datasets.porto import PORTO_START

DISTRICTS_PER_SIDE = 6
HOURS = 24


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-raster-"))
    ctx = EngineContext(default_parallelism=8)

    trajectories = generate_porto_trajectories(3_000, seed=11, days=3)
    save_dataset(
        workspace / "porto",
        trajectories,
        instance_type="trajectory",
        partitioner=TSTRPartitioner(gt=3, gs=4),
        ctx=ctx,
    )

    # The operators of the Section 3.4 listing, in order.
    city_area = PORTO_BBOX.to_envelope()
    day = Duration(PORTO_START, PORTO_START + 86_400.0)
    raster = RasterStructure.regular(
        city_area, day, DISTRICTS_PER_SIDE, DISTRICTS_PER_SIDE, HOURS
    )
    selector = Selector(city_area, day, partitioner=TSTRPartitioner(2, 4))
    converter = Traj2RasterConverter(raster)
    extractor = RasterSpeedExtractor(unit="kmh")

    traj_rdd = selector.select(ctx, workspace / "porto")
    raster_rdd = converter.convert(traj_rdd)
    speeds = extractor.extract(raster_rdd)

    # Reshape to the model-input matrix sequence: one matrix per hour.
    values = speeds.cell_values()  # cell order: spatial row-major, then hour
    print(f"selected {traj_rdd.count():,} trajectories")
    for hour in (8, 18):
        print(f"\naverage speed (km/h), hour {hour}:")
        for row in range(DISTRICTS_PER_SIDE):
            line = []
            for col in range(DISTRICTS_PER_SIDE):
                cell = (row * DISTRICTS_PER_SIDE + col) * HOURS + hour
                count, avg = values[cell]
                line.append(f"{avg:5.1f}" if avg is not None else "    -")
            print("  ".join(line))

    print("\nconversion work:", converter.stats.snapshot())


if __name__ == "__main__":
    main()
