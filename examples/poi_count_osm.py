"""POI statistics over irregular postal areas — the preMap/agg extension.

Reproduces the customized-conversion listing of Section 3.2.2: check-in /
POI events are converted to a spatial map of *regional per-type counts*
using the ``pre_map`` and ``agg`` extension points, over an irregular
polygon structure (so the broadcast R-tree conversion path is exercised).

Run:  python examples/poi_count_osm.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro import EngineContext, Selector, SpatialMapStructure, save_dataset
from repro.core.converters import Event2SmConverter
from repro.datasets import generate_osm_areas, generate_osm_pois
from repro.datasets.osm import OSM_BBOX
from repro.temporal import Duration


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="st4ml-poi-"))
    ctx = EngineContext(default_parallelism=8)

    pois = generate_osm_pois(10_000, seed=23)
    areas = generate_osm_areas(6, 4, seed=23)
    save_dataset(workspace / "osm", pois, instance_type="event", ctx=ctx)

    # The Section 3.2.2 listing: keep only the "type" attribute (preMap),
    # aggregate per-type counts per cell (agg).
    pre_map = lambda poi: poi.map_values(lambda attrs: attrs["type"])  # noqa: E731

    def agg(events: list) -> dict:
        return dict(Counter(ev.value for ev in events))

    selector = Selector(OSM_BBOX.to_envelope(), Duration(-1.0, 1.0))
    converter = Event2SmConverter(SpatialMapStructure(areas))
    selected = selector.select(ctx, workspace / "osm")

    # Array style: no agg — each cell holds the allocated events, merged
    # across partitions by concatenation.
    arrays = converter.convert_merged(selected, pre_map=pre_map)
    print(f"{len(pois):,} POIs over {len(areas)} postal areas")
    for cell_id, arr in enumerate(arrays.cell_values()[:5]):
        counts = Counter(ev.value for ev in arr)
        top = ", ".join(f"{t}={n}" for t, n in counts.most_common(3))
        print(f"  area {cell_id:3d}: {len(arr):5d} POIs   top types: {top}")

    # The agg style: counts computed inside the conversion, no arrays kept.
    partials = converter.convert(selected, pre_map=pre_map, agg=agg)
    merged = partials.reduce(
        lambda a, b: a.merge_with(b, lambda x, y: dict(Counter(x) + Counter(y)))
    )
    total = sum(sum(v.values()) for v in merged.cell_values())
    print(f"\nagg-style conversion allocated {total:,} POIs into cells")
    print("conversion work:", converter.stats.snapshot())


if __name__ == "__main__":
    main()
