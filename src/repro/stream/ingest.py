"""Micro-batch ingestion: incremental T-STR maintenance + the watermark.

ST4ML's batch story ends at :meth:`~repro.stio.dataset.StDataset.append`
— Section 4.1's "periodically index the new group of data and merge the
metadata file".  This module is the streaming front door built on it:

* :func:`ingest_batch` indexes one micro-batch *by itself* (T-STR fit on
  the batch — new temporal slices get new cells; resident blocks are
  never touched), appends the resulting blocks, and advances the
  persisted **watermark** in the same atomic metadata commit that
  publishes the new partitions and generation;
* when the block count crosses an explicit ``rebalance_threshold``,
  :func:`compact_dataset` rewrites the whole dataset under one fresh
  partition fit — the safety valve that keeps a long-lived feed from
  accumulating thousands of sliver blocks.

Crash safety is write-ordering, not locking: block files land first,
metadata last, and :meth:`~repro.stio.metadata.DatasetMetadata.save` is
an atomic replace — a crashed ingest leaves at worst orphan blocks the
metadata never names (invisible to every reader, reclaimed by the next
compaction's orphan sweep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.obs.tracer import current_tracer
from repro.stio.metadata import METADATA_FILENAME

if TYPE_CHECKING:  # pragma: no cover
    from repro.instances.base import Instance
    from repro.partitioners.base import STPartitioner
    from repro.stio.dataset import StDataset


@dataclass(frozen=True)
class IngestReport:
    """What one :func:`ingest_batch` call did, for callers and tests.

    ``watermark_lag`` is event-time staleness: how far the batch's oldest
    record sits behind the post-ingest watermark (0.0 for a batch of
    strictly new data).  ``late_records`` counts records whose end time
    is at or below the *previous* watermark — data that arrived after
    the mark already passed it.  Late data is ingested, never dropped;
    the counters exist so an operator can see it happening.
    """

    records: int
    blocks_added: int
    generation: int
    watermark: float | None
    previous_watermark: float | None
    late_records: int
    watermark_lag: float
    compacted: bool
    blocks_compacted: int

    @property
    def advanced(self) -> bool:
        """Did this batch move the watermark forward?"""
        if self.watermark is None:
            return False
        if self.previous_watermark is None:
            return True
        return self.watermark > self.previous_watermark


def _batch_partitions(
    batch: Sequence["Instance"],
    partitioner: "STPartitioner | None",
) -> tuple[list[list], list | None]:
    """Split one micro-batch into its own blocks, driver-side.

    With a partitioner the fit runs on the batch alone — this is the
    incremental T-STR maintenance: the batch's temporal extent gets its
    own fresh slices/cells, and nothing resident moves.  Without one the
    batch becomes a single block.  Empty cells are dropped (a feed's
    batch rarely tiles its fit grid fully; zero-count blocks would only
    be pruned on every read anyway).
    """
    if partitioner is None:
        return [list(batch)], None
    partitioner.fit(list(batch))
    assignments = partitioner.assign_batch(list(batch))
    cells: list[list] = [[] for _ in range(partitioner.num_partitions)]
    for inst, pid in zip(batch, assignments):
        cells[pid].append(inst)
    boundaries = partitioner.boundaries()
    kept = [(c, b) for c, b in zip(cells, boundaries) if c]
    if not kept:
        return [list(batch)], None
    return [c for c, _ in kept], [b for _, b in kept]


def ingest_batch(
    dataset: "StDataset",
    batch: Sequence["Instance"],
    partitioner: "STPartitioner | None" = None,
    rebalance_threshold: int | None = None,
    instance_type: str | None = None,
    block_format: str = "v1",
) -> IngestReport:
    """Append one micro-batch and advance the persisted watermark.

    The first call on a fresh directory creates the dataset
    (``instance_type`` is required then; ``block_format`` picks the
    block layout).  Subsequent calls inherit both from the metadata.
    ``rebalance_threshold``, when given, triggers
    :func:`compact_dataset` once the post-ingest block count exceeds it.

    Tracer counters (when a tracer is installed): ``ingest_batches``,
    ``ingest_records``, ``ingest_late_records``, ``watermark_lag``
    (cumulative event-time lag, seconds), and ``blocks_compacted``.
    """
    from repro.stio.dataset import StDataset

    exists = (dataset.directory / METADATA_FILENAME).exists()
    previous_watermark = dataset.cached_metadata().watermark if exists else None
    if not batch:
        meta = dataset.cached_metadata() if exists else None
        return IngestReport(
            records=0,
            blocks_added=0,
            generation=meta.generation if meta else 0,
            watermark=previous_watermark,
            previous_watermark=previous_watermark,
            late_records=0,
            watermark_lag=0.0,
            compacted=False,
            blocks_compacted=0,
        )

    ends = [inst.temporal_extent.end for inst in batch]
    batch_high = max(ends)
    batch_low = min(ends)
    late = (
        sum(1 for e in ends if e <= previous_watermark)
        if previous_watermark is not None
        else 0
    )
    watermark = (
        batch_high
        if previous_watermark is None
        else max(previous_watermark, batch_high)
    )
    lag = max(0.0, watermark - batch_low)

    partitions, boundaries = _batch_partitions(batch, partitioner)
    if exists:
        dataset.append(partitions, boundaries, watermark=watermark)
    else:
        if instance_type is None:
            raise ValueError(
                "first ingest into a fresh dataset needs instance_type"
            )
        StDataset.write(
            dataset.directory,
            partitions,
            instance_type,
            boundaries=boundaries,
            block_format=block_format,
            watermark=watermark,
        )
    meta = dataset.cached_metadata()

    compacted_blocks = 0
    if (
        rebalance_threshold is not None
        and len(meta.partitions) > rebalance_threshold
    ):
        compacted_blocks = compact_dataset(dataset, partitioner=partitioner)
        meta = dataset.cached_metadata()

    tracer = current_tracer()
    if tracer is not None:
        tracer.counter("ingest_batches", 1)
        tracer.counter("ingest_records", len(batch))
        if late:
            tracer.counter("ingest_late_records", late)
        tracer.counter("watermark_lag", lag)
        # blocks_compacted is counted inside compact_dataset itself.

    return IngestReport(
        records=len(batch),
        blocks_added=len(partitions),
        generation=meta.generation,
        watermark=meta.watermark,
        previous_watermark=previous_watermark,
        late_records=late,
        watermark_lag=lag,
        compacted=compacted_blocks > 0,
        blocks_compacted=compacted_blocks,
    )


def compact_dataset(
    dataset: "StDataset",
    partitioner: "STPartitioner | None" = None,
) -> int:
    """Rewrite the whole dataset under one fresh partition fit.

    The rebalance arm of ingestion: reads every block, refits the
    partitioner on the *full* resident population (a default
    ``TSTRPartitioner(≈√blocks, 1)`` when none is given), and rewrites
    in place.  Codec, block format, and — crucially — the watermark are
    preserved; the generation bumps (an in-place rewrite is an edit) and
    orphan blocks from the old layout are removed.  Returns the number
    of blocks the rewrite replaced.
    """
    from repro.partitioners.tstr import TSTRPartitioner
    from repro.stio.dataset import StDataset

    meta = dataset.metadata()
    replaced = len(meta.partitions)
    records: list = []
    for part in meta.partitions:
        records.extend(
            dataset.read_block(
                part, codec=meta.codec, block_format=meta.block_format
            )
        )
    if not records:
        return 0
    if partitioner is None:
        partitioner = TSTRPartitioner(max(1, math.isqrt(replaced)), 1)
    partitions, boundaries = _batch_partitions(records, partitioner)
    StDataset.write(
        dataset.directory,
        partitions,
        meta.instance_type,
        boundaries=boundaries,
        codec=meta.codec,
        block_format=meta.block_format,
        watermark=meta.watermark,
    )
    tracer = current_tracer()
    if tracer is not None:
        tracer.counter("blocks_compacted", replaced)
    return replaced
