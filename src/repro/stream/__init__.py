"""Streaming: micro-batch ingestion, watermarks, incremental pipelines.

The streaming layer turns the batch reproduction into something that can
sit behind a feed, in three pieces:

* **ingestion** (:mod:`repro.stream.ingest`) —
  :meth:`StDataset.ingest(batch) <repro.stio.dataset.StDataset.ingest>`
  appends each micro-batch as its own T-STR-fitted blocks and advances a
  persisted watermark in one atomic metadata commit, compacting when a
  rebalance threshold trips;
* **incremental runs** (:mod:`repro.stream.incremental`) —
  :meth:`Pipeline.run_incremental <repro.core.pipeline.Pipeline.run_incremental>`
  selects/converts/extracts only new-since-last-run blocks and merges
  them into running state, bit-identically to a batch run over the
  union;
* **windowed extractors** (:mod:`repro.stream.windows`) — tumbling and
  sliding flow/speed features whose state survives worker loss through
  :class:`~repro.engine.faults.PipelineCheckpoint`.

See ``docs/streaming.md`` for the worked walkthrough.
"""

from repro.stream.incremental import (
    IncrementalRun,
    StaleStreamStateError,
    StreamState,
    run_incremental,
)
from repro.stream.ingest import IngestReport, compact_dataset, ingest_batch
from repro.stream.windows import (
    WindowedExtractor,
    WindowedFlowExtractor,
    WindowedSpeedExtractor,
)

__all__ = [
    "IncrementalRun",
    "IngestReport",
    "StaleStreamStateError",
    "StreamState",
    "WindowedExtractor",
    "WindowedFlowExtractor",
    "WindowedSpeedExtractor",
    "compact_dataset",
    "ingest_batch",
    "run_incremental",
]
