"""Windowed extractors: tumbling and sliding aggregates over a feed.

The batch extractors answer "features per structure cell, once"; these
answer "features per time window, continuously".  A windowed extractor
is a stateful operator: each :meth:`~WindowedExtractor.update` folds one
selected RDD (typically the new-since-watermark slice of a feed) into a
per-window partial map, and :meth:`~WindowedExtractor.features`
finalizes whatever windows exist so far.  Windows are half-open
``[start, start + size)`` and laid out on a fixed ``origin``/``step``
grid, so assignment is pure index arithmetic — no record is ever
double-counted by a tumbling grid, and a sliding grid (``step < size``)
overlaps by design.

State is plain picklable data and checkpoints through
:class:`~repro.engine.faults.PipelineCheckpoint`
(:meth:`~WindowedExtractor.checkpoint` / :meth:`~WindowedExtractor.restore`),
with the same write-ordering guarantee as pipeline phases: blocks first,
``_COMPLETE`` marker last — a crash mid-checkpoint resumes from the
previous complete state.  Merging per-partition window maps happens
driver-side in partition order, so results are deterministic across
backends and under chaos-injected worker loss (the engine's retry path
recomputes partitions, it never reorders them).
"""

from __future__ import annotations

import math
from typing import Any

from repro.engine.rdd import RDD
from repro.instances.trajectory import Trajectory
from repro.temporal.duration import Duration

#: Checkpoint phase name used by default.
WINDOW_PHASE = "windows"


class WindowedExtractor:
    """Base of the windowed family: a keyed partial map over a window grid.

    Parameters
    ----------
    origin:
        Epoch time where window index 0 starts.
    size:
        Window length, seconds.
    step:
        Grid stride, seconds; ``None`` (default) means tumbling
        (``step == size``), smaller values slide.

    Subclasses define the per-record ``contribution`` (record + window →
    partial or ``None``), the commutative/associative ``combine``, and
    the final ``finish``.
    """

    #: "center" assigns a record to the window(s) containing its temporal
    #: center; "span" assigns to every window its temporal extent overlaps.
    assign: str = "center"

    def __init__(self, origin: float, size: float, step: float | None = None):
        if size <= 0:
            raise ValueError("window size must be positive")
        if step is not None and step <= 0:
            raise ValueError("window step must be positive")
        self.origin = float(origin)
        self.size = float(size)
        self.step = float(step) if step is not None else float(size)
        #: window index → partial aggregate (driver-side state).
        self.windows: dict[int, Any] = {}
        self.records_seen = 0
        self.updates = 0

    # -- subclass hooks ------------------------------------------------------------

    def contribution(self, inst, window: Duration) -> Any | None:
        """One record's partial for one window (``None`` contributes nothing)."""
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Any:
        """Merge two window partials."""
        raise NotImplementedError

    def finish(self, partial: Any) -> Any:
        """Partial → final feature (identity by default)."""
        return partial

    # -- the window grid ----------------------------------------------------------

    def window_duration(self, index: int) -> Duration:
        """The half-open window ``[origin + index*step, … + size)`` as a
        closed :class:`Duration` (its printable/query form)."""
        start = self.origin + index * self.step
        return Duration(start, start + self.size)

    def _indices(self, lo: float, hi: float) -> range:
        """Grid indices whose half-open window intersects ``[lo, hi]``.

        ``k`` qualifies iff ``origin + k*step <= hi`` and
        ``lo < origin + k*step + size``.
        """
        k_max = math.floor((hi - self.origin) / self.step)
        k_min = math.floor((lo - self.origin - self.size) / self.step) + 1
        return range(k_min, k_max + 1)

    # -- updating ------------------------------------------------------------------

    def update(self, rdd: RDD) -> int:
        """Fold one selected RDD into the window state; returns records seen.

        The per-partition pass builds a window→partial dict worker-side
        (closures capture only plain config and the subclass's pure
        hooks); dicts merge into ``self.windows`` driver-side, in
        partition order.
        """
        by_center = self.assign == "center"
        indices = self._indices
        window_of = self.window_duration
        contribution = self.contribution
        combine = self.combine

        def fold(partition: list) -> list:
            local: dict[int, Any] = {}
            count = 0
            for inst in partition:
                count += 1
                extent = inst.temporal_extent
                if by_center:
                    center = extent.center
                    ks = indices(center, center)
                else:
                    ks = indices(extent.start, extent.end)
                for k in ks:
                    part = contribution(inst, window_of(k))
                    if part is None:
                        continue
                    local[k] = (
                        combine(local[k], part) if k in local else part
                    )
            return [(local, count)]

        folded = rdd.map_partitions(fold)._collect_partitions()
        seen = 0
        for partition in folded:
            if not partition:
                continue
            local, count = partition[0]
            seen += count
            for k in sorted(local):
                if k in self.windows:
                    self.windows[k] = self.combine(self.windows[k], local[k])
                else:
                    self.windows[k] = local[k]
        self.records_seen += seen
        self.updates += 1
        return seen

    # -- results -------------------------------------------------------------------

    def features(self) -> list[tuple[Duration, Any]]:
        """Finalized ``(window, feature)`` pairs, in window order."""
        return [
            (self.window_duration(k), self.finish(self.windows[k]))
            for k in sorted(self.windows)
        ]

    # -- checkpointing -------------------------------------------------------------

    def _payload(self) -> dict:
        return {
            "origin": self.origin,
            "size": self.size,
            "step": self.step,
            "windows": dict(self.windows),
            "records_seen": self.records_seen,
            "updates": self.updates,
        }

    def checkpoint(self, ckpt, phase: str = WINDOW_PHASE) -> None:
        """Persist the window state through a :class:`PipelineCheckpoint`.

        The state rides as one raw-pickle block, inheriting the
        checkpoint store's torn-write protection (marker written last).
        """
        ckpt.save(phase, ckpt.ctx.parallelize([self._payload()], 1))

    def restore(self, ckpt, phase: str = WINDOW_PHASE) -> bool:
        """Load state saved by :meth:`checkpoint`; False when absent.

        Refuses (``ValueError``) to restore state from a different
        window grid — silently merging grids would mislabel every
        feature.
        """
        if not ckpt.has(phase):
            return False
        rows = ckpt.load(phase).collect()
        payload = rows[0]
        grid = (payload["origin"], payload["size"], payload["step"])
        if grid != (self.origin, self.size, self.step):
            raise ValueError(
                f"checkpointed window grid {grid} does not match this "
                f"extractor's {(self.origin, self.size, self.step)}"
            )
        self.windows = dict(payload["windows"])
        self.records_seen = payload["records_seen"]
        self.updates = payload["updates"]
        return True


class WindowedFlowExtractor(WindowedExtractor):
    """Record count per window — the streaming analog of
    :class:`~repro.core.extractors.timeseries.TsFlowExtractor`.

    Assignment is by temporal center, so a tumbling grid counts each
    record exactly once.
    """

    assign = "center"

    def contribution(self, inst, window: Duration) -> int:
        """One record counts once per containing window."""
        return 1

    def combine(self, a: int, b: int) -> int:
        """Counts add."""
        return a + b


class WindowedSpeedExtractor(WindowedExtractor):
    """Mean trajectory speed per window — the streaming analog of
    :class:`~repro.core.extractors.timeseries.TsSpeedExtractor`.

    A trajectory contributes the average speed of its portion inside
    every window its extent overlaps (span assignment); windows with no
    usable portion finalize to ``None``-free absence (they simply don't
    appear).
    """

    assign = "span"

    def __init__(
        self,
        origin: float,
        size: float,
        step: float | None = None,
        unit: str = "kmh",
    ):
        super().__init__(origin, size, step)
        if unit not in ("kmh", "ms"):
            raise ValueError("unit must be 'kmh' or 'ms'")
        self.unit = unit

    def contribution(
        self, inst, window: Duration
    ) -> tuple[float, int] | None:
        """The portion-speed partial of one trajectory in one window."""
        if not isinstance(inst, Trajectory):
            raise TypeError("WindowedSpeedExtractor expects trajectories")
        portion = inst.sub_trajectory(window)
        if portion is None or len(portion.entries) < 2:
            return None
        speed = (
            portion.average_speed_kmh()
            if self.unit == "kmh"
            else portion.average_speed_ms()
        )
        return (speed, 1)

    def combine(
        self, a: tuple[float, int], b: tuple[float, int]
    ) -> tuple[float, int]:
        """(total, count) partials add."""
        return (a[0] + b[0], a[1] + b[1])

    def finish(self, partial: tuple[float, int]) -> float:
        """Mean speed of the window."""
        total, count = partial
        return total / count

    def _payload(self) -> dict:
        payload = super()._payload()
        payload["unit"] = self.unit
        return payload
