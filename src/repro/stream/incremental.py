"""Incremental pipeline runs: new-blocks-only Selection→Conversion→Extraction.

The batch pipeline re-reads the whole dataset on every run.  This module
exploits the append-only block layout instead: ingested blocks only ever
land *after* the existing ones, so "everything new since the last run" is
exactly ``partitions[position:]`` — an offset read, with the usual
metadata pruning and v2 query-box pushdown applied on top.

Parity is the contract, not an aspiration.  A no-partitioner selection
preserves the one-partition-per-block layout, conversion emits exactly
one partial collective instance per partition, and
:meth:`~repro.core.extractors.base.CellAggExtractor.merge_partials`
replays ``tree_reduce``'s adjacent pairing over the banked per-block
partials — so K incremental runs produce **bit-identical** features to a
single batch run over the union (``tests/test_stream.py`` gates this on
all three backends, chaos included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.stio.dataset import StDataset
from repro.temporal.duration import Duration

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Pipeline
    from repro.engine.context import EngineContext


class StaleStreamStateError(RuntimeError):
    """The dataset's block layout no longer matches the stream state.

    Raised when the blocks a :class:`StreamState` already consumed were
    rewritten underneath it — a compaction or an in-place repartition.
    Position-based incremental reads are only sound over append-only
    edits; the caller must restart from a fresh state (one full run).
    """


@dataclass
class StreamState:
    """Running state of one incremental pipeline over one dataset.

    ``position`` counts the dataset blocks already consumed (pre-pruning
    — pruned blocks are consumed too, they just contribute nothing).
    ``fingerprint`` is the ``(filename, count)`` of the last consumed
    block: appends never touch it, compaction rewrites it, which is how
    staleness is detected.  ``partials`` holds one unfinalized partial
    collective instance per selected block, in block order — the exact
    inputs ``tree_reduce`` would pair in a batch run.  The whole object
    is plain picklable data, so it checkpoints through
    :class:`~repro.engine.faults.PipelineCheckpoint` as-is.
    """

    position: int = 0
    fingerprint: tuple[str, int] | None = None
    watermark: float | None = None
    generation: int = 0
    partials: list = field(default_factory=list)


@dataclass(frozen=True)
class IncrementalRun:
    """One :meth:`Pipeline.run_incremental` outcome.

    ``result`` is the finalized extraction output over *everything
    consumed so far* (state mode) or over just the new slice (``since``
    mode); ``None`` when nothing has ever been selected.  ``state`` is
    the advanced :class:`StreamState` (state mode only).
    """

    result: Any
    state: StreamState | None
    blocks_new: int
    blocks_selected: int
    records_loaded: int


def _incremental_selector(pipeline: "Pipeline", temporal=None):
    """The pipeline's selector, minus anything that reshapes partitions.

    Incremental extraction banks one partial per on-disk block, so the
    partitioner / num_partitions knobs (pure shuffle-balance levers for
    extraction) are dropped; filtering semantics are kept verbatim.
    """
    from repro.core.selector import Selector

    sel = pipeline.selector
    return Selector(
        spatial=sel.spatial,
        temporal=temporal if temporal is not None else sel.temporal,
        index=sel.index,
        backend=sel.backend,
        use_columnar=sel.use_columnar,
        on_corrupt=sel.on_corrupt,
    )


def _extract_new_partials(
    pipeline: "Pipeline",
    ctx: "EngineContext",
    source,
    use_metadata: bool,
    offset: int,
) -> tuple[list, int, int]:
    """Select/convert/premerge blocks ``[offset:]`` into per-block partials.

    Returns ``(partials, blocks_selected, records_loaded)``.
    """
    sel = _incremental_selector(pipeline)
    selected = sel.select(ctx, source, use_metadata=use_metadata, offset=offset)
    stats = sel.last_load_stats
    if stats is not None and stats.partitions_selected == 0:
        # Every new block pruned: nothing to convert.  (An RDD over zero
        # blocks still has one empty partition, and conversion would
        # dutifully emit a zero partial for it — which a batch run over
        # the union would never see.  Skip instead.)
        return [], 0, 0
    data = selected
    if pipeline.converter is not None:
        data = pipeline.converter.convert(data)
    partials = pipeline.extractor.extract_partials(data)
    return (
        partials,
        stats.partitions_selected if stats is not None else len(partials),
        stats.records_loaded if stats is not None else 0,
    )


def run_incremental(
    pipeline: "Pipeline",
    ctx: "EngineContext",
    source,
    state: StreamState | None = None,
    since: float | None = None,
    use_metadata: bool = True,
) -> IncrementalRun:
    """Run the pipeline over new-since-last-time blocks only.

    Two modes:

    * **state mode** (default; pass the previous run's ``state``, or
      nothing to bootstrap): consumes blocks past ``state.position``,
      banks their partials, and returns features over everything
      consumed so far — bit-identical to a batch run over the union.
    * **since mode** (pass ``since``, typically the watermark persisted
      before the latest ingests): stateless; selects blocks whose
      temporal bounds reach strictly past ``since`` via the ordinary
      metadata pruning (and v2 pushdown), runs the full pipeline over
      just those, and returns that slice's features.  Boundary records
      with end time exactly ``since`` are *excluded* (the watermark is
      the max end already ingested, so they were already processed).

    Requires a directory source (incremental reads are metadata-driven)
    and an extractor with the partial API
    (:class:`~repro.core.extractors.base.CellAggExtractor`).
    """
    if state is not None and since is not None:
        raise ValueError("pass state or since, not both")
    if not isinstance(source, (str, Path)):
        raise TypeError("run_incremental needs an on-disk dataset directory")
    if since is not None:
        return _run_since(pipeline, ctx, source, since, use_metadata)
    if pipeline.extractor is None or not hasattr(
        pipeline.extractor, "extract_partials"
    ):
        raise TypeError(
            "run_incremental needs a CellAggExtractor (an extractor with "
            "mergeable partials); got "
            f"{type(pipeline.extractor).__name__}"
        )

    state = state if state is not None else StreamState()
    ds = StDataset(source)
    meta = ds.cached_metadata()
    blocks = meta.partitions
    if state.position > len(blocks):
        raise StaleStreamStateError(
            f"state consumed {state.position} blocks but the dataset now has "
            f"{len(blocks)} — it was rewritten; restart from a fresh state"
        )
    if state.position:
        last = blocks[state.position - 1]
        if state.fingerprint != (last.filename, last.count):
            raise StaleStreamStateError(
                f"block {state.position - 1} changed underneath the stream "
                f"state (expected {state.fingerprint}, found "
                f"{(last.filename, last.count)}) — the dataset was compacted; "
                "restart from a fresh state"
            )

    blocks_new = len(blocks) - state.position
    new_partials: list = []
    blocks_selected = 0
    records = 0
    if blocks_new:
        new_partials, blocks_selected, records = _extract_new_partials(
            pipeline, ctx, source, use_metadata, state.position
        )
    all_partials = state.partials + new_partials
    new_state = replace(
        state,
        position=len(blocks),
        fingerprint=(
            (blocks[-1].filename, blocks[-1].count) if blocks else None
        ),
        watermark=meta.watermark,
        generation=meta.generation,
        partials=all_partials,
    )
    result = (
        pipeline.extractor.merge_partials(all_partials) if all_partials else None
    )
    tracer = ctx.tracer
    if tracer is not None:
        tracer.counter("incremental_runs", 1)
        tracer.counter("incremental_blocks_new", blocks_new)
        tracer.counter("incremental_blocks_selected", blocks_selected)
    return IncrementalRun(
        result=result,
        state=new_state,
        blocks_new=blocks_new,
        blocks_selected=blocks_selected,
        records_loaded=records,
    )


def _run_since(
    pipeline: "Pipeline",
    ctx: "EngineContext",
    source,
    since: float,
    use_metadata: bool,
) -> IncrementalRun:
    """Stateless since-mode: one pipeline run over the post-``since`` slice."""
    horizon = Duration(math.nextafter(since, math.inf), math.inf)
    sel = pipeline.selector
    temporal = (
        horizon
        if sel.temporal is None
        else sel.temporal.intersection(horizon)
    )
    if temporal is None:
        # The query window ends at or before the watermark: nothing new
        # can ever match.
        return IncrementalRun(
            result=None, state=None, blocks_new=0, blocks_selected=0,
            records_loaded=0,
        )
    inc_sel = _incremental_selector(pipeline, temporal=temporal)
    data = inc_sel.select(ctx, source, use_metadata=use_metadata)
    stats = inc_sel.last_load_stats
    selected = stats.partitions_selected if stats is not None else 0
    if selected == 0:
        return IncrementalRun(
            result=None, state=None, blocks_new=0, blocks_selected=0,
            records_loaded=0,
        )
    if pipeline.converter is not None:
        data = pipeline.converter.convert(data)
    result = (
        pipeline.extractor.extract(data)
        if pipeline.extractor is not None
        else data
    )
    return IncrementalRun(
        result=result,
        state=None,
        blocks_new=selected,
        blocks_selected=selected,
        records_loaded=stats.records_loaded if stats is not None else 0,
    )
