"""Broadcast variables.

In Spark a broadcast ships one read-only copy of a value to every executor.
Our engine runs in one process, so the broadcast is a thin handle — but it
still *meters* the cost: the context records how many broadcasts happened
and how many records each carried, which is what the converter ablation
(broadcast-the-structure vs shuffle-the-data, Section 3.2.2) compares.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value shared by every task."""

    __slots__ = ("_value", "_destroyed", "id")

    _next_id = 0

    def __init__(self, value: T):
        self._value = value
        self._destroyed = False
        self.id = Broadcast._next_id
        Broadcast._next_id += 1

    @property
    def value(self) -> T:
        """The broadcast value; raises after destroy()."""
        if self._destroyed:
            raise ValueError(f"broadcast {self.id} was destroyed")
        return self._value

    def fingerprint(self) -> bytes | None:
        """Digest of the value's pickled form; None when unpicklable.

        The strict-mode sanitizer records this at creation and re-checks it
        after every stage to enforce that broadcasts stay read-only.
        """
        if self._destroyed:
            return None
        try:
            payload = pickle.dumps(self._value)
        except Exception:
            try:
                import cloudpickle

                payload = cloudpickle.dumps(self._value)
            except Exception:
                return None
        return hashlib.blake2b(payload, digest_size=16).digest()

    def destroy(self) -> None:
        """Release the value; further access raises, as in Spark."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "live"
        return f"Broadcast(id={self.id}, {state})"
