"""Runtime lock-order sanitizer — the dynamic half of the concurrency layer.

The REPRO2xx lint rules (:mod:`repro.analysis.concurrency`) reason about
lock discipline statically; this module watches what *actually* happens.
When installed it wraps ``threading.Lock`` / ``threading.RLock`` creation
for callers inside ``repro.*`` modules and, per acquisition:

* records the per-thread stack of held locks (by creation site);
* adds ``held -> acquired`` edges to a global lock-order graph;
* reports a violation when an acquisition closes a cycle in that graph
  (two threads interleaving those sites can deadlock) — raising
  :class:`~repro.engine.errors.LockOrderViolation` in strict mode,
  recording in the default mode;
* always raises on a blocking re-acquire of a non-reentrant lock the
  same thread already holds (certain self-deadlock — raising beats
  hanging, even in record mode);
* measures wait and hold times per creation site, exporting
  ``lock_acquisitions`` / ``lock_contended`` / ``lock_wait_seconds`` /
  ``lock_hold_seconds`` counters and long-hold spans (track ``locks``)
  through the active :mod:`repro.obs` tracer, so ``repro trace`` shows
  contention next to task spans.

Enablement:

* ``EngineContext(strict=True)`` installs the watcher alongside the
  stage sanitizer;
* ``REPRO_LOCK_SANITIZER=1`` installs it at ``import repro`` time (how
  the CI ``lock-sanitizer`` job runs the serve and executor suites);
* ``repro locks script.py`` runs a workload under it and prints the
  order-graph report;
* ``lockwatch.enabled()`` / ``lockwatch.watched()`` give tests and
  notebooks scoped, explicit control.

``REPRO_LOCK_GRAPH_OUT=<path>`` dumps the order graph, per-site stats,
and violations as JSON at interpreter exit.  ``REPRO_LOCK_HOLD_SECONDS``
tunes the long-hold span threshold (default 0.05s).
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.engine.errors import LockOrderViolation

#: The real factories, saved before any monkey-patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_enabled() -> bool:
    """True when ``REPRO_LOCK_SANITIZER`` asks for install-at-import."""
    return os.environ.get("REPRO_LOCK_SANITIZER", "").strip().lower() in _TRUTHY


def _hold_threshold() -> float:
    raw = os.environ.get("REPRO_LOCK_HOLD_SECONDS", "")
    try:
        return float(raw) if raw else 0.05
    except ValueError:
        return 0.05


@dataclass
class SiteStats:
    """Aggregate counters for one lock creation site."""

    acquisitions: int = 0
    contended: int = 0
    wait_seconds: float = 0.0
    hold_seconds: float = 0.0
    max_hold_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "wait_seconds": round(self.wait_seconds, 6),
            "hold_seconds": round(self.hold_seconds, 6),
            "max_hold_seconds": round(self.max_hold_seconds, 6),
        }


@dataclass(frozen=True)
class Violation:
    """One detected hazard: a lock-order cycle or a self-deadlock."""

    kind: str  # "lock-order-cycle" | "self-deadlock"
    cycle: tuple[str, ...]
    thread: str
    message: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "cycle": list(self.cycle),
            "thread": self.thread,
            "message": self.message,
        }


class _HeldEntry:
    """One frame of a thread's held-lock stack."""

    __slots__ = ("lock_id", "site", "since", "wall_since", "count", "waited", "contended")

    def __init__(self, lock_id: int, site: str, waited: float, contended: bool):
        self.lock_id = lock_id
        self.site = site
        self.since = time.perf_counter()
        self.wall_since = time.time()
        self.count = 1  # reentrant depth (RLock)
        self.waited = waited
        self.contended = contended


class LockWatcher:
    """Global acquisition recorder: order graph, per-site stats, violations."""

    def __init__(self) -> None:
        # The watcher's own lock must be a *real* lock: watching it would
        # recurse through note_acquired forever.
        self._lock = _REAL_LOCK()
        self._local = threading.local()
        #: site -> set of sites acquired while holding it
        self.edges: dict[str, set[str]] = {}
        self.stats: dict[str, SiteStats] = {}
        self.violations: list[Violation] = []
        self._seen_cycles: set[frozenset[str]] = set()
        self.raise_on_cycle = False
        self.hold_threshold = _hold_threshold()

    # -- per-thread state ------------------------------------------------

    def _stack(self) -> list[_HeldEntry]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _in_hook(self) -> bool:
        return getattr(self._local, "in_hook", False)

    @contextmanager
    def _hook_guard(self) -> Iterator[None]:
        # Tracer internals take their own (watched) lock; the guard makes
        # the nested acquire pass through without recursing into hooks.
        self._local.in_hook = True
        try:
            yield
        finally:
            self._local.in_hook = False

    # -- recording -------------------------------------------------------

    def held_entry(self, lock_id: int) -> _HeldEntry | None:
        for entry in reversed(self._stack()):
            if entry.lock_id == lock_id:
                return entry
        return None

    def note_acquired(
        self, lock_id: int, site: str, waited: float, contended: bool
    ) -> Violation | None:
        """Record an acquisition; return a Violation if it closed a cycle."""
        stack = self._stack()
        violation: Violation | None = None
        with self._lock:
            stats = self.stats.setdefault(site, SiteStats())
            stats.acquisitions += 1
            stats.wait_seconds += waited
            if contended:
                stats.contended += 1
            for entry in stack:
                if entry.site != site:
                    self.edges.setdefault(entry.site, set()).add(site)
            if stack:
                cycle = self._find_cycle(site, {e.site for e in stack})
                if cycle is not None:
                    key = frozenset(cycle)
                    if key not in self._seen_cycles:
                        self._seen_cycles.add(key)
                        violation = Violation(
                            kind="lock-order-cycle",
                            cycle=cycle,
                            thread=threading.current_thread().name,
                            message=(
                                "lock-order cycle detected: "
                                + " -> ".join(cycle)
                                + " (threads interleaving these sites can "
                                "deadlock; pick one global order)"
                            ),
                        )
                        self.violations.append(violation)
        stack.append(_HeldEntry(lock_id, site, waited, contended))
        return violation

    def note_self_deadlock(self, site: str) -> Violation:
        violation = Violation(
            kind="self-deadlock",
            cycle=(site, site),
            thread=threading.current_thread().name,
            message=(
                f"thread {threading.current_thread().name!r} blocking-"
                f"reacquires non-reentrant lock {site} it already holds; "
                f"this deadlocks unconditionally (use RLock or restructure)"
            ),
        )
        with self._lock:
            self.violations.append(violation)
        return violation

    def note_released(self, lock_id: int) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].lock_id == lock_id:
                entry = stack.pop(i)
                break
        else:
            return
        held = time.perf_counter() - entry.since
        with self._lock:
            stats = self.stats.setdefault(entry.site, SiteStats())
            stats.hold_seconds += held
            if held > stats.max_hold_seconds:
                stats.max_hold_seconds = held
        self._emit(entry, held)

    def _emit(self, entry: _HeldEntry, held: float) -> None:
        if self._in_hook():
            return
        from repro.obs.tracer import current_tracer

        tracer = current_tracer()
        if tracer is None:
            return
        with self._hook_guard():
            tracer.counter("lock_acquisitions", 1)
            tracer.counter("lock_hold_seconds", held)
            if entry.contended:
                tracer.counter("lock_contended", 1)
                tracer.counter("lock_wait_seconds", entry.waited)
            if held >= self.hold_threshold:
                tracer.add_span(
                    "lock-hold",
                    "lock",
                    entry.wall_since,
                    entry.wall_since + held,
                    track="locks",
                    site=entry.site,
                )

    def _find_cycle(self, new_site: str, held_sites: set[str]) -> tuple[str, ...] | None:
        """BFS from ``new_site`` back to any held site ⇒ ordering cycle.

        Caller holds ``self._lock``.  Returns the closed path
        ``new_site -> … -> held_site -> new_site`` or None.
        """
        if new_site in self.edges.get(new_site, ()):  # pragma: no cover - edges skip self
            return (new_site, new_site)
        parents: dict[str, str] = {}
        frontier = [new_site]
        seen = {new_site}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for succ in sorted(self.edges.get(node, ())):
                    if succ in seen:
                        continue
                    parents[succ] = node
                    if succ in held_sites:
                        path = [succ]
                        while path[-1] != new_site:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return tuple([new_site, *path[1:], new_site])
                    seen.add(succ)
                    nxt.append(succ)
            frontier = nxt
        return None

    # -- reporting -------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.edges.clear()
            self.stats.clear()
            self.violations.clear()
            self._seen_cycles.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "sites": {site: st.as_dict() for site, st in sorted(self.stats.items())},
                "edges": {src: sorted(dst) for src, dst in sorted(self.edges.items())},
                "violations": [v.as_dict() for v in self.violations],
            }


class _WatchedLock:
    """Wrapper around a real Lock/RLock that reports to the watcher.

    Transparent enough for ``threading.Condition``: attribute access
    falls through to the inner lock, and non-blocking acquires behave
    identically.  Deliberately *not* picklable — raw locks aren't, and
    the REPRO103/REPRO206 contract depends on that failing loudly.
    """

    __slots__ = ("_inner", "_site", "_reentrant", "_watcher")

    def __init__(self, inner: Any, site: str, reentrant: bool, watcher: LockWatcher):
        self._inner = inner
        self._site = site
        self._reentrant = reentrant
        self._watcher = watcher

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        watcher = self._watcher
        if watcher._in_hook():
            return self._inner.acquire(blocking, timeout)
        entry = watcher.held_entry(id(self))
        if entry is not None:
            if self._reentrant:
                ok = self._inner.acquire(blocking, timeout)
                if ok:
                    entry.count += 1
                return ok
            if blocking and timeout < 0:
                watcher.note_self_deadlock(self._site)
                raise LockOrderViolation(
                    f"self-deadlock: blocking re-acquire of non-reentrant "
                    f"lock {self._site} already held by this thread",
                    cycle=(self._site, self._site),
                )
            return self._inner.acquire(blocking, timeout)
        # Try uncontended first so wait time is only measured when real.
        contended = False
        waited = 0.0
        ok = self._inner.acquire(False)
        if not ok:
            if not blocking:
                return False
            contended = True
            t0 = time.perf_counter()
            ok = self._inner.acquire(True, timeout)
            waited = time.perf_counter() - t0
            if not ok:
                return False
        violation = watcher.note_acquired(id(self), self._site, waited, contended)
        if violation is not None and watcher.raise_on_cycle:
            self.release()
            raise LockOrderViolation(violation.message, cycle=violation.cycle)
        return True

    def release(self) -> None:
        watcher = self._watcher
        if watcher._in_hook():
            self._inner.release()
            return
        entry = watcher.held_entry(id(self))
        if entry is not None and self._reentrant and entry.count > 1:
            entry.count -= 1
            self._inner.release()
            return
        self._inner.release()
        watcher.note_released(id(self))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, name: str) -> Any:
        # Condition needs _release_save/_acquire_restore/_is_owned when the
        # inner lock provides them (RLock); plain locks fall back to
        # Condition's defaults, which work through acquire(0)/release.
        return getattr(self._inner, name)

    def __reduce__(self) -> Any:
        raise TypeError(f"cannot pickle watched lock object (site {self._site})")

    def __repr__(self) -> str:
        return f"<watched {'RLock' if self._reentrant else 'Lock'} site={self._site}>"


_watcher: LockWatcher | None = None
_installed = False
_dump_registered = False


def watcher() -> LockWatcher:
    """The process-wide watcher singleton (created on first use)."""
    global _watcher
    if _watcher is None:
        _watcher = LockWatcher()
    return _watcher


def is_installed() -> bool:
    return _installed


def watched(inner: Any = None, *, name: str | None = None) -> _WatchedLock:
    """Explicitly wrap one lock, regardless of install state.

    ``name`` overrides the creation-site label — useful in tests and
    docs where stable labels beat ``module:lineno``.
    """
    if inner is None:
        inner = _REAL_LOCK()
    reentrant = "rlock" in type(inner).__name__.lower()
    if name is None:
        frame = sys._getframe(1)
        name = f"{frame.f_globals.get('__name__', '?')}:{frame.f_lineno}"
    return _WatchedLock(inner, name, reentrant, watcher())


def _make_factory(kind: str, real: Any) -> Any:
    reentrant = kind == "RLock"

    def factory(*args: Any, **kwargs: Any) -> Any:
        inner = real(*args, **kwargs)
        frame = sys._getframe(1)
        module = frame.f_globals.get("__name__", "")
        if not (module == "repro" or module.startswith("repro.")):
            return inner  # only repro's own locks are sanitized
        site = f"{module}:{frame.f_lineno}"
        return _WatchedLock(inner, site, reentrant, watcher())

    factory._repro_lockwatch = True  # type: ignore[attr-defined]
    factory.__name__ = kind
    return factory


def install(raise_on_cycle: bool | None = None) -> LockWatcher:
    """Patch ``threading.Lock``/``RLock`` so repro modules get watched locks.

    Also rebinds ``Lock``/``RLock`` names that already-imported repro
    modules pulled in via ``from threading import Lock`` — without this,
    the serve daemon and caches imported before install would keep
    creating raw locks.  Idempotent; ``uninstall`` undoes both.
    """
    global _installed, _dump_registered
    w = watcher()
    if raise_on_cycle is not None:
        w.raise_on_cycle = raise_on_cycle
    if not _installed:
        threading.Lock = _make_factory("Lock", _REAL_LOCK)  # type: ignore[misc]
        threading.RLock = _make_factory("RLock", _REAL_RLOCK)  # type: ignore[misc]
        for name, module in list(sys.modules.items()):
            if module is None or not (name == "repro" or name.startswith("repro.")):
                continue
            ns = getattr(module, "__dict__", {})
            if ns.get("Lock") is _REAL_LOCK:
                ns["Lock"] = threading.Lock
            if ns.get("RLock") is _REAL_RLOCK:
                ns["RLock"] = threading.RLock
        _installed = True
    out = os.environ.get("REPRO_LOCK_GRAPH_OUT", "").strip()
    if out and not _dump_registered:
        # Only the driver process dumps; multiprocessing children racing
        # the same path would clobber it.
        pid = os.getpid()
        atexit.register(lambda: os.getpid() == pid and _dump_graph(out))
        _dump_registered = True
    return w


def uninstall() -> None:
    """Restore the real factories and any rebound repro module globals."""
    global _installed
    if not _installed:
        return
    patched_lock = threading.Lock
    patched_rlock = threading.RLock
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]
    for name, module in list(sys.modules.items()):
        if module is None or not (name == "repro" or name.startswith("repro.")):
            continue
        ns = getattr(module, "__dict__", {})
        if ns.get("Lock") is patched_lock:
            ns["Lock"] = _REAL_LOCK
        if ns.get("RLock") is patched_rlock:
            ns["RLock"] = _REAL_RLOCK
    _installed = False


@contextmanager
def enabled(*, raise_on_cycle: bool = False, reset: bool = True) -> Iterator[LockWatcher]:
    """Scoped sanitizer: install, yield the watcher, restore on exit.

    Leaves a pre-existing install in place (tests nested under
    ``REPRO_LOCK_SANITIZER=1`` CI runs shouldn't tear it down).
    """
    was_installed = _installed
    w = install(raise_on_cycle=raise_on_cycle)
    if reset:
        w.reset()
    prior_raise = w.raise_on_cycle
    try:
        yield w
    finally:
        w.raise_on_cycle = prior_raise
        if not was_installed:
            uninstall()


def format_report(snapshot: dict[str, Any]) -> str:
    """Human-readable report for ``repro locks`` and test output."""
    lines = ["lock sites:"]
    sites = snapshot.get("sites", {})
    if not sites:
        lines.append("  (none recorded)")
    width = max((len(s) for s in sites), default=4)
    for site, st in sites.items():
        lines.append(
            f"  {site:<{width}}  acq={st['acquisitions']:<6} "
            f"contended={st['contended']:<4} "
            f"wait={st['wait_seconds']:.4f}s hold={st['hold_seconds']:.4f}s "
            f"max_hold={st['max_hold_seconds']:.4f}s"
        )
    edges = snapshot.get("edges", {})
    lines.append("lock-order graph:")
    if not edges:
        lines.append("  (no nested acquisitions)")
    for src, dsts in edges.items():
        for dst in dsts:
            lines.append(f"  {src} -> {dst}")
    violations = snapshot.get("violations", [])
    lines.append(f"violations: {len(violations)}")
    for v in violations:
        lines.append(f"  [{v['kind']}] {v['message']}")
    return "\n".join(lines)


def _dump_graph(path: str) -> None:
    if _watcher is None:  # pragma: no cover - dump only registered post-install
        return
    payload = _watcher.snapshot()
    target = os.path.abspath(path)
    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, target)
    except OSError:  # pragma: no cover - best-effort at exit
        try:
            os.unlink(tmp)
        except OSError:
            pass
