"""Lazy partitioned collections with the Spark RDD API.

The transformation/action split, lineage-based evaluation, and
shuffle-at-stage-boundary semantics all mirror Spark:

* narrow transformations (``map``, ``filter``, ``flatMap``,
  ``mapPartitions``) chain lazily and are evaluated inside a single task;
* wide transformations (``reduceByKey``, ``groupByKey``, ``repartition``,
  ``shuffle_by``, ``sortBy``, ``join``) materialize their parent's output
  into hash buckets, metering the records that cross the boundary;
* ``reduceByKey`` and friends apply a map-side combine before bucketing, so
  the engine reproduces the classic ``reduceByKey`` <
  ``groupByKey().mapValues(sum)`` shuffle-volume gap the paper discusses in
  Section 2.2.

Actions evaluate the lineage through :meth:`EngineContext.run_stage`, which
retries failed tasks and records per-task metrics.
"""

from __future__ import annotations

import pickle
import random
from bisect import bisect_right
from collections import defaultdict
from threading import Lock
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from repro.engine.context import EngineContext
from repro.engine.shuffle import hash_partition

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


def _identity_key(x: Any) -> Any:
    """Shuffle key for :meth:`RDD.distinct`: the element, or its bytes.

    Unhashable elements can't serve as combine-dict keys, so they are
    replaced by their pickled form (tagged to avoid colliding with a
    legitimate ``(marker, bytes)`` element).  Module-level so the process
    backend can ship it with stdlib pickle alone.
    """
    try:
        hash(x)
    except TypeError:
        return ("__repro_unhashable__", pickle.dumps(x, protocol=pickle.HIGHEST_PROTOCOL))
    return x


class RDD(Generic[T]):
    """An immutable, lazily-evaluated, partitioned collection."""

    def __init__(self, ctx: EngineContext, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("an RDD needs at least one partition")
        self.ctx = ctx
        self.num_partitions = num_partitions
        self._cache: dict[int, list] | None = None

    # -- construction (package-internal) ----------------------------------------

    @staticmethod
    def _from_collection(ctx: EngineContext, items: list, num_partitions: int) -> "RDD":
        size = len(items)
        partitions: list[list] = []
        for i in range(num_partitions):
            start = i * size // num_partitions
            end = (i + 1) * size // num_partitions
            partitions.append(items[start:end])
        return _SourceRDD(ctx, partitions)

    @staticmethod
    def _from_partitions(ctx: EngineContext, partitions: list[list]) -> "RDD":
        if not partitions:
            partitions = [[]]
        return _SourceRDD(ctx, partitions)

    # -- evaluation core ------------------------------------------------------------

    def _compute(self, split: int) -> list:
        raise NotImplementedError

    def _partition(self, split: int) -> list:
        """Materialize one partition, honoring the persist cache."""
        if self._cache is not None and split in self._cache:
            return self._cache[split]
        data = self._compute(split)
        if self._cache is not None:
            self._cache[split] = data
        return data

    def _collect_partitions(self) -> list[list]:
        """Run a stage over all partitions and return their contents."""
        if self.ctx.backend.requires_serializable_tasks and not self.ctx._worker_side:
            self._materialize_shuffle_deps()
        return self.ctx.run_stage(self.num_partitions, self._partition)

    def _materialize_shuffle_deps(self) -> None:
        """Materialize every shuffle in the lineage driver-side, deepest first.

        Process-pool workers each hold a *copy* of the lineage: if a
        shuffle's buckets were still lazy at dispatch, every worker would
        independently re-run the whole map side (and its shuffle counters
        would be lost with the worker's context copy).  Forcing shuffles
        bottom-up in the driver keeps exactly one map stage per shuffle —
        the same stage decomposition the pull-based evaluation performs —
        and ships the materialized buckets to workers as plain data.
        """
        ordered: list[_ShuffledRDD] = []
        seen: set[int] = set()

        def walk(rdd: "RDD") -> None:
            if id(rdd) in seen:
                return
            seen.add(id(rdd))
            for parent in rdd._parents():
                walk(parent)
            if isinstance(rdd, _ShuffledRDD):
                ordered.append(rdd)

        walk(self)
        for shuffled in ordered:  # post-order: dependencies before dependents
            shuffled._ensure_shuffled()

    # -- caching ------------------------------------------------------------------------

    def persist(self) -> "RDD[T]":
        """Keep computed partitions in memory for reuse (``cache`` alias)."""
        if self._cache is None:
            self._cache = {}
        return self

    cache = persist

    def unpersist(self) -> "RDD[T]":
        """Drop the partition cache."""
        self._cache = None
        return self

    @property
    def is_cached(self) -> bool:
        """True when persist() has been called."""
        return self._cache is not None

    def checkpoint(self, directory) -> "RDD[T]":
        """Materialize to disk and return a source RDD cut free of lineage.

        The Spark analog: long iterative lineages are truncated by writing
        partitions out and reading them back as a fresh source.  Partition
        layout is preserved; the files are plain pickles under
        ``directory``.
        """
        import pickle
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        partitions = self._collect_partitions()
        for i, partition in enumerate(partitions):
            (directory / f"checkpoint-{i:05d}.pkl").write_bytes(
                pickle.dumps(partition, protocol=pickle.HIGHEST_PROTOCOL)
            )
        restored = []
        for i in range(len(partitions)):
            restored.append(
                pickle.loads((directory / f"checkpoint-{i:05d}.pkl").read_bytes())
            )
        return RDD._from_partitions(self.ctx, restored)

    # -- narrow transformations ------------------------------------------------------

    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        """Apply ``f`` to every element."""
        return _MapPartitionsRDD(self, lambda _, it: [f(x) for x in it])

    def filter(self, f: Callable[[T], bool]) -> "RDD[T]":
        """Keep elements where ``f`` is true."""
        return _MapPartitionsRDD(self, lambda _, it: [x for x in it if f(x)])

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        """Apply ``f`` and flatten the resulting iterables."""
        return _MapPartitionsRDD(
            self, lambda _, it: [y for x in it for y in f(x)]
        )

    def map_partitions(self, f: Callable[[list], Iterable[U]]) -> "RDD[U]":
        """Transform each partition's list as a whole."""
        return _MapPartitionsRDD(self, lambda _, it: list(f(it)))

    def map_partitions_with_index(
        self, f: Callable[[int, list], Iterable[U]]
    ) -> "RDD[U]":
        """Like map_partitions, with the partition index."""
        return _MapPartitionsRDD(self, lambda i, it: list(f(i, it)))

    def glom(self) -> "RDD[list]":
        """One element per partition: the partition's contents as a list."""
        return _MapPartitionsRDD(self, lambda _, it: [list(it)])

    def key_by(self, f: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        """Pair each element with ``f(element)`` as its key."""
        return self.map(lambda x: (f(x), x))

    def map_values(self, f: Callable[[V], U]) -> "RDD[tuple[K, U]]":
        """Transform the value of each (key, value) pair."""
        return self.map(lambda kv: (kv[0], f(kv[1])))

    def flat_map_values(self, f: Callable[[V], Iterable[U]]) -> "RDD[tuple[K, U]]":
        """Flat-map the value of each (key, value) pair, keeping keys."""
        return self.flat_map(lambda kv: [(kv[0], v) for v in f(kv[1])])

    def keys(self) -> "RDD[K]":
        """The keys of a pair RDD."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD[V]":
        """The values of a pair RDD."""
        return self.map(lambda kv: kv[1])

    def sample(self, fraction: float, seed: int = 17) -> "RDD[T]":
        """Bernoulli sample, deterministic per (seed, partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sampler(split: int, items: list) -> list:
            rng = random.Random(seed * 1_000_003 + split)
            return [x for x in items if rng.random() < fraction]

        return _MapPartitionsRDD(self, sampler)

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pair each element with a global 0-based index.

        Like Spark, this needs a first pass to learn partition sizes, then
        a second pass to emit the offsets.
        """
        sizes = [len(p) for p in self._collect_partitions()]
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        def indexer(split: int, items: list) -> list:
            base = offsets[split]
            return [(x, base + i) for i, x in enumerate(items)]

        return _MapPartitionsRDD(self, indexer)

    def union(self, other: "RDD[T]") -> "RDD[T]":
        """Concatenate two RDDs' partitions (no shuffle)."""
        if other.ctx is not self.ctx:
            raise ValueError("cannot union RDDs from different contexts")
        return _UnionRDD(self, other)

    def cartesian(self, other: "RDD[U]") -> "RDD[tuple[T, U]]":
        """All pairs; the naive conversion baseline of Section 4.2."""
        return _CartesianRDD(self, other)

    def zip_partitions(
        self, other: "RDD[U]", f: Callable[[list, list], Iterable[Any]]
    ) -> "RDD[Any]":
        """Combine co-numbered partitions of two RDDs."""
        if other.num_partitions != self.num_partitions:
            raise ValueError("zip_partitions requires equal partition counts")
        return _ZipPartitionsRDD(self, other, f)

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Reduce partition count by concatenating neighbors (no shuffle)."""
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        if num_partitions >= self.num_partitions:
            return self
        return _CoalescedRDD(self, num_partitions)

    # -- wide transformations -------------------------------------------------------------

    def repartition(self, num_partitions: int) -> "RDD[T]":
        """Round-robin shuffle into ``num_partitions`` balanced partitions."""
        if num_partitions < 1:
            raise ValueError("partition count must be positive")

        def assign(split: int, items: list) -> list:
            return [((split + j) % num_partitions, x) for j, x in enumerate(items)]

        pairs = self.map_partitions_with_index(assign)
        return _ShuffledRDD(pairs, num_partitions, direct_key=True, values_only=True)

    def shuffle_by(
        self,
        num_partitions: int,
        assign: Callable[[T], int | Iterable[int]],
    ) -> "RDD[T]":
        """Place each element into explicit target partition(s).

        This is the primitive the ST partitioners use: ``assign`` returns a
        partition id (or several, when boundary records must be duplicated
        for correctness, cf. Algorithm 1's ``duplicate`` flag).
        """
        def expand(x: T) -> list[tuple[int, T]]:
            target = assign(x)
            if isinstance(target, int):
                return [(target % num_partitions, x)]
            return [(t % num_partitions, x) for t in target]

        return _ShuffledRDD(
            self.flat_map(expand),
            num_partitions,
            key_of=lambda kv: kv[0],
            direct_key=True,
            values_only=True,
        )

    def shuffle_by_batch(
        self,
        num_partitions: int,
        assign_batch: Callable[[list], Sequence[int]],
    ) -> "RDD[T]":
        """Like :meth:`shuffle_by`, but assignment runs once per partition.

        ``assign_batch(items)`` returns one target partition id per item —
        the hook the columnar partitioners use to vectorize routing.  Ids
        are coerced with ``int()`` so numpy integer scalars route exactly
        like Python ints.
        """
        def expand(split: int, items: list) -> list[tuple[int, T]]:
            if not items:
                return []
            return [
                (int(pid) % num_partitions, x)
                for pid, x in zip(assign_batch(items), items)
            ]

        return _ShuffledRDD(
            self.map_partitions_with_index(expand),
            num_partitions,
            key_of=lambda kv: kv[0],
            direct_key=True,
            values_only=True,
        )

    def group_by_key(self, num_partitions: int | None = None) -> "RDD[tuple[K, list]]":
        """Full shuffle of every record, grouped on the reduce side."""
        n = num_partitions or self.num_partitions
        return _ShuffledRDD(self, n, group=True)

    def reduce_by_key(
        self, f: Callable[[V, V], V], num_partitions: int | None = None
    ) -> "RDD[tuple[K, V]]":
        """Shuffle with map-side combine — fewer records cross the wire."""
        return self.combine_by_key(lambda v: v, f, f, num_partitions)

    def fold_by_key(
        self, zero: V, f: Callable[[V, V], V], num_partitions: int | None = None
    ) -> "RDD[tuple[K, V]]":
        """reduce_by_key with an initial ``zero`` per key."""
        return self.combine_by_key(lambda v: f(zero, v), f, f, num_partitions)

    def aggregate_by_key(
        self,
        zero: U,
        seq: Callable[[U, V], U],
        comb: Callable[[U, U], U],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, U]]":
        """Per-key aggregation with distinct seq/comb functions."""
        import copy

        return self.combine_by_key(
            lambda v: seq(copy.deepcopy(zero), v), seq, comb, num_partitions
        )

    def combine_by_key(
        self,
        create: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, U]]":
        """The general map-side-combined shuffle (Spark's combineByKey)."""
        n = num_partitions or self.num_partitions
        return _ShuffledRDD(
            self,
            n,
            create=create,
            merge_value=merge_value,
            merge_combiners=merge_combiners,
        )

    def distinct(self, num_partitions: int | None = None) -> "RDD[T]":
        """Unique elements (via a combine shuffle).

        Unhashable elements (instances whose ``data`` payload is a list or
        dict) fall back to their serialized bytes as the identity key, so
        equality is value equality up to pickle canonicalization — two
        equal dicts built in different insertion orders serialize
        differently and are kept as two elements.  Hashable elements use
        ordinary ``==`` semantics, as before.
        """
        return self.distinct_by(_identity_key, num_partitions)

    def distinct_by(
        self, key: Callable[[T], Any], num_partitions: int | None = None
    ) -> "RDD[T]":
        """Unique elements under a key function; keeps one witness per key.

        The workhorse behind :meth:`distinct`, exposed because callers
        often have a cheaper or more meaningful identity than whole-object
        equality — e.g. ``Instance.identity()`` to collapse the replicas
        that ``duplicate=True`` selection fans out across partitions.
        """
        return (
            self.map(lambda x: (key(x), x))
            .reduce_by_key(lambda a, _: a, num_partitions)
            .values()
        )

    def group_by(
        self, f: Callable[[T], K], num_partitions: int | None = None
    ) -> "RDD[tuple[K, list]]":
        """Group elements by ``f(element)``."""
        return self.key_by(f).group_by_key(num_partitions)

    def cogroup(
        self, other: "RDD[tuple[K, U]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, tuple[list, list]]]":
        """Group both RDDs' values per key: (key, (left values, right values))."""
        n = num_partitions or max(self.num_partitions, other.num_partitions)
        tagged = self.map_values(lambda v: (0, v)).union(
            other.map_values(lambda v: (1, v))
        )
        def split_groups(tagged_values: list) -> tuple[list, list]:
            left = [v for tag, v in tagged_values if tag == 0]
            right = [v for tag, v in tagged_values if tag == 1]
            return (left, right)

        return tagged.group_by_key(n).map_values(split_groups)

    def join(
        self, other: "RDD[tuple[K, U]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, tuple[V, U]]]":
        """Inner join of two pair RDDs by key."""
        def pairs(groups: tuple[list, list]) -> list:
            left, right = groups
            return [(lv, rv) for lv in left for rv in right]

        return self.cogroup(other, num_partitions).flat_map_values(pairs)

    def intersection(self, other: "RDD[T]", num_partitions: int | None = None) -> "RDD[T]":
        """Distinct elements present in both RDDs."""
        def both_sides(groups: tuple[list, list]) -> list:
            left, right = groups
            return [None] if left and right else []

        tagged_self = self.map(lambda x: (x, None))
        tagged_other = other.map(lambda x: (x, None))
        return (
            tagged_self.cogroup(tagged_other, num_partitions)
            .flat_map_values(both_sides)
            .keys()
        )

    def subtract(self, other: "RDD[T]", num_partitions: int | None = None) -> "RDD[T]":
        """Elements of this RDD not present in ``other`` (multiset kept)."""
        def only_left(groups: tuple[list, list]) -> list:
            left, right = groups
            return left if not right else []

        tagged_self = self.map(lambda x: (x, x))
        tagged_other = other.map(lambda x: (x, x))
        return (
            tagged_self.cogroup(tagged_other, num_partitions)
            .flat_map_values(only_left)
            .values()
        )

    def left_outer_join(
        self, other: "RDD[tuple[K, U]]", num_partitions: int | None = None
    ) -> "RDD[tuple[K, tuple[V, U | None]]]":
        """Left outer join: unmatched left keys pair with None."""
        def pairs(groups: tuple[list, list]) -> list:
            left, right = groups
            if not right:
                return [(lv, None) for lv in left]
            return [(lv, rv) for lv in left for rv in right]

        return self.cogroup(other, num_partitions).flat_map_values(pairs)

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD[T]":
        """Total sort via sampled range partitioning, as Spark does."""
        n = num_partitions or self.num_partitions
        if n == 1:
            return _MapPartitionsRDD(
                self.coalesce(1),
                lambda _, it: sorted(it, key=key_func, reverse=not ascending),
            )
        sample_keys = sorted(
            key_func(x)
            for p in self.sample(0.2, seed=41)._collect_partitions()
            for x in p
        )
        if not sample_keys:
            # Sample missed everything (tiny input): fall back to full keys.
            sample_keys = sorted(key_func(x) for x in self.collect())
        if not sample_keys:
            return self
        bounds = [
            sample_keys[(i + 1) * len(sample_keys) // n] for i in range(n - 1)
        ]

        def assign(x: T) -> int:
            idx = bisect_right(bounds, key_func(x))
            return idx if ascending else (n - 1 - idx)

        ranged = self.shuffle_by(n, assign)
        return _MapPartitionsRDD(
            ranged, lambda _, it: sorted(it, key=key_func, reverse=not ascending)
        )

    def sort_by_key(self, ascending: bool = True, num_partitions: int | None = None):
        """sort_by on the first tuple element."""
        return self.sort_by(lambda kv: kv[0], ascending, num_partitions)

    # -- actions ----------------------------------------------------------------------------

    def collect(self) -> list[T]:
        """All elements, in partition order."""
        return [x for p in self._collect_partitions() for x in p]

    def count(self) -> int:
        """Number of elements."""
        return sum(len(p) for p in self._collect_partitions())

    def is_empty(self) -> bool:
        """True when no partition holds an element."""
        return all(not self._partition(i) for i in range(self.num_partitions))

    def first(self) -> T:
        """The first element; raises on an empty RDD."""
        for i in range(self.num_partitions):
            part = self._partition(i)
            if part:
                return part[0]
        raise ValueError("RDD is empty")

    def take(self, n: int) -> list[T]:
        """First ``n`` elements, evaluating only as many partitions as needed."""
        result: list[T] = []
        for i in range(self.num_partitions):
            if len(result) >= n:
                break
            result.extend(self._partition(i))
        return result[:n]

    def top(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        """The ``n`` largest elements, descending."""
        import heapq

        partials = [
            heapq.nlargest(n, p, key=key) for p in self._collect_partitions()
        ]
        merged = [x for p in partials for x in p]
        return heapq.nlargest(n, merged, key=key)

    def take_ordered(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        """The ``n`` smallest elements, ascending."""
        import heapq

        partials = [
            heapq.nsmallest(n, p, key=key) for p in self._collect_partitions()
        ]
        merged = [x for p in partials for x in p]
        return heapq.nsmallest(n, merged, key=key)

    def reduce(self, f: Callable[[T, T], T]) -> T:
        """Fold all elements with ``f``; raises on an empty RDD."""
        from functools import reduce as _reduce

        parts = [
            _reduce(f, p) for p in self._collect_partitions() if p
        ]
        if not parts:
            raise ValueError("cannot reduce an empty RDD")
        return _reduce(f, parts)

    def fold(self, zero: T, f: Callable[[T, T], T]) -> T:
        """Sequential fold from ``zero`` (order = partition order)."""
        acc = zero
        for p in self._collect_partitions():
            for x in p:
                acc = f(acc, x)
        return acc

    def aggregate(
        self, zero: U, seq: Callable[[U, T], U], comb: Callable[[U, U], U]
    ) -> U:
        """Per-partition seq fold, then comb across partials."""
        import copy

        partials = []
        for p in self._collect_partitions():
            acc = copy.deepcopy(zero)
            for x in p:
                acc = seq(acc, x)
            partials.append(acc)
        result = copy.deepcopy(zero)
        for partial in partials:
            result = comb(result, partial)
        return result

    def tree_reduce(
        self,
        f: Callable[[T, T], T],
        depth: int = 2,
        stats: dict | None = None,
    ) -> T:
        """``reduce`` with a balanced pairwise merge tree; raises on empty.

        Each partition is folded sequentially into one partial (same left
        fold as :meth:`reduce`), then partials merge by adjacent pairing:
        every round combines partials ``(0, 1), (2, 3), …``, passing an
        odd leftover through unchanged.  The first ``depth`` rounds run as
        engine stages — ``f`` executes on workers, and on the process
        backend the paired partials ship through the stage task path
        (pickle protocol 5, out-of-band buffers) — while remaining rounds
        merge on the driver, which therefore touches ``O(log P)`` partials
        instead of ``P``.  The pairing, and hence the result, is identical
        for every ``depth``: the knob only moves rounds between workers
        and the driver.

        ``stats``, when given, receives ``partials`` (non-empty partition
        count), ``rounds`` (total pairwise rounds) and ``stage_rounds``
        (rounds that ran as engine stages).
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        from functools import reduce as _reduce

        folded = _MapPartitionsRDD(
            self, lambda _, items: [_reduce(f, items)] if items else []
        )
        partials = [p[0] for p in folded._collect_partitions() if p]
        if not partials:
            raise ValueError("cannot reduce an empty RDD")
        n_partials = len(partials)
        result, rounds, stage_rounds = self._pairwise_rounds(f, partials, depth)
        if stats is not None:
            stats["partials"] = n_partials
            stats["rounds"] = rounds
            stats["stage_rounds"] = stage_rounds
        return result

    def tree_aggregate(
        self,
        zero: U,
        seq: Callable[[U, T], U],
        comb: Callable[[U, U], U],
        depth: int = 2,
    ) -> U:
        """Per-partition ``seq`` fold, then pairwise-tree ``comb``.

        Like :meth:`aggregate`, every partition (empty ones included)
        starts from its own deep copy of ``zero`` — but the fold runs
        worker-side and the partials combine through the deterministic
        pairwise tree of :meth:`tree_reduce` rather than a driver-side
        left fold seeded with ``zero``.  Returns a copy of ``zero`` for an
        RDD with no partitions.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        import copy

        def fold_partition(_, items):
            acc = copy.deepcopy(zero)
            for x in items:
                acc = seq(acc, x)
            return [acc]

        folded = _MapPartitionsRDD(self, fold_partition)
        partials = [p[0] for p in folded._collect_partitions()]
        if not partials:
            return copy.deepcopy(zero)
        result, _, _ = self._pairwise_rounds(comb, partials, depth)
        return result

    def _pairwise_rounds(
        self, f: Callable[[T, T], T], partials: list, depth: int
    ) -> tuple[T, int, int]:
        """Merge ``partials`` by adjacent pairing until one remains.

        Rounds below ``depth`` run as engine stages when more than one
        pair exists; later (or single-pair) rounds merge on the driver.
        The pairing is the same either way, so results are depth-invariant
        for any ``f`` — even a non-associative one.
        """
        rounds = 0
        stage_rounds = 0
        while len(partials) > 1:
            paired = [
                [partials[i], partials[i + 1]]
                for i in range(0, len(partials) - 1, 2)
            ]
            leftover = [partials[-1]] if len(partials) % 2 else []
            if rounds < depth and len(paired) > 1:
                stage = self.ctx.from_partitions(paired, copy=False)
                merged = _MapPartitionsRDD(
                    stage, lambda _, pair: [f(pair[0], pair[1])]
                )._collect_partitions()
                partials = [m[0] for m in merged] + leftover
                stage_rounds += 1
            else:
                partials = [f(a, b) for a, b in paired] + leftover
            rounds += 1
        return partials[0], rounds, stage_rounds

    def sum(self) -> float:
        """Sum of numeric elements."""
        return sum(x for p in self._collect_partitions() for x in p)

    def max(self, key: Callable[[T], Any] | None = None) -> T:
        """Largest element (optionally by ``key``)."""
        data = self.collect()
        if not data:
            raise ValueError("cannot take max of an empty RDD")
        return max(data, key=key) if key else max(data)

    def min(self, key: Callable[[T], Any] | None = None) -> T:
        """Smallest element (optionally by ``key``)."""
        data = self.collect()
        if not data:
            raise ValueError("cannot take min of an empty RDD")
        return min(data, key=key) if key else min(data)

    def mean(self) -> float:
        """Arithmetic mean of numeric elements; raises on empty."""
        total = 0.0
        count = 0
        for p in self._collect_partitions():
            total += sum(p)
            count += len(p)
        if count == 0:
            raise ValueError("cannot take mean of an empty RDD")
        return total / count

    def count_by_value(self) -> dict:
        """Dict of element -> occurrence count."""
        counts: dict = defaultdict(int)
        for p in self._collect_partitions():
            for x in p:
                counts[x] += 1
        return dict(counts)

    def count_by_key(self) -> dict:
        """Dict of key -> pair count."""
        counts: dict = defaultdict(int)
        for p in self._collect_partitions():
            for k, _ in p:
                counts[k] += 1
        return dict(counts)

    def collect_as_map(self) -> dict:
        """Pair RDD as a dict (last value per key wins)."""
        return {k: v for p in self._collect_partitions() for k, v in p}

    def foreach(self, f: Callable[[T], None]) -> None:
        """Apply ``f`` to every element for its side effect."""
        for p in self._collect_partitions():
            for x in p:
                f(x)

    def partition_sizes(self) -> list[int]:
        """Record count per partition — the raw input to the CV metric."""
        return [len(p) for p in self._collect_partitions()]

    # -- lineage inspection ------------------------------------------------------

    def _parents(self) -> list["RDD"]:
        """Direct lineage parents (empty for sources)."""
        parents = []
        for attr in ("_parent", "_left", "_right"):
            parent = getattr(self, attr, None)
            if isinstance(parent, RDD):
                parents.append(parent)
        return parents

    def debug_string(self) -> str:
        """Indented lineage description (Spark's ``toDebugString`` analog).

        Stage boundaries (shuffles) are marked with ``+-``; narrow chains
        indent under their parent.
        """
        lines: list[str] = []

        def describe(rdd: "RDD") -> str:
            kind = type(rdd).__name__.lstrip("_")
            extra = ""
            if isinstance(rdd, _ShuffledRDD):
                if rdd._combine:
                    extra = " [shuffle: combine]"
                elif rdd._group:
                    extra = " [shuffle: group]"
                else:
                    extra = " [shuffle: route]"
            cached = " [cached]" if rdd.is_cached else ""
            return f"{kind}({rdd.num_partitions}){extra}{cached}"

        def walk(rdd: "RDD", depth: int) -> None:
            marker = "+- " if isinstance(rdd, _ShuffledRDD) else "|  " if depth else ""
            lines.append("  " * depth + marker + describe(rdd))
            for parent in rdd._parents():
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def count_stages(self) -> int:
        """Number of shuffle boundaries in this lineage (stages - 1)."""
        total = 1 if isinstance(self, _ShuffledRDD) else 0
        return total + sum(p.count_stages() for p in self._parents())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(partitions={self.num_partitions})"


class _SourceRDD(RDD[T]):
    """Leaf of every lineage: data held in explicit partitions."""

    def __init__(self, ctx: EngineContext, partitions: list[list]):
        super().__init__(ctx, len(partitions))
        self._partitions = partitions

    def _compute(self, split: int) -> list:
        return self._partitions[split]


class _MapPartitionsRDD(RDD[U]):
    """Narrow transformation: ``f(split_index, parent_partition)``."""

    def __init__(self, parent: RDD, f: Callable[[int, list], list]):
        super().__init__(parent.ctx, parent.num_partitions)
        self._parent = parent
        self._f = f

    def _compute(self, split: int) -> list:
        return self._f(split, self._parent._partition(split))


class _UnionRDD(RDD[T]):
    """Concatenation of two RDDs' partition lists — no shuffle."""

    def __init__(self, left: RDD[T], right: RDD[T]):
        super().__init__(left.ctx, left.num_partitions + right.num_partitions)
        self._left = left
        self._right = right

    def _compute(self, split: int) -> list:
        if split < self._left.num_partitions:
            return self._left._partition(split)
        return self._right._partition(split - self._left.num_partitions)


class _CoalescedRDD(RDD[T]):
    def __init__(self, parent: RDD[T], num_partitions: int):
        super().__init__(parent.ctx, num_partitions)
        self._parent = parent

    def _compute(self, split: int) -> list:
        n_in = self._parent.num_partitions
        n_out = self.num_partitions
        start = split * n_in // n_out
        end = (split + 1) * n_in // n_out
        out: list = []
        for i in range(start, end):
            out.extend(self._parent._partition(i))
        return out


class _CartesianRDD(RDD[tuple]):
    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.ctx, left.num_partitions * right.num_partitions)
        self._left = left
        self._right = right

    def _compute(self, split: int) -> list:
        i = split // self._right.num_partitions
        j = split % self._right.num_partitions
        left = self._left._partition(i)
        right = self._right._partition(j)
        return [(a, b) for a in left for b in right]


class _ZipPartitionsRDD(RDD):
    def __init__(self, left: RDD, right: RDD, f: Callable[[list, list], Iterable]):
        super().__init__(left.ctx, left.num_partitions)
        self._left = left
        self._right = right
        self._f = f

    def _compute(self, split: int) -> list:
        return list(self._f(self._left._partition(split), self._right._partition(split)))


class _ShuffledRDD(RDD):
    """Stage boundary: materializes parent output into hash buckets.

    Modes (mutually exclusive):

    * combine mode (``create``/``merge_value``/``merge_combiners``):
      map-side combine then reduce-side merge — ``reduceByKey`` semantics;
    * group mode (``group=True``): every record shuffled, grouped on the
      reduce side — ``groupByKey`` semantics;
    * raw mode (``values_only=True``): records routed by an explicit
      assignment — ``repartition`` / ``shuffle_by`` semantics.

    The map side runs once (guarded by a lock for parallel mode) and its
    output is kept, mirroring Spark's shuffle files surviving across
    downstream stage retries.
    """

    def __init__(
        self,
        parent: RDD,
        num_partitions: int,
        key_of: Callable | None = None,
        create: Callable | None = None,
        merge_value: Callable | None = None,
        merge_combiners: Callable | None = None,
        group: bool = False,
        values_only: bool = False,
        direct_key: bool = False,
    ):
        super().__init__(parent.ctx, max(1, num_partitions))
        self._parent = parent
        self._key_of = key_of or (lambda kv: kv[0])
        self._create = create
        self._merge_value = merge_value
        self._merge_combiners = merge_combiners
        self._group = group
        self._values_only = values_only
        self._direct_key = direct_key
        self._buckets: list[list] | None = None
        self._lock = Lock()

    @property
    def _combine(self) -> bool:
        return self._create is not None

    def __getstate__(self) -> dict:
        # Shipped to process-pool workers inside task closures; the lock
        # guards driver-side materialization and must not travel.
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = Lock()

    def _ensure_shuffled(self) -> list[list]:
        with self._lock:
            if self._buckets is not None:
                return self._buckets
            n = self.num_partitions
            buckets: list[list] = [[] for _ in range(n)]
            shuffled_records = 0

            # The captured self is safe despite owning _lock: __getstate__
            # nulls it for the worker copy, and workers only read lineage.
            def map_task(split: int) -> list:  # repro: noqa[REPRO206]
                items = self._parent._partition(split)
                out: list[tuple[int, Any]] = []
                if self._combine:
                    combined: dict = {}
                    for k, v in items:
                        if k in combined:
                            combined[k] = self._merge_value(combined[k], v)
                        else:
                            combined[k] = self._create(v)
                    for k, c in combined.items():
                        out.append((hash_partition(k, n), (k, c)))
                elif self._direct_key:
                    for kv in items:
                        out.append((kv[0] % n, kv[1]))
                else:
                    for item in items:
                        key = self._key_of(item)
                        target = (
                            key % n if isinstance(key, int) else hash_partition(key, n)
                        )
                        payload = item
                        out.append((target, payload))
                return out

            map_outputs = self.ctx.run_stage(self._parent.num_partitions, map_task)
            for output in map_outputs:
                shuffled_records += len(output)
                for target, payload in output:
                    buckets[target].append(payload)
            self.ctx.record_shuffle(shuffled_records)
            self._buckets = buckets
            return buckets

    def _compute(self, split: int) -> list:
        bucket = self._ensure_shuffled()[split]
        if self._values_only and not self._combine and not self._group:
            return list(bucket)
        if self._combine:
            merged: dict = {}
            for k, c in bucket:
                if k in merged:
                    merged[k] = self._merge_combiners(merged[k], c)
                else:
                    merged[k] = c
            return list(merged.items())
        if self._group:
            groups: dict = defaultdict(list)
            for k, v in bucket:
                groups[k].append(v)
            return list(groups.items())
        return list(bucket)
