"""Shuffle helpers: stable hashing and bucket construction."""

from __future__ import annotations

import hashlib
from typing import Any


def stable_hash(key: Any) -> int:
    """A process-independent hash for shuffle bucketing.

    Python's built-in ``hash`` is salted per process for strings, which
    would make partition layouts differ between runs and make tests (and
    the Table 5 load-balance numbers) non-reproducible.  We hash the repr
    through blake2b instead; all shuffle keys in this codebase (ints,
    strings, floats, tuples of those) have stable reprs.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFFFFFFFFFF
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF


def hash_partition(key: Any, num_partitions: int) -> int:
    """Map a key to a bucket index."""
    return stable_hash(key) % num_partitions
