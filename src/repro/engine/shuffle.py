"""Shuffle helpers: stable hashing and bucket construction."""

from __future__ import annotations

import hashlib
from typing import Any

try:  # NumPy is optional engine-wide; scalar keys still need normalizing.
    import numpy as _numpy

    _NUMPY_SCALAR: tuple = (_numpy.generic,)
except ImportError:  # pragma: no cover - exercised in numpy-free installs
    _NUMPY_SCALAR = ()


def stable_hash(key: Any) -> int:
    """A process-independent hash for shuffle bucketing.

    Python's built-in ``hash`` is salted per process for strings, which
    would make partition layouts differ between runs and make tests (and
    the Table 5 load-balance numbers) non-reproducible.  We hash the repr
    through blake2b instead; all shuffle keys in this codebase (ints,
    strings, floats, tuples of those) have stable reprs.

    NumPy scalars are normalized to the equivalent Python scalar first:
    their repr changed between NumPy 1.x and 2.x (``5`` vs
    ``np.int64(5)``), so repr-hashing them would silently shuffle the
    same key to different partitions depending on the installed NumPy —
    and ``np.int64(5)`` should bucket like ``5`` regardless.  Tuple keys
    are normalized element-wise for the same reason.
    """
    if _NUMPY_SCALAR and isinstance(key, _NUMPY_SCALAR):
        key = key.item()
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFFFFFFFFFF
    if _NUMPY_SCALAR and isinstance(key, tuple):
        key = tuple(
            k.item() if isinstance(k, _NUMPY_SCALAR) else k for k in key
        )
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFFFFFFFFFFFF


def hash_partition(key: Any, num_partitions: int) -> int:
    """Map a key to a bucket index."""
    return stable_hash(key) % num_partitions
