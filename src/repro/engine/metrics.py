"""Task- and job-level metrics.

Wall-clock on a laptop does not transfer to a 5-node cluster, but counted
work does: number of records scanned, shuffled, and emitted, and the
balance of records across partitions.  Every benchmark in this repo reports
these counters alongside elapsed time, so the paper's comparisons can be
checked in both currencies.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Metrics for one task (= one partition of one stage)."""

    partition: int
    records_out: int = 0
    elapsed_seconds: float = 0.0
    attempts: int = 1


@dataclass
class JobMetrics:
    """Aggregated counters for everything run under one context.

    ``shuffle_records`` counts records crossing a stage boundary (the
    engine's analog of shuffle write volume); ``broadcast_count`` and
    ``broadcast_records`` meter the structure-broadcast strategy of the
    converters.
    """

    tasks: list[TaskMetrics] = field(default_factory=list)
    shuffle_records: int = 0
    shuffle_count: int = 0
    broadcast_count: int = 0
    broadcast_records: int = 0
    stages: int = 0

    def record_task(self, task: TaskMetrics) -> None:
        """Append one finished task's metrics."""
        self.tasks.append(task)

    @property
    def task_count(self) -> int:
        """Number of tasks recorded."""
        return len(self.tasks)

    @property
    def records_out(self) -> int:
        """Total records emitted across tasks."""
        return sum(t.records_out for t in self.tasks)

    @property
    def elapsed_seconds(self) -> float:
        """Summed task wall-clock (not critical path)."""
        return sum(t.elapsed_seconds for t in self.tasks)

    def reset(self) -> None:
        """Zero all counters."""
        self.tasks.clear()
        self.shuffle_records = 0
        self.shuffle_count = 0
        self.broadcast_count = 0
        self.broadcast_records = 0
        self.stages = 0

    def snapshot(self) -> dict:
        """A plain-dict summary convenient for benchmark reports."""
        return {
            "tasks": self.task_count,
            "stages": self.stages,
            "records_out": self.records_out,
            "shuffle_records": self.shuffle_records,
            "shuffles": self.shuffle_count,
            "broadcasts": self.broadcast_count,
            "broadcast_records": self.broadcast_records,
        }


def coefficient_of_variation(sizes: list[int]) -> float:
    """CV = stddev / mean of partition sizes (Table 5's balance metric).

    Degenerate inputs: zero partitions or an all-empty layout give 0.0 —
    a perfectly "balanced" nothing — rather than raising, because
    benchmark sweeps legitimately hit empty selections.
    """
    if not sizes:
        return 0.0
    mean = statistics.fmean(sizes)
    if mean == 0:
        return 0.0
    if len(sizes) == 1:
        return 0.0
    return statistics.pstdev(sizes) / mean


def balance_summary(sizes: list[int]) -> dict:
    """Richer load-balance digest used by partitioner benchmarks."""
    if not sizes:
        return {"partitions": 0, "cv": 0.0, "min": 0, "max": 0, "mean": 0.0}
    return {
        "partitions": len(sizes),
        "cv": coefficient_of_variation(sizes),
        "min": min(sizes),
        "max": max(sizes),
        "mean": statistics.fmean(sizes),
        "skew": (max(sizes) / statistics.fmean(sizes)) if statistics.fmean(sizes) else math.nan,
    }
