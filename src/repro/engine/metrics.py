"""Task- and job-level metrics.

Wall-clock on a laptop does not transfer to a 5-node cluster, but counted
work does: number of records scanned, shuffled, and emitted, and the
balance of records across partitions.  Every benchmark in this repo reports
these counters alongside elapsed time, so the paper's comparisons can be
checked in both currencies.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Metrics for one task (= one partition of one stage).

    ``attempts`` is the 1-based attempt that produced the result;
    ``failed_attempts``/``failed_seconds`` meter the retry overhead that
    preceded it (for a permanently failed task, recorded separately in
    :attr:`JobMetrics.failed_tasks`, every attempt failed and
    ``elapsed_seconds`` is 0).  ``worker`` names the executor that ran the
    winning attempt — ``"driver"``, a thread name, or a process pid —
    and ``speculative`` marks wins by a straggler re-execution.
    """

    partition: int
    records_out: int = 0
    elapsed_seconds: float = 0.0
    attempts: int = 1
    failed_attempts: int = 0
    failed_seconds: float = 0.0
    worker: str = "driver"
    speculative: bool = False
    #: Epoch time the winning attempt began (0.0 when unknown).  With
    #: ``elapsed_seconds`` this replays the task as a trace-timeline span —
    #: the only worker→driver channel the tracer needs on any backend.
    started_wall: float = 0.0
    #: Faults fired by an active FaultPlan during this task's attempts,
    #: and the injected straggler-delay they added — kept separate from
    #: organic failures so chaos runs stay auditable.
    injected_faults: int = 0
    injected_delay_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Aggregated counters for everything run under one context.

    ``shuffle_records`` counts records crossing a stage boundary (the
    engine's analog of shuffle write volume); ``broadcast_count`` and
    ``broadcast_records`` meter the structure-broadcast strategy of the
    converters.
    """

    tasks: list[TaskMetrics] = field(default_factory=list)
    failed_tasks: list[TaskMetrics] = field(default_factory=list)
    shuffle_records: int = 0
    shuffle_count: int = 0
    broadcast_count: int = 0
    broadcast_records: int = 0
    stages: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    #: Recovery accounting (fault-tolerance layer).  Deliberately NOT part
    #: of :meth:`snapshot`: snapshots compare counted *work* across
    #: backends, and worker loss / demotion are environmental events.
    worker_losses: int = 0
    backend_demotions: int = 0
    partitions_recomputed: int = 0

    def record_task(self, task: TaskMetrics) -> None:
        """Append one finished task's metrics."""
        self.tasks.append(task)

    def record_failed_task(self, task: TaskMetrics) -> None:
        """Append a permanently failed task (stage aborted after retries).

        Failed attempts still consumed executor time; recording them keeps
        retry overhead visible even when the job dies.
        """
        self.failed_tasks.append(task)

    @property
    def task_count(self) -> int:
        """Number of tasks recorded."""
        return len(self.tasks)

    @property
    def records_out(self) -> int:
        """Total records emitted across tasks."""
        return sum(t.records_out for t in self.tasks)

    @property
    def elapsed_seconds(self) -> float:
        """Summed task wall-clock (not critical path)."""
        return sum(t.elapsed_seconds for t in self.tasks)

    @property
    def total_attempts(self) -> int:
        """Every attempt launched, successful or not, across all tasks."""
        return sum(t.attempts for t in self.tasks) + sum(
            t.attempts for t in self.failed_tasks
        )

    @property
    def failed_attempts(self) -> int:
        """Attempts that raised — the retry volume."""
        return sum(t.failed_attempts for t in self.tasks) + sum(
            t.failed_attempts for t in self.failed_tasks
        )

    @property
    def faults_injected(self) -> int:
        """Faults fired by an active FaultPlan across all tasks."""
        return sum(t.injected_faults for t in self.tasks) + sum(
            t.injected_faults for t in self.failed_tasks
        )

    @property
    def injected_delay_seconds(self) -> float:
        """Straggler-delay seconds injected by an active FaultPlan."""
        return sum(t.injected_delay_seconds for t in self.tasks) + sum(
            t.injected_delay_seconds for t in self.failed_tasks
        )

    @property
    def retry_seconds(self) -> float:
        """Wall-clock wasted in failed attempts (retry overhead)."""
        return sum(t.failed_seconds for t in self.tasks) + sum(
            t.failed_seconds for t in self.failed_tasks
        )

    def per_worker_elapsed(self) -> dict[str, list[float]]:
        """Successful-task elapsed times grouped by executing worker."""
        by_worker: dict[str, list[float]] = {}
        for task in self.tasks:
            by_worker.setdefault(task.worker, []).append(task.elapsed_seconds)
        return by_worker

    def worker_summary(self) -> dict[str, dict]:
        """Per-worker digest: task count, total/max elapsed, speculative wins."""
        summary: dict[str, dict] = {}
        for task in self.tasks:
            row = summary.setdefault(
                task.worker,
                {"tasks": 0, "elapsed": 0.0, "max_elapsed": 0.0, "speculative_wins": 0},
            )
            row["tasks"] += 1
            row["elapsed"] += task.elapsed_seconds
            row["max_elapsed"] = max(row["max_elapsed"], task.elapsed_seconds)
            row["speculative_wins"] += 1 if task.speculative else 0
        return summary

    def worker_histogram(self, bins: int = 8) -> dict:
        """Per-worker elapsed histograms over shared linear bin edges.

        Returns ``{"edges": [...], "workers": {worker: [count per bin]}}``;
        a shared scale makes slow workers directly comparable.
        """
        if bins < 1:
            raise ValueError("bins must be positive")
        per_worker = self.per_worker_elapsed()
        all_elapsed = [e for values in per_worker.values() for e in values]
        if not all_elapsed:
            return {"edges": [], "workers": {}}
        low, high = min(all_elapsed), max(all_elapsed)
        span = (high - low) or 1e-9
        edges = [low + span * i / bins for i in range(bins + 1)]
        workers = {}
        for worker, values in per_worker.items():
            counts = [0] * bins
            for e in values:
                idx = min(int((e - low) / span * bins), bins - 1)
                counts[idx] += 1
            workers[worker] = counts
        return {"edges": edges, "workers": workers}

    def reset(self) -> None:
        """Zero all counters."""
        self.tasks.clear()
        self.failed_tasks.clear()
        self.shuffle_records = 0
        self.shuffle_count = 0
        self.broadcast_count = 0
        self.broadcast_records = 0
        self.stages = 0
        self.speculative_launched = 0
        self.speculative_wins = 0
        self.worker_losses = 0
        self.backend_demotions = 0
        self.partitions_recomputed = 0

    def snapshot(self) -> dict:
        """A plain-dict summary convenient for benchmark reports.

        Contains only counted work (no timings), so identical pipelines
        produce identical snapshots on every backend — the cross-backend
        equivalence the backend tests and benches assert.
        """
        return {
            "tasks": self.task_count,
            "stages": self.stages,
            "records_out": self.records_out,
            "shuffle_records": self.shuffle_records,
            "shuffles": self.shuffle_count,
            "broadcasts": self.broadcast_count,
            "broadcast_records": self.broadcast_records,
            "attempts": self.total_attempts,
            "failed_attempts": self.failed_attempts,
        }


def coefficient_of_variation(sizes: list[int]) -> float:
    """CV = stddev / mean of partition sizes (Table 5's balance metric).

    Degenerate inputs: zero partitions or an all-empty layout give 0.0 —
    a perfectly "balanced" nothing — rather than raising, because
    benchmark sweeps legitimately hit empty selections.
    """
    if not sizes:
        return 0.0
    mean = statistics.fmean(sizes)
    if mean == 0:
        return 0.0
    if len(sizes) == 1:
        return 0.0
    return statistics.pstdev(sizes) / mean


def balance_summary(sizes: list[int]) -> dict:
    """Richer load-balance digest used by partitioner benchmarks."""
    if not sizes:
        return {"partitions": 0, "cv": 0.0, "min": 0, "max": 0, "mean": 0.0}
    return {
        "partitions": len(sizes),
        "cv": coefficient_of_variation(sizes),
        "min": min(sizes),
        "max": max(sizes),
        "mean": statistics.fmean(sizes),
        "skew": (max(sizes) / statistics.fmean(sizes)) if statistics.fmean(sizes) else math.nan,
    }
