"""Runtime sanitizer behind ``EngineContext(strict=True)``.

The static rules in :mod:`repro.analysis` catch distributed-correctness
hazards they can see in the AST; this module is their dynamic backstop.
In strict mode the context, driver-side and before dispatch, asserts that
every top-level stage would survive the process backend:

1. **Picklability + round-trip.**  The stage's task closure is serialized
   with the same serializer the process backend uses (cloudpickle when
   available, stdlib pickle otherwise) and loaded back.  Failures raise
   :class:`~repro.engine.errors.StrictModeViolation` naming the function
   and the specific capture that does not pickle — on *any* backend, so
   the bug surfaces in fast sequential tests, not in a scaled-out run.
2. **Capture-mutation detection.**  Closure cells of the user functions in
   the lineage are fingerprinted before the stage and re-fingerprinted
   after; a changed fingerprint means a task mutated captured state that
   would silently diverge (or be lost) across process workers.  Objects
   speaking the accumulator protocol (``add`` + ``reset`` + ``value``,
   e.g. engine ``Accumulator`` and converter ``AllocationStats``) are the
   sanctioned side channel and are exempt.
3. **Broadcast immutability.**  Every live broadcast's value fingerprint
   must be unchanged after each stage.

The checks run only on the driver for top-level stages — nested stages
(shuffle map sides evaluated inside a task) and worker-side context
copies are skipped, exactly like the backend-selection logic in
``run_stage``.
"""

from __future__ import annotations

import hashlib
import pickle
import types
from typing import Any, Callable, Iterable

from repro.engine.errors import StrictModeViolation

try:  # same widening the process backend applies
    import cloudpickle as _closure_pickle
except ImportError:  # pragma: no cover - exercised only without cloudpickle
    _closure_pickle = None


def _dumps(obj: Any) -> bytes:
    dumps = _closure_pickle.dumps if _closure_pickle is not None else pickle.dumps
    return dumps(obj)


def _fingerprint(obj: Any) -> bytes | None:
    """Stable digest of an object's pickled form; None when unpicklable."""
    try:
        return hashlib.blake2b(_dumps(obj), digest_size=16).digest()
    except Exception:
        return None


def is_accumulator(value: Any) -> bool:
    """True for objects speaking the accumulator protocol.

    ``add`` folds an increment in, ``reset`` zeroes, ``value``/``snapshot``
    reads — engine ``Accumulator`` and converter ``AllocationStats`` both
    qualify.  Plain sets also have ``add`` but no ``reset``, so they are
    (correctly) not exempt.
    """
    return (
        callable(getattr(value, "add", None))
        and callable(getattr(value, "reset", None))
        and not isinstance(value, type)
    )


def _is_engine_object(value: Any) -> bool:
    """Engine-internal captures whose state legitimately changes mid-stage
    (RDD caches, shuffle buckets, context metrics) — not user state."""
    from repro.engine.broadcast import Broadcast
    from repro.engine.context import EngineContext
    from repro.engine.rdd import RDD

    return isinstance(value, (RDD, EngineContext, Broadcast))


_LINEAGE_FUNC_ATTRS = ("_f", "_key_of", "_create", "_merge_value", "_merge_combiners")


def stage_functions(task: Callable) -> dict[str, types.FunctionType]:
    """User-level functions a stage executes, labeled for diagnostics.

    A stage task is usually ``RDD._partition`` bound to the action's RDD;
    the user's functions live in the lineage nodes (``_MapPartitionsRDD._f``
    and the shuffle combiner hooks) and, transitively, in those functions'
    closure cells (``rdd.map(f)`` wraps ``f`` in an engine lambda).
    """
    found: dict[str, types.FunctionType] = {}
    seen: set[int] = set()

    def add(fn: Any, label: str) -> None:
        if not isinstance(fn, types.FunctionType) or id(fn) in seen:
            return
        seen.add(id(fn))
        found[label] = fn
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__ or ()):
            try:
                value = cell.cell_contents
            except ValueError:  # empty cell
                continue
            add(value, f"{label} -> {name}")

    owner = getattr(task, "__self__", None)
    if owner is not None and hasattr(owner, "_parents"):
        stack = [owner]
        visited: set[int] = set()
        while stack:
            rdd = stack.pop()
            if id(rdd) in visited:
                continue
            visited.add(id(rdd))
            for attr in _LINEAGE_FUNC_ATTRS:
                add(getattr(rdd, attr, None), f"{type(rdd).__name__}.{attr}")
            stack.extend(rdd._parents())
    else:
        add(task, getattr(task, "__qualname__", repr(task)))
    return found


def _capture_cells(fn: types.FunctionType) -> Iterable[tuple[str, Any]]:
    for name, cell in zip(fn.__code__.co_freevars, fn.__closure__ or ()):
        try:
            yield name, cell.cell_contents
        except ValueError:
            continue


def _referenced_globals(fn: types.FunctionType) -> Iterable[tuple[str, Any]]:
    """Module/script globals a function's code actually names.

    cloudpickle serializes these by value for functions it pickles by
    value (``__main__`` lambdas, REPL definitions), so they are captures
    in every sense that matters to the process backend.  ``co_names``
    also lists attribute names; the ``in globals`` filter drops those.
    """
    namespace = getattr(fn, "__globals__", None)
    if not isinstance(namespace, dict):
        return
    for name in fn.__code__.co_names:
        if name in namespace:
            yield name, namespace[name]


def _skip_in_snapshot(value: Any) -> bool:
    """Values whose fingerprint is not meaningful mutation evidence:
    functions are walked into under their own label, modules/classes
    pickle by reference, accumulators are the sanctioned side channel,
    and engine objects mutate legitimately mid-stage."""
    return (
        isinstance(
            value,
            (types.FunctionType, types.BuiltinFunctionType, types.ModuleType, type),
        )
        or is_accumulator(value)
        or _is_engine_object(value)
    )


class StageSanitizer:
    """Driver-side strict-mode checks around one context's stages."""

    def __init__(self) -> None:
        #: Live broadcasts and the fingerprint taken at creation.
        self._broadcasts: list[tuple[Any, bytes | None]] = []

    # -- broadcasts -----------------------------------------------------------------

    def register_broadcast(self, broadcast: Any) -> None:
        self._broadcasts.append((broadcast, broadcast.fingerprint()))

    # -- pre-stage ------------------------------------------------------------------

    def check_stage(self, task: Callable) -> dict[str, bytes]:
        """Assert process-portability of ``task``; return a capture snapshot."""
        self._check_picklable(task)
        return self._snapshot(task)

    def _check_picklable(self, task: Callable) -> None:
        try:
            payload = _dumps(task)
        except Exception as exc:
            raise StrictModeViolation(
                self._describe_pickle_failure(task, exc), rule="REPRO105"
            ) from exc
        try:
            restored = pickle.loads(payload)
        except Exception as exc:
            raise StrictModeViolation(
                f"stage closure pickle round-trip failed on load: {exc!r}; "
                f"the process backend would crash deserializing this stage "
                f"in a worker",
                rule="REPRO105",
            ) from exc
        if not callable(restored):
            raise StrictModeViolation(
                f"stage closure round-tripped to non-callable "
                f"{type(restored).__name__}; task serialization is broken",
                rule="REPRO105",
            )

    def _describe_pickle_failure(self, task: Callable, exc: Exception) -> str:
        """Name the function and capture that broke serialization."""
        culprits: list[str] = []
        functions = stage_functions(task)
        labeled = {id(fn) for fn in functions.values()}
        for label, fn in functions.items():
            try:
                _dumps(fn)
                continue  # this function pickles; not a culprit
            except Exception:
                pass
            named_leaf = False
            for origin, pairs in (
                ("captures", _capture_cells(fn)),
                ("references global", _referenced_globals(fn)),
            ):
                for name, value in pairs:
                    if isinstance(value, types.FunctionType) and id(value) in labeled:
                        continue  # walked into under its own label
                    try:
                        _dumps(value)
                    except Exception:
                        named_leaf = True
                        culprits.append(
                            f"{label} {origin} {name!r} = "
                            f"{type(value).__name__} which does not pickle"
                        )
            if not named_leaf and not any(
                isinstance(v, types.FunctionType) and id(v) in labeled
                for _, v in _capture_cells(fn)
            ):
                culprits.append(f"{label} does not pickle")
        detail = "; ".join(culprits) if culprits else f"serializer said: {exc!r}"
        hint = (
            ""
            if _closure_pickle is not None
            else " (cloudpickle is not installed, so only module-level "
            "callables pickle)"
        )
        return (
            f"strict mode: stage closure cannot be shipped to process "
            f"workers — {detail}{hint}"
        )

    def _snapshot(self, task: Callable) -> dict[str, bytes]:
        snapshot: dict[str, bytes] = {}
        for label, fn in stage_functions(task).items():
            for origin, pairs in (
                ("capture", _capture_cells(fn)),
                ("global", _referenced_globals(fn)),
            ):
                for name, value in pairs:
                    if _skip_in_snapshot(value):
                        continue
                    digest = _fingerprint(value)
                    if digest is not None:
                        snapshot[f"{label} {origin} {name!r}"] = digest
        return snapshot

    # -- post-stage ------------------------------------------------------------------

    def verify_stage(self, task: Callable, snapshot: dict[str, bytes]) -> None:
        """Detect task-side mutation of captured state or broadcast values.

        Broadcasts are checked first: a mutated broadcast value would also
        perturb capture fingerprints, and REPRO109 is the more precise
        diagnosis.
        """
        for broadcast, creation_digest in self._broadcasts:
            if getattr(broadcast, "_destroyed", False) or creation_digest is None:
                continue
            if broadcast.fingerprint() != creation_digest:
                raise StrictModeViolation(
                    f"strict mode: {broadcast!r} value changed after a "
                    f"stage; broadcasts are read-only shared state — build "
                    f"the final value before broadcasting",
                    rule="REPRO109",
                )
        after = self._snapshot(task)
        for key, before_digest in snapshot.items():
            after_digest = after.get(key)
            if after_digest is not None and after_digest != before_digest:
                raise StrictModeViolation(
                    f"strict mode: {key} was mutated by a task; on the "
                    f"process backend the write happens in one worker's "
                    f"copy and is lost — use an accumulator (.add) or "
                    f"return the value from the stage",
                    rule="REPRO104",
                )


def validate_partitioner(partitioner: Any, sample: Iterable[Any], limit: int = 256) -> None:
    """Strict-mode check of the partitioner contract on a fitted sample.

    ``num_partitions`` must be positive and match ``boundaries()``;
    ``assign`` must be total, in-range, and deterministic (two calls on
    the same instance agree — the property shuffle routing relies on).
    """
    n = partitioner.num_partitions
    if n < 1:
        raise StrictModeViolation(
            f"{type(partitioner).__name__}.num_partitions is {n}; a "
            f"partitioner must expose at least one partition",
            rule="REPRO110",
        )
    boundaries = partitioner.boundaries()
    if len(boundaries) != n:
        raise StrictModeViolation(
            f"{type(partitioner).__name__} exposes {len(boundaries)} "
            f"boundaries for {n} partitions; the on-disk metadata writer "
            f"needs exactly one box per partition",
            rule="REPRO110",
        )
    for instance in list(sample)[:limit]:
        first = partitioner.assign(instance)
        second = partitioner.assign(instance)
        if first != second:
            raise StrictModeViolation(
                f"{type(partitioner).__name__}.assign is nondeterministic "
                f"({first} then {second} for the same instance); shuffle "
                f"routing requires a pure assigner",
                rule="REPRO110",
            )
        if not 0 <= first < n:
            raise StrictModeViolation(
                f"{type(partitioner).__name__}.assign returned {first}, "
                f"outside [0, {n}); assignment must be total",
                rule="REPRO110",
            )
