"""Accumulators — write-only shared counters for tasks.

The Spark analog: tasks add to an accumulator, only the driver reads the
total.  Used by application code to count records processed, filtered, or
skipped without an extra action over the data.
"""

from __future__ import annotations

from threading import Lock
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A thread-safe fold cell: ``add`` from tasks, ``value`` on the driver.

    ``combine`` must be associative and commutative (same contract Spark
    imposes); the default is numeric addition.
    """

    def __init__(self, zero: T, combine: Callable[[T, T], T] | None = None, name: str = ""):
        self._value = zero
        self._zero = zero
        self._combine = combine or (lambda a, b: a + b)  # type: ignore[operator]
        self._lock = Lock()
        self.name = name

    def add(self, increment: T) -> None:
        """Fold an increment into the accumulator (thread-safe)."""
        with self._lock:
            self._value = self._combine(self._value, increment)

    @property
    def value(self) -> T:
        """Current accumulated value."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self._value = self._zero

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Accumulator{label}(value={self.value!r})"

    # Task closures capture accumulators, so the process backend pickles
    # them into workers; the lock must not travel.  A worker's copy folds
    # locally and its total is lost when the worker exits — the documented
    # best-effort semantics of accumulators across process boundaries
    # (same pattern as AllocationStats).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = Lock()


def counter(name: str = "") -> Accumulator[int]:
    """The common case: an integer counter starting at zero."""
    return Accumulator(0, name=name)
