"""Engine exception hierarchy."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine failures."""


class TaskFailure(EngineError):
    """A task raised; carries the partition index for diagnostics.

    The executor retries a failed task up to ``EngineContext.max_task_retries``
    times (Spark's ``spark.task.maxFailures`` analog) before surfacing this.
    ``elapsed_seconds`` is the wall-clock wasted across the failed attempts,
    so retry overhead stays visible in :class:`~repro.engine.metrics.JobMetrics`
    even when a stage ultimately aborts.
    """

    def __init__(
        self,
        partition: int,
        attempts: int,
        cause: BaseException | None,
        elapsed_seconds: float = 0.0,
    ):
        super().__init__(
            f"task for partition {partition} failed after {attempts} attempt(s): {cause!r}"
        )
        self.partition = partition
        self.attempts = attempts
        self.cause = cause
        self.elapsed_seconds = elapsed_seconds

    def __reduce__(self):
        # Process-pool workers ship this exception back through pickle; the
        # default exception reduction would replay __init__ with the message
        # string only, losing the structured fields.
        return (
            TaskFailure,
            (self.partition, self.attempts, self.cause, self.elapsed_seconds),
        )


class TaskSerializationError(EngineError):
    """A stage could not be shipped to a process-pool worker.

    Raised by the process backend when pickling the stage's task closure
    (the RDD lineage, the context, or the failure injector) fails.  The
    fix is to keep everything the stage references picklable — module-level
    functions instead of objects holding locks/files/sockets; with
    ``cloudpickle`` installed, lambdas and local closures are fine.
    """


class StrictModeViolation(EngineError):
    """A strict-mode sanitizer check failed (``EngineContext(strict=True)``).

    Raised driver-side, *before or after* a stage runs — never from a
    worker — when a stage closure would not survive the process backend:
    an unpicklable capture, a failed pickle round-trip, task-side mutation
    of captured state, a mutated broadcast value, or a partitioner
    breaking the assign contract.  The message names the offending
    function and capture; the static analog is the ``repro lint`` rule
    cited in it.
    """

    def __init__(self, message: str, rule: str | None = None):
        if rule is not None:
            message = f"[{rule}] {message}"
        super().__init__(message)
        self.rule = rule


class TaskTimeout(EngineError):
    """A task exceeded the process backend's per-task timeout.

    Used as the ``cause`` of the :class:`TaskFailure` raised once every
    re-execution of a timed-out task has also exceeded the budget.
    """

    def __init__(self, partition: int, timeout_seconds: float):
        super().__init__(
            f"task for partition {partition} exceeded {timeout_seconds:.3f}s timeout"
        )
        self.partition = partition
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (TaskTimeout, (self.partition, self.timeout_seconds))
