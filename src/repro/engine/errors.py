"""Engine exception hierarchy."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine failures."""


class TaskFailure(EngineError):
    """A task raised; carries the partition index for diagnostics.

    The executor retries a failed task up to ``EngineContext.max_task_retries``
    times (Spark's ``spark.task.maxFailures`` analog) before surfacing this.
    ``elapsed_seconds`` is the wall-clock wasted across the failed attempts,
    so retry overhead stays visible in :class:`~repro.engine.metrics.JobMetrics`
    even when a stage ultimately aborts.  ``history`` is the per-attempt
    error log — ``(attempt_number, error_repr)`` pairs — so a stage abort
    shows *every* error the retries saw, not just the last one.
    """

    def __init__(
        self,
        partition: int,
        attempts: int,
        cause: BaseException | None,
        elapsed_seconds: float = 0.0,
        history: tuple[tuple[int, str], ...] = (),
    ):
        message = (
            f"task for partition {partition} failed after {attempts} attempt(s): {cause!r}"
        )
        if history:
            trail = "; ".join(f"#{n}: {err}" for n, err in history)
            message += f" [attempt history: {trail}]"
        super().__init__(message)
        self.partition = partition
        self.attempts = attempts
        self.cause = cause
        self.elapsed_seconds = elapsed_seconds
        self.history = tuple(history)

    def __reduce__(self):
        # Process-pool workers ship this exception back through pickle; the
        # default exception reduction would replay __init__ with the message
        # string only, losing the structured fields.
        return (
            TaskFailure,
            (
                self.partition,
                self.attempts,
                self.cause,
                self.elapsed_seconds,
                self.history,
            ),
        )


class TaskSerializationError(EngineError):
    """A stage could not be shipped to a process-pool worker.

    Raised by the process backend when pickling the stage's task closure
    (the RDD lineage, the context, or the failure injector) fails.  The
    fix is to keep everything the stage references picklable — module-level
    functions instead of objects holding locks/files/sockets; with
    ``cloudpickle`` installed, lambdas and local closures are fine.
    """


class StrictModeViolation(EngineError):
    """A strict-mode sanitizer check failed (``EngineContext(strict=True)``).

    Raised driver-side, *before or after* a stage runs — never from a
    worker — when a stage closure would not survive the process backend:
    an unpicklable capture, a failed pickle round-trip, task-side mutation
    of captured state, a mutated broadcast value, or a partitioner
    breaking the assign contract.  The message names the offending
    function and capture; the static analog is the ``repro lint`` rule
    cited in it.
    """

    def __init__(self, message: str, rule: str | None = None):
        if rule is not None:
            message = f"[{rule}] {message}"
        super().__init__(message)
        self.rule = rule


class LockOrderViolation(EngineError):
    """The runtime lock-order sanitizer detected a deadlock hazard.

    Raised by :mod:`repro.engine.lockwatch` in two cases: a thread
    blocking-reacquires a non-reentrant lock it already holds (certain
    self-deadlock — always raised), or an acquisition closes a cycle in
    the global lock-order graph while the watcher runs with
    ``raise_on_cycle=True`` (in the default record mode cycles are only
    reported).  ``cycle`` is the ordered tuple of lock creation-site
    labels forming the loop.
    """

    def __init__(self, message: str, cycle: tuple[str, ...] = ()):
        super().__init__(message)
        self.cycle = tuple(cycle)


class TaskTimeout(EngineError):
    """A task exceeded the process backend's per-task timeout.

    Used as the ``cause`` of the :class:`TaskFailure` raised once every
    re-execution of a timed-out task has also exceeded the budget.
    """

    def __init__(self, partition: int, timeout_seconds: float):
        super().__init__(
            f"task for partition {partition} exceeded {timeout_seconds:.3f}s timeout"
        )
        self.partition = partition
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (TaskTimeout, (self.partition, self.timeout_seconds))


class InjectedFault(EngineError):
    """A fault raised on purpose by an active :class:`~repro.engine.faults.FaultPlan`.

    Retryable like any task error; the shared attempt loop additionally
    counts it in ``TaskOutcome.injected_faults`` so chaos runs can separate
    injected noise from organic failures in metrics and traces.
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site

    def __reduce__(self):
        return (type(self), (self.args[0], self.site))


class InjectedWorkerLoss(InjectedFault):
    """A simulated worker death on an in-process backend.

    On the process backend a ``worker_kill`` fault SIGKILLs the real worker
    process; the sequential and thread backends have no process to kill, so
    the plan raises this instead — same retry path, same accounting.
    """


class RetryBudgetExhausted(EngineError):
    """A stage burned through its shared retry budget (``RetryPolicy.stage_attempt_budget``).

    Used as the ``cause`` of the surfacing :class:`TaskFailure`: the task
    that hit the empty budget aborts even though its own per-task attempt
    allowance was not exhausted.
    """

    def __init__(self, partition: int, budget: int):
        super().__init__(
            f"stage retry budget exhausted ({budget} failed attempt(s) across "
            f"the stage); partition {partition} aborted"
        )
        self.partition = partition
        self.budget = budget

    def __reduce__(self):
        return (RetryBudgetExhausted, (self.partition, self.budget))


class CorruptPartitionError(EngineError):
    """An on-disk partition block could not be deserialized.

    Raised by the stio reader when a block file's pickle stream is
    truncated or mangled.  Retryable (a re-read may see clean bytes —
    injected corruption is transient by design); under
    ``on_corrupt="quarantine"`` the reader swallows it, returns an empty
    partition, and counts the file in ``LoadStats.partitions_quarantined``.
    """

    def __init__(self, filename: str, detail: str = ""):
        message = f"corrupt partition block {filename!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.filename = filename
        self.detail = detail

    def __reduce__(self):
        return (CorruptPartitionError, (self.filename, self.detail))


class WorkerLostError(EngineError):
    """The process pool died mid-stage, with work still outstanding.

    Raised driver-side by the process backend (never pickled) so the
    engine's recovery loop can salvage the outcomes that already landed
    and recompute *only* the lost partitions from lineage, instead of
    aborting or re-running the whole stage.  ``outcomes`` are the salvaged
    :class:`~repro.engine.exec.TaskOutcome` records; ``lost_partitions``
    are the partition indices still owed.
    """

    def __init__(self, outcomes: list, lost_partitions: list[int]):
        super().__init__(
            f"worker process lost mid-stage; {len(outcomes)} task(s) salvaged, "
            f"partitions {lost_partitions} need recomputation"
        )
        self.outcomes = outcomes
        self.lost_partitions = list(lost_partitions)
