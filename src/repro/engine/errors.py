"""Engine exception hierarchy."""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all engine failures."""


class TaskFailure(EngineError):
    """A task raised; carries the partition index for diagnostics.

    The executor retries a failed task up to ``EngineContext.max_task_retries``
    times (Spark's ``spark.task.maxFailures`` analog) before surfacing this.
    """

    def __init__(self, partition: int, attempts: int, cause: BaseException):
        super().__init__(
            f"task for partition {partition} failed after {attempts} attempt(s): {cause!r}"
        )
        self.partition = partition
        self.attempts = attempts
        self.cause = cause
