"""The engine context — ``SparkContext`` analog."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.engine.broadcast import Broadcast
from repro.engine.errors import TaskFailure
from repro.engine.metrics import JobMetrics, TaskMetrics

T = TypeVar("T")


class EngineContext:
    """Owns RDD creation, the executor pool, broadcasts, and metrics.

    Parameters
    ----------
    default_parallelism:
        Partition count used when a transformation does not specify one —
        the analog of ``spark.default.parallelism``.
    parallel:
        When true, independent tasks of a stage run on a thread pool of
        ``default_parallelism`` workers.  The default is sequential
        execution, which keeps benchmark timings deterministic; the engine's
        counted-work metrics are identical either way.
    max_task_retries:
        How many times a failing task is retried before the job aborts
        (``spark.task.maxFailures``).
    """

    def __init__(
        self,
        default_parallelism: int = 8,
        parallel: bool = False,
        max_task_retries: int = 3,
    ):
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be positive")
        if max_task_retries < 1:
            raise ValueError("max_task_retries must be positive")
        self.default_parallelism = default_parallelism
        self.parallel = parallel
        self.max_task_retries = max_task_retries
        self.metrics = JobMetrics()
        self._pool: ThreadPoolExecutor | None = None
        self._metrics_lock = Lock()
        self._in_task = threading.local()
        #: Test hook: callable ``(partition, attempt) -> None`` invoked before
        #: each task attempt; raising simulates an executor fault.
        self.task_failure_injector: Callable[[int, int], None] | None = None

    # -- RDD creation -----------------------------------------------------------

    def parallelize(self, data: Iterable[T], num_partitions: int | None = None):
        """Distribute a local collection into an RDD."""
        from repro.engine.rdd import RDD

        items = list(data)
        n = num_partitions or self.default_parallelism
        n = max(1, min(n, max(1, len(items)))) if items else max(1, n)
        return RDD._from_collection(self, items, n)

    def from_partitions(self, partitions: Sequence[list]):
        """Build an RDD with an explicit pre-partitioned layout.

        Used by the on-disk reader, where the partition layout on disk *is*
        the layout in memory (the point of Section 4.1).
        """
        from repro.engine.rdd import RDD

        return RDD._from_partitions(self, [list(p) for p in partitions])

    def empty_rdd(self):
        """A single empty partition."""
        from repro.engine.rdd import RDD

        return RDD._from_partitions(self, [[]])

    def union(self, rdds: Sequence):
        """Union a sequence of RDDs pairwise."""
        if not rdds:
            raise ValueError("cannot union zero RDDs")
        result = rdds[0]
        for rdd in rdds[1:]:
            result = result.union(rdd)
        return result

    # -- broadcast ----------------------------------------------------------------

    def broadcast(self, value: T, record_count: int | None = None) -> Broadcast[T]:
        """Share a read-only value with all tasks and meter its size.

        ``record_count`` is the number of logical records the value carries
        (e.g. structure cells); when omitted, ``len(value)`` is used if the
        value is sized, else 1.
        """
        if record_count is None:
            try:
                record_count = len(value)  # type: ignore[arg-type]
            except TypeError:
                record_count = 1
        with self._metrics_lock:
            self.metrics.broadcast_count += 1
            self.metrics.broadcast_records += record_count
        return Broadcast(value)

    # -- execution ------------------------------------------------------------------

    def run_stage(
        self,
        num_partitions: int,
        task: Callable[[int], list],
    ) -> list[list]:
        """Execute ``task`` for every partition index and gather outputs.

        Each task is retried on failure up to ``max_task_retries`` times.
        Metrics (records out, elapsed, attempts) are recorded per task.
        """
        with self._metrics_lock:
            self.metrics.stages += 1

        def run_one(partition: int) -> list:
            last_error: BaseException | None = None
            for attempt in range(1, self.max_task_retries + 1):
                start = time.perf_counter()
                try:
                    if self.task_failure_injector is not None:
                        self.task_failure_injector(partition, attempt)
                    result = task(partition)
                except Exception as exc:  # noqa: BLE001 - retry any task error
                    last_error = exc
                    continue
                elapsed = time.perf_counter() - start
                with self._metrics_lock:
                    self.metrics.record_task(
                        TaskMetrics(
                            partition=partition,
                            records_out=len(result),
                            elapsed_seconds=elapsed,
                            attempts=attempt,
                        )
                    )
                return result
            raise TaskFailure(partition, self.max_task_retries, last_error)

        # Nested stages (a shuffle's map side evaluated from inside a pool
        # worker) must not be submitted back to the same pool: the outer
        # tasks occupy every worker while blocking on the shuffle lock, so
        # the inner futures would never be scheduled — a deadlock.  Run
        # nested stages inline on the calling worker instead.
        nested = getattr(self._in_task, "active", False)
        if self.parallel and num_partitions > 1 and not nested:
            pool = self._ensure_pool()

            def run_in_worker(partition: int) -> list:
                self._in_task.active = True
                try:
                    return run_one(partition)
                finally:
                    self._in_task.active = False

            futures = [pool.submit(run_in_worker, i) for i in range(num_partitions)]
            return [f.result() for f in futures]
        return [run_one(i) for i in range(num_partitions)]

    def record_shuffle(self, records: int) -> None:
        """Meter one shuffle's record volume."""
        with self._metrics_lock:
            self.metrics.shuffle_records += records
            self.metrics.shuffle_count += 1

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.default_parallelism)
        return self._pool

    # -- lifecycle ----------------------------------------------------------------------

    def stop(self) -> None:
        """Shut the executor pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        mode = "parallel" if self.parallel else "sequential"
        return f"EngineContext(parallelism={self.default_parallelism}, {mode})"
