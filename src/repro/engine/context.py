"""The engine context — ``SparkContext`` analog."""

from __future__ import annotations

import os
import pickle
import threading
from contextlib import contextmanager
from threading import Lock
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence, TypeVar

from dataclasses import replace as _spec_replace

from repro.engine.broadcast import Broadcast
from repro.engine.errors import EngineError, TaskFailure, WorkerLostError
from repro.engine.exec import Backend, SequentialBackend, StageSpec, resolve_backend
from repro.engine.faults import FaultPlan, RecoveryOptions, RetryPolicy, demotion_target
from repro.engine.metrics import JobMetrics, TaskMetrics
from repro.engine.sanitizer import StageSanitizer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracer import Tracer

T = TypeVar("T")


class EngineContext:
    """Owns RDD creation, the execution backend, broadcasts, and metrics.

    Parameters
    ----------
    default_parallelism:
        Partition count used when a transformation does not specify one —
        the analog of ``spark.default.parallelism``.  Pool-based backends
        also size their worker pools from it.
    parallel:
        Back-compat alias: ``parallel=True`` selects the thread backend
        (the behavior this flag historically enabled).  Ignored when
        ``backend`` is given.
    max_task_retries:
        How many times a failing task is retried before the job aborts
        (``spark.task.maxFailures``).
    backend:
        Stage-execution strategy: a name (``"sequential"`` | ``"thread"``
        | ``"process"``), a :class:`~repro.engine.exec.Backend` instance,
        or ``None`` for the default.  With ``None`` the
        ``REPRO_DEFAULT_BACKEND`` environment variable is consulted first
        (how ``repro trace --backend`` steers scripts that build their own
        context), then ``parallel``.  Sequential execution keeps benchmark
        timings deterministic; the engine's counted-work metrics are
        identical on every backend.
    tracer:
        A :class:`~repro.obs.Tracer` receiving stage/task spans and engine
        counters.  ``None`` (the default) falls back to the globally
        installed tracer (:func:`repro.obs.current_tracer`), so profiling
        can be enabled around unmodified code; when neither is set the
        instrumentation is skipped entirely.
    backend_options:
        Extra constructor kwargs for a backend given by name (e.g.
        ``{"task_timeout": 30.0}`` for the process backend).
    strict:
        Enable the runtime sanitizer (:mod:`repro.engine.sanitizer`):
        every top-level stage's closure is pickle-round-tripped with the
        process backend's serializer and its captures are fingerprinted
        before/after execution, so unpicklable captures, task-side
        mutation of captured state, and broadcast mutation raise
        :class:`~repro.engine.errors.StrictModeViolation` on *any*
        backend — the dynamic backstop of ``repro lint``.  Also installs
        the lock-order sanitizer (:mod:`repro.engine.lockwatch`) in
        record mode, the dynamic backstop of the REPRO2xx rules.  Costs
        one serialization pass per stage; meant for tests and debugging.
    fault_plan:
        A :class:`~repro.engine.faults.FaultPlan` (or dict / JSON string /
        path to one) injecting deterministic faults into every stage.
        ``None`` consults the ``REPRO_FAULT_PLAN`` environment variable
        (how ``repro chaos`` steers scripts that build their own context);
        unset means no injection.
    retry_policy:
        A :class:`~repro.engine.faults.RetryPolicy` governing the shared
        attempt loop on every backend — attempt caps, exponential backoff
        with deterministic jitter, retry deadlines, per-stage budgets.
        ``None`` builds one from ``max_task_retries``; an explicit policy
        overrides ``max_task_retries`` with its ``max_attempts``.
    recovery:
        :class:`~repro.engine.faults.RecoveryOptions` for the worker-loss
        recovery loop: how many lost-partition recomputation rounds a
        stage gets, and when repeated loss demotes the backend along the
        process→thread→sequential ladder.
    """

    def __init__(
        self,
        default_parallelism: int = 8,
        parallel: bool = False,
        max_task_retries: int = 3,
        backend: "str | Backend | None" = None,
        backend_options: dict | None = None,
        strict: bool = False,
        tracer: "Tracer | None" = None,
        fault_plan: "FaultPlan | dict | str | None" = None,
        retry_policy: RetryPolicy | None = None,
        recovery: RecoveryOptions | None = None,
    ):
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be positive")
        if max_task_retries < 1:
            raise ValueError("max_task_retries must be positive")
        self.default_parallelism = default_parallelism
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_task_retries)
        )
        # Back-compat view of the attempt cap; the policy is authoritative.
        self.max_task_retries = self.retry_policy.max_attempts
        self.fault_plan = (
            FaultPlan.from_spec(fault_plan)
            if fault_plan is not None
            else FaultPlan.from_env()
        )
        self.recovery = recovery if recovery is not None else RecoveryOptions()
        self.metrics = JobMetrics()
        self._tracer_override = tracer
        if backend is None:
            backend = os.environ.get("REPRO_DEFAULT_BACKEND") or (
                "thread" if parallel else "sequential"
            )
        self._backend = resolve_backend(backend, default_parallelism, backend_options)
        self._inline = SequentialBackend()
        self.strict = strict
        self._sanitizer = StageSanitizer() if strict else None
        if strict:
            # Strict mode also turns on the runtime lock-order sanitizer
            # (record mode): cycles surface in watcher().violations and the
            # REPRO_LOCK_GRAPH_OUT dump rather than raising mid-stage.
            from repro.engine import lockwatch

            lockwatch.install()
        self._metrics_lock = Lock()
        self._in_task = threading.local()
        #: Cumulative worker losses, driving the demotion ladder.
        self._worker_losses_since_demotion = 0
        #: True on the pickled copy of this context living inside a
        #: process-pool worker: every stage there runs inline.
        self._worker_side = False
        #: Test hook: callable ``(partition, attempt) -> None`` invoked before
        #: each task attempt; raising simulates an executor fault.
        self.task_failure_injector: Callable[[int, int], None] | None = None

    # -- tracing ------------------------------------------------------------------

    @property
    def tracer(self) -> "Tracer | None":
        """The tracer receiving this context's spans, if any.

        The explicit constructor argument wins; otherwise the globally
        installed tracer is used.  Worker-side context copies never trace:
        their spans would die with the worker (task timing still reaches
        the driver's tracer through the shipped outcomes).
        """
        if self._worker_side:
            return None
        if self._tracer_override is not None:
            return self._tracer_override
        from repro.obs.tracer import current_tracer

        return current_tracer()

    # -- backend selection --------------------------------------------------------

    @property
    def backend(self) -> Backend:
        """The active stage-execution backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self._backend.name

    @property
    def parallel(self) -> bool:
        """True when stages run on a worker pool (back-compat view)."""
        return self._backend.name != "sequential"

    @contextmanager
    def using_backend(
        self, backend: "str | Backend", **options: Any
    ) -> Iterator["EngineContext"]:
        """Temporarily execute stages on a different backend.

        Only *eager* work inside the block is affected — lazy RDDs
        evaluated after the block use the context's regular backend.  A
        backend created here from a name is stopped on exit; a passed-in
        instance is left running for its owner.
        """
        previous = self._backend
        replacement = resolve_backend(backend, self.default_parallelism, options or None)
        owned = replacement is not backend
        self._backend = replacement
        try:
            yield self
        finally:
            self._backend = previous
            if owned:
                replacement.stop()

    # -- RDD creation -----------------------------------------------------------

    def parallelize(self, data: Iterable[T], num_partitions: int | None = None):
        """Distribute a local collection into an RDD."""
        from repro.engine.rdd import RDD

        items = list(data)
        n = num_partitions or self.default_parallelism
        n = max(1, min(n, max(1, len(items)))) if items else max(1, n)
        return RDD._from_collection(self, items, n)

    def from_partitions(self, partitions: Sequence[list], copy: bool = True):
        """Build an RDD with an explicit pre-partitioned layout.

        Used by the on-disk reader, where the partition layout on disk *is*
        the layout in memory (the point of Section 4.1).  ``copy=False``
        adopts the caller's list objects as the partitions — for owners of
        long-lived resident partitions (the serve daemon's block cache),
        whose identity keys the per-partition selection-index cache; such
        callers must not mutate the lists afterwards.
        """
        from repro.engine.rdd import RDD

        if copy:
            partitions = [list(p) for p in partitions]
        elif not all(isinstance(p, list) for p in partitions):
            partitions = [p if isinstance(p, list) else list(p) for p in partitions]
        return RDD._from_partitions(self, list(partitions))

    def empty_rdd(self):
        """A single empty partition."""
        from repro.engine.rdd import RDD

        return RDD._from_partitions(self, [[]])

    def union(self, rdds: Sequence):
        """Union a sequence of RDDs pairwise."""
        if not rdds:
            raise ValueError("cannot union zero RDDs")
        result = rdds[0]
        for rdd in rdds[1:]:
            result = result.union(rdd)
        return result

    # -- broadcast ----------------------------------------------------------------

    def broadcast(self, value: T, record_count: int | None = None) -> Broadcast[T]:
        """Share a read-only value with all tasks and meter its size.

        ``record_count`` is the number of logical records the value carries
        (e.g. structure cells); when omitted, ``len(value)`` is used if the
        value is sized, else 1.
        """
        if record_count is None:
            try:
                record_count = len(value)  # type: ignore[arg-type]
            except TypeError:
                record_count = 1
        with self._metrics_lock:
            self.metrics.broadcast_count += 1
            self.metrics.broadcast_records += record_count
        tracer = self.tracer
        if tracer is not None:
            tracer.counter("broadcasts", 1)
            tracer.counter("broadcast_records", record_count)
            # Payload size is metered only under tracing: serializing the
            # value is exactly the cost the untraced hot path avoids.
            # Protocol 5 with out-of-band buffers splits the measurement:
            # ``broadcast_bytes`` stays the total (comparable with older
            # traces), ``broadcast_oob_bytes`` is the share that large
            # ndarray payloads (BoxTables, packed trees, grids) keep out
            # of the in-band pickle stream.
            try:
                oob: list[int] = []
                payload = pickle.dumps(
                    value,
                    protocol=5,
                    buffer_callback=lambda buf: oob.append(buf.raw().nbytes),
                )
                oob_bytes = sum(oob)
                tracer.counter("broadcast_bytes", len(payload) + oob_bytes)
                if oob_bytes:
                    tracer.counter("broadcast_oob_bytes", oob_bytes)
            except Exception:  # unpicklable broadcasts still broadcast fine
                pass
        broadcast = Broadcast(value)
        if self._sanitizer is not None:
            self._sanitizer.register_broadcast(broadcast)
        return broadcast

    # -- execution ------------------------------------------------------------------

    def run_stage(
        self,
        num_partitions: int,
        task: Callable[[int], list],
    ) -> list[list]:
        """Execute ``task`` for every partition index and gather outputs.

        Execution is delegated to the configured backend; each task is
        retried on failure up to ``max_task_retries`` times, and per-task
        metrics — records out, elapsed, attempts, retry overhead, worker,
        speculative wins — are merged into :attr:`metrics`.
        """
        with self._metrics_lock:
            self.metrics.stages += 1
            stage_no = self.metrics.stages

        def tracked(partition: int) -> list:
            # Mark "inside a task" so nested stages (a shuffle's map side
            # evaluated from within a pool worker) run inline instead of
            # being resubmitted to a pool whose workers are all blocked on
            # the shuffle lock — a deadlock.
            previous = getattr(self._in_task, "active", False)
            self._in_task.active = True
            try:
                return task(partition)
            finally:
                self._in_task.active = previous

        spec = StageSpec(
            num_partitions=num_partitions,
            task=tracked,
            max_task_retries=self.max_task_retries,
            failure_injector=self.task_failure_injector,
            policy=self.retry_policy,
            fault_plan=self.fault_plan,
            stage_no=stage_no,
            budget=self.retry_policy.new_stage_budget(),
        )
        nested = getattr(self._in_task, "active", False) or self._worker_side
        backend = self._inline if nested or num_partitions == 1 else self._backend
        # Trace only driver-side top-level stages: nested stages run inline
        # inside an already-spanned task, and which side of a process
        # boundary they land on is backend-dependent — skipping them keeps
        # the span tree identical across backends.
        tracer = self.tracer if not nested else None
        stage_span = None
        if tracer is not None:
            stage_span = tracer.begin(
                f"stage-{stage_no}",
                "stage",
                backend=backend.name,
                partitions=num_partitions,
            )
        # Strict mode inspects only driver-side top-level stages — nested
        # stages run inside a task whose closure was already vetted.
        snapshot = None
        if self._sanitizer is not None and not nested:
            snapshot = self._sanitizer.check_stage(task)
        try:
            stage = self._run_stage_with_recovery(
                spec, backend, nested, stage_no, tracer, stage_span
            )
        except TaskFailure as failure:
            with self._metrics_lock:
                self.metrics.record_failed_task(
                    TaskMetrics(
                        partition=failure.partition,
                        records_out=0,
                        elapsed_seconds=0.0,
                        attempts=failure.attempts,
                        failed_attempts=failure.attempts,
                        failed_seconds=failure.elapsed_seconds,
                    )
                )
            if stage_span is not None:
                tracer.finish(stage_span, failed=True)
            raise
        except EngineError:
            if stage_span is not None:
                tracer.finish(stage_span, failed=True)
            raise
        outcomes = sorted(stage.outcomes, key=lambda o: o.partition)
        with self._metrics_lock:
            self.metrics.speculative_launched += stage.speculative_launched
            self.metrics.speculative_wins += stage.speculative_wins
            for outcome in outcomes:
                self.metrics.record_task(
                    TaskMetrics(
                        partition=outcome.partition,
                        records_out=len(outcome.result),
                        elapsed_seconds=outcome.elapsed_seconds,
                        attempts=outcome.attempts,
                        failed_attempts=outcome.failed_attempts,
                        failed_seconds=outcome.failed_seconds,
                        worker=outcome.worker,
                        speculative=outcome.speculative,
                        started_wall=outcome.started_wall,
                        injected_faults=outcome.injected_faults,
                        injected_delay_seconds=outcome.injected_delay_seconds,
                    )
                )
        if stage_span is not None:
            self._trace_stage(tracer, stage_span, stage, outcomes)
        if snapshot is not None:
            self._sanitizer.verify_stage(task, snapshot)
        return [outcome.result for outcome in outcomes]

    def _run_stage_with_recovery(
        self, spec: StageSpec, backend: Backend, nested: bool, stage_no: int, tracer, stage_span
    ):
        """Run one stage, recomputing lost partitions after worker death.

        The process backend surfaces a dead worker as
        :class:`~repro.engine.errors.WorkerLostError` carrying every task
        outcome that already landed.  Recovery keeps those and re-runs
        *only* the missing partitions — lineage recomputation, not a
        whole-stage re-run — with ``attempt_offset`` bumped so per-task
        retry caps (and first-attempt-only fault rules) keep counting
        across the boundary.  Repeated loss demotes the backend along the
        process→thread→sequential ladder (:mod:`repro.engine.faults.recovery`).
        """
        import time as _time

        salvaged: dict = {}  # partition -> salvaged TaskOutcome
        recoveries = 0
        speculative_launched = 0
        speculative_wins = 0
        recovery_started: float | None = None
        while True:
            try:
                stage = backend.run_stage(spec)
            except WorkerLostError as loss:
                for outcome in loss.outcomes:
                    salvaged[outcome.partition] = outcome
                remaining = [
                    p for p in spec.partition_ids() if p not in salvaged
                ]
                recoveries += 1
                with self._metrics_lock:
                    self.metrics.worker_losses += 1
                    self.metrics.partitions_recomputed += len(remaining)
                self._worker_losses_since_demotion += 1
                now = _time.time()
                if tracer is not None:
                    tracer.counter("worker_losses", 1)
                    tracer.counter("partitions_recomputed", len(remaining))
                    tracer.add_span(
                        f"worker-loss-{recoveries}",
                        "fault",
                        now,
                        now,
                        parent=stage_span,
                        salvaged=len(salvaged),
                        lost_partitions=remaining,
                    )
                if recoveries > self.recovery.max_stage_recoveries:
                    raise EngineError(
                        f"stage {stage_no} lost workers {recoveries} times "
                        f"(recovery limit {self.recovery.max_stage_recoveries}); "
                        f"giving up with partitions {remaining} incomplete"
                    ) from loss
                backend = self._maybe_demote(backend, nested, tracer, stage_span)
                recovery_started = now
                spec = _spec_replace(
                    spec,
                    partitions=remaining,
                    attempt_offset=spec.attempt_offset + 1,
                )
                continue
            speculative_launched += stage.speculative_launched
            speculative_wins += stage.speculative_wins
            if recovery_started is not None and tracer is not None:
                tracer.add_span(
                    f"recovery-{recoveries}",
                    "recovery",
                    recovery_started,
                    _time.time(),
                    parent=stage_span,
                    partitions=len(spec.partition_ids()),
                    backend=backend.name,
                )
            break
        if salvaged:
            for outcome in stage.outcomes:
                salvaged[outcome.partition] = outcome
            stage.outcomes = [salvaged[p] for p in sorted(salvaged)]
        stage.speculative_launched = speculative_launched
        stage.speculative_wins = speculative_wins
        return stage

    def _maybe_demote(self, backend: Backend, nested: bool, tracer, stage_span) -> Backend:
        """Demote the context's backend one ladder rung if loss warrants it.

        Returns the backend the recovery re-dispatch should use: the
        demoted one when demotion happened, the (freshly re-pooled)
        current backend otherwise.
        """
        if (
            nested
            or not self.recovery.demote
            or backend is not self._backend
            or self._worker_losses_since_demotion < self.recovery.demote_after_worker_losses
        ):
            return self._backend if backend is self._backend else backend
        target = demotion_target(self._backend.name)
        if target is None:
            return self._backend
        import time as _time

        previous = self._backend
        self._backend = resolve_backend(target, self.default_parallelism, None)
        previous.stop()
        self._worker_losses_since_demotion = 0
        with self._metrics_lock:
            self.metrics.backend_demotions += 1
        if tracer is not None:
            tracer.counter("backend_demotions", 1)
            now = _time.time()
            tracer.add_span(
                "backend-demotion",
                "recovery",
                now,
                now,
                parent=stage_span,
                from_backend=previous.name,
                to_backend=target,
            )
        return self._backend

    def _trace_stage(self, tracer, stage_span, stage, outcomes) -> None:
        """Replay a finished stage's task outcomes as spans + counters.

        Task spans are reconstructed driver-side from the wall-clock
        stamps every backend's outcomes carry — this is the whole
        tracer↔backend contract, and why it works unchanged for the
        process backend, whose workers never see the tracer.
        """
        records = 0
        injected = 0
        injected_delay = 0.0
        for outcome in outcomes:
            records += len(outcome.result)
            injected += outcome.injected_faults
            injected_delay += outcome.injected_delay_seconds
            start = outcome.started_wall or stage_span.start
            tracer.add_span(
                f"task-{outcome.partition}",
                "task",
                start,
                start + outcome.elapsed_seconds,
                parent=stage_span,
                track=outcome.worker,
                partition=outcome.partition,
                records_out=len(outcome.result),
                attempts=outcome.attempts,
                speculative=outcome.speculative,
                # Injected-fault args appear only under an active plan, so
                # fault-free span trees stay identical across backends.
                **(
                    {"injected_faults": outcome.injected_faults}
                    if outcome.injected_faults
                    else {}
                ),
            )
        tracer.counter("stages", 1)
        tracer.counter("tasks", len(outcomes))
        tracer.counter("records_out", records)
        if injected:
            tracer.counter("faults_injected", injected)
        if injected_delay:
            tracer.counter("fault_delay_seconds", round(injected_delay, 6))
        exec_window = (
            max(0.0, stage.ended_wall - stage.started_wall)
            if stage.ended_wall
            else None
        )
        tracer.finish(
            stage_span,
            records_out=records,
            speculative_launched=stage.speculative_launched,
            speculative_wins=stage.speculative_wins,
            **({"exec_window_seconds": round(exec_window, 6)} if exec_window is not None else {}),
        )

    def record_shuffle(self, records: int) -> None:
        """Meter one shuffle's record volume."""
        with self._metrics_lock:
            self.metrics.shuffle_records += records
            self.metrics.shuffle_count += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.counter("shuffles", 1)
            tracer.counter("shuffle_records", records)

    # -- pickling (process backend ships the context inside task closures) ----------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Locks, thread-locals, and worker pools don't pickle — and the
        # worker-side copy must never dispatch to a pool anyway.  Metrics
        # history stays driver-side; workers report through task outcomes.
        state["_metrics_lock"] = None
        state["_in_task"] = None
        state["_backend"] = None
        state["metrics"] = JobMetrics()
        state["_worker_side"] = True
        # The tracer holds locks and thread-locals and is driver-only by
        # design: worker-side spans could never reach the driver's tree.
        state["_tracer_override"] = None
        # The sanitizer holds live broadcast references and only ever runs
        # driver-side; the worker copy gets none.
        state["_sanitizer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._metrics_lock = Lock()
        self._in_task = threading.local()
        self._backend = SequentialBackend()

    # -- back-compat -----------------------------------------------------------------

    @property
    def _pool(self):
        """Legacy peek at the thread backend's pool (None otherwise)."""
        return getattr(self._backend, "_pool", None)

    # -- lifecycle ----------------------------------------------------------------------

    def stop(self) -> None:
        """Shut the backend's worker pool down."""
        self._backend.stop()

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"EngineContext(parallelism={self.default_parallelism}, "
            f"backend={self._backend.name})"
        )
