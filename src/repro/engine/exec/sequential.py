"""Inline execution — the default, deterministic backend."""

from __future__ import annotations

import time

from repro.engine.exec.base import Backend, StageResult, StageSpec, run_task_attempts


class SequentialBackend(Backend):
    """Run every task inline on the calling thread.

    This is the default: wall-clock timings are deterministic and the
    counted-work metrics are identical to the parallel backends', which is
    what keeps benchmark comparisons honest.  It is also the engine's
    fallback for nested stages (a shuffle's map side evaluated from inside
    a pool worker must not be resubmitted to the same pool) and the floor
    of the worker-loss demotion ladder.
    """

    name = "sequential"

    def run_stage(self, spec: StageSpec) -> StageResult:
        started = time.time()
        outcomes = [
            run_task_attempts(
                spec.task,
                partition,
                spec.max_task_retries,
                spec.failure_injector,
                policy=spec.policy,
                fault_plan=spec.fault_plan,
                stage_no=spec.stage_no,
                attempt_offset=spec.attempt_offset,
                budget=spec.budget,
            )
            for partition in spec.partition_ids()
        ]
        return StageResult(outcomes, started_wall=started, ended_wall=time.time())
