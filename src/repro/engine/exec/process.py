"""Multiprocess execution with straggler re-execution.

This is the backend that turns partitioner load balance into wall-clock
speedup: tasks run on a pool of OS processes, sidestepping the GIL for
CPU-bound stages.  The moving parts, in dispatch order:

1. **Serialization.**  The stage's task closure (with the failure-injector
   hook, the retry policy, and the fault plan, so fault injection composes
   with this backend) is pickled *once* per stage — with ``cloudpickle``
   when available, so lambda-laden RDD lineages work; otherwise stdlib
   pickle, which restricts stages to module-level callables.  Workers
   cache the deserialized stage by token, so each worker pays the decode
   once per stage, not once per chunk.
2. **Chunking.**  Partition indices are batched into chunks sized by the
   cost model (:func:`~repro.engine.costmodel.suggest_task_chunks`):
   coarse enough to amortize dispatch, fine enough that late chunks level
   out skew.
3. **Warm-up / reuse.**  The pool is created lazily, primed with no-op
   tasks so fork/import cost is paid before the first timed stage, and
   reused across stages until ``stop()``.
4. **Straggler re-execution.**  Once a quorum of chunks has finished, a
   chunk still running past ``speculative_multiplier ×`` the median chunk
   time (and the ``speculative_fraction`` launch budget) gets one
   speculative copy; whichever copy finishes first wins, and wins are
   reported in :class:`~repro.engine.exec.base.StageResult` (Spark's
   ``spark.speculation`` analog).
5. **Timeout + retry.**  With ``task_timeout`` set, a chunk exceeding it
   is re-dispatched (counting toward the retry limit); when the budget is
   exhausted a :class:`TaskFailure` with a
   :class:`~repro.engine.errors.TaskTimeout` cause surfaces.  In-worker
   exceptions retry inside the worker via the shared attempt loop.
6. **Worker loss.**  A dead worker (SIGKILL, OOM, interpreter crash)
   breaks the pool; instead of aborting, the backend discards the pool
   and raises :class:`~repro.engine.errors.WorkerLostError` carrying every
   outcome that already landed — the engine then recomputes *only* the
   lost partitions from lineage (Spark's recompute-on-executor-loss).

Abandoned copies (speculative losers, timed-out attempts) cannot be
killed mid-task — their results are discarded when they eventually land,
which is exactly Spark's zombie-task behavior.  A *failed* copy landing
while its sibling is still in flight is likewise discarded (its retry
cost folded into the chunk's waste accounting), not raised: the in-flight
copy may yet succeed, and double-raising double-metered the attempts.
"""

from __future__ import annotations

import itertools
import os
import pickle
import statistics
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.engine.errors import (
    EngineError,
    TaskFailure,
    TaskSerializationError,
    TaskTimeout,
    WorkerLostError,
)
from repro.engine.exec.base import Backend, StageResult, StageSpec, TaskOutcome, run_task_attempts

try:  # cloudpickle widens picklability to lambdas/closures; optional.
    import cloudpickle as _closure_pickle
except ImportError:  # pragma: no cover - exercised only without cloudpickle
    _closure_pickle = None

HAS_CLOUDPICKLE = _closure_pickle is not None

_stage_tokens = itertools.count(1)

#: Worker-side cache of deserialized stages, keyed by stage token.  Bounded:
#: a worker only ever runs a few stages concurrently-adjacent in time.
_WORKER_STAGE_CACHE: dict[int, tuple] = {}
_WORKER_STAGE_CACHE_LIMIT = 8


def _serialize_stage(spec: StageSpec) -> tuple[bytes, list[bytes]]:
    """Pickle the stage closure: ``(payload, out-of-band buffers)``.

    Protocol 5 with a ``buffer_callback`` keeps large contiguous blobs
    (BoxTable/packed-tree ndarrays captured by columnar stages) out of the
    in-band pickle stream: the stream holds a reference and the raw bytes
    ship alongside, skipping the frame-copy on both ends.  The split is
    also what the driver meters as ``stage_oob_bytes``.
    """
    dumps = _closure_pickle.dumps if _closure_pickle is not None else pickle.dumps
    buffers: list[bytes] = []
    try:
        payload = dumps(
            (spec.task, spec.failure_injector, spec.policy, spec.fault_plan, spec.stage_no),
            protocol=5,
            buffer_callback=lambda buf: buffers.append(buf.raw().tobytes()),
        )
        return payload, buffers
    except Exception as exc:
        serializer = "cloudpickle" if _closure_pickle is not None else "pickle"
        hint = (
            ""
            if _closure_pickle is not None
            else " (cloudpickle is not installed, so only module-level callables pickle)"
        )
        raise TaskSerializationError(
            f"cannot ship stage to process workers: {serializer} failed with "
            f"{exc!r}; every object the stage references — the RDD lineage, "
            f"the context, the failure injector — must be picklable" + hint
        ) from exc


def _load_stage(token: int, payload: bytes, buffers: list[bytes]) -> tuple:
    cached = _WORKER_STAGE_CACHE.get(token)
    if cached is None:
        # cloudpickle output loads via stdlib pickle; out-of-band buffers
        # are rejoined positionally (pickle 5's buffer protocol).
        cached = pickle.loads(payload, buffers=buffers)
        if len(_WORKER_STAGE_CACHE) >= _WORKER_STAGE_CACHE_LIMIT:
            _WORKER_STAGE_CACHE.pop(next(iter(_WORKER_STAGE_CACHE)))
        _WORKER_STAGE_CACHE[token] = cached
    return cached


def _warm_worker() -> None:
    """Pool initializer: pull the heavy imports before the first task."""
    import repro.engine.rdd  # noqa: F401
    import repro.engine.context  # noqa: F401


def _noop() -> int:
    return os.getpid()


def _run_chunk(
    token: int,
    payload: bytes,
    buffers: list[bytes],
    partitions: list[int],
    max_task_retries: int,
    attempt_offset: int = 0,
    budget=None,
) -> list[TaskOutcome]:
    """Worker entry point: run a batch of tasks, return their outcomes.

    A permanent in-worker failure raises :class:`TaskFailure`, which
    travels back through the pool's result pickling (it defines
    ``__reduce__``; an unpicklable cause is downgraded to its repr).
    ``budget`` is this chunk's copy of the stage retry budget — shipped
    by value, so the cap is per-executor on this backend.
    """
    task, injector, policy, fault_plan, stage_no = _load_stage(token, payload, buffers)
    worker = f"pid-{os.getpid()}"
    outcomes = []
    for partition in partitions:
        try:
            outcomes.append(
                run_task_attempts(
                    task,
                    partition,
                    max_task_retries,
                    injector,
                    worker=worker,
                    policy=policy,
                    fault_plan=fault_plan,
                    stage_no=stage_no,
                    attempt_offset=attempt_offset,
                    budget=budget,
                    process_worker=True,
                )
            )
        except TaskFailure as failure:
            try:
                pickle.dumps(failure.cause)
            except Exception:
                failure.cause = RuntimeError(repr(failure.cause))
            raise failure
    return outcomes


class _ChunkState:
    """Driver-side bookkeeping for one dispatched chunk."""

    __slots__ = (
        "partitions",
        "first_submitted",
        "last_submitted",
        "resubmits",
        "swallowed_timeouts",
        "wasted_attempts",
        "wasted_seconds",
        "speculated",
        "finished",
        "futures",
    )

    def __init__(self, partitions: list[int], now: float):
        self.partitions = partitions
        self.first_submitted = now
        self.last_submitted = now
        self.resubmits = 0  # timeout re-dispatches (count toward retries)
        self.swallowed_timeouts = 0  # zombie failures already covered by resubmits
        self.wasted_attempts = 0  # failed attempts from discarded sibling copies
        self.wasted_seconds = 0.0
        self.speculated = False
        self.finished = False
        self.futures: dict[Future, bool] = {}  # future -> is_speculative


def _note_copy_failure(
    chunk: _ChunkState, failure: TaskFailure, was_speculative: bool
) -> TaskFailure | None:
    """Account one copy's failure; return a failure to raise iff fatal.

    With another copy of the chunk still in flight, the failed copy is a
    zombie: its retry cost is folded into the chunk's waste accounting
    (exactly once — a timed-out original whose re-dispatch is running was
    *already* charged via ``resubmits``, so it folds nothing) and the
    stage keeps running.  Only when the last copy fails does the stage
    abort, with the waste of the discarded copies merged in — previously
    the first landing failure aborted immediately AND re-added the
    resubmit charge on top of the zombie's own attempts, double-metering
    the same logical attempts.
    """
    if chunk.futures:  # a sibling copy is still in flight — may yet win
        if (
            not was_speculative
            and chunk.swallowed_timeouts < chunk.resubmits
        ):
            # A timed-out original landing late: its dispatch was already
            # charged to the winning outcome as a resubmit.
            chunk.swallowed_timeouts += 1
        else:
            chunk.wasted_attempts += failure.attempts
            chunk.wasted_seconds += failure.elapsed_seconds
        return None
    total_attempts = failure.attempts + chunk.wasted_attempts
    if chunk.wasted_attempts == 0:
        failure.attempts = total_attempts
        return failure
    return TaskFailure(
        failure.partition,
        total_attempts,
        failure.cause,
        elapsed_seconds=failure.elapsed_seconds + chunk.wasted_seconds,
        history=failure.history,
    )


class ProcessBackend(Backend):
    """Run stage tasks on a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the CPU count.
    chunk_size:
        Partitions per dispatched batch; ``None`` asks the cost model.
    task_timeout:
        Seconds a chunk may run before being re-dispatched; ``None``
        disables timeouts.  Timed-out dispatches count toward the retry
        limit.
    speculative_fraction:
        Launch budget for speculative copies, as a fraction of the
        stage's chunks (the "slowest K%"); ``0`` disables speculation.
    speculative_multiplier / speculative_floor_seconds:
        A chunk is a straggler when it has run longer than
        ``max(multiplier × median_finished_chunk, floor)`` and at least
        half the chunks have finished.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits imports) else the platform default.
    warmup:
        Prime the pool with no-ops at creation so fork/import cost is
        not billed to the first stage.
    """

    name = "process"
    requires_serializable_tasks = True

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        chunk_size: int | None = None,
        task_timeout: float | None = None,
        speculative_fraction: float = 0.25,
        speculative_multiplier: float = 2.0,
        speculative_floor_seconds: float = 0.5,
        poll_interval: float = 0.02,
        start_method: str | None = None,
        warmup: bool = True,
    ):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("a process backend needs at least one worker")
        if not 0.0 <= speculative_fraction <= 1.0:
            raise ValueError("speculative_fraction must be in [0, 1]")
        self.max_workers = workers
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.speculative_fraction = speculative_fraction
        self.speculative_multiplier = speculative_multiplier
        self.speculative_floor_seconds = speculative_floor_seconds
        self.poll_interval = poll_interval
        self.start_method = start_method
        self.warmup = warmup
        self._pool: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            method = self.start_method
            if method is None and "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            mp_context = multiprocessing.get_context(method) if method else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=mp_context,
                initializer=_warm_worker,
            )
            if self.warmup:
                # Touch every worker once: forces the fork/spawn + imports
                # now instead of inside the first timed stage.
                wait([self._pool.submit(_noop) for _ in range(self.max_workers)])
        return self._pool

    def prestart(self) -> None:
        self._ensure_pool()

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- stage execution ------------------------------------------------------------

    def run_stage(self, spec: StageSpec) -> StageResult:
        from repro.engine.costmodel import suggest_task_chunks

        started_wall = time.time()
        payload, buffers = _serialize_stage(spec)
        oob_bytes = sum(len(b) for b in buffers)
        if oob_bytes:
            from repro.obs.tracer import current_tracer

            tracer = current_tracer()
            if tracer is not None:
                tracer.counter("stage_oob_bytes", oob_bytes)
        token = next(_stage_tokens)

        partitions = spec.partition_ids()
        size = self.chunk_size or suggest_task_chunks(len(partitions), self.max_workers)
        try:
            pool = self._ensure_pool()
            now = time.monotonic()
            chunks = [
                _ChunkState(partitions[i : i + size], now)
                for i in range(0, len(partitions), size)
            ]
            pending: dict[Future, _ChunkState] = {}
            for chunk in chunks:
                self._dispatch(
                    pool, token, payload, buffers, spec, chunk, pending, speculative=False
                )
            result = self._gather(pool, token, payload, buffers, spec, chunks, pending)
            result.started_wall = started_wall
            result.ended_wall = time.time()
            return result
        except WorkerLostError:
            # The broken pool is useless; discard it so the next stage (or
            # the engine's recovery re-dispatch) starts a fresh one.
            self.stop()
            raise
        except BrokenProcessPool as exc:
            # Pool died outside the gather loop (warm-up or dispatch).
            self.stop()
            raise WorkerLostError([], partitions) from exc

    def _dispatch(
        self,
        pool: ProcessPoolExecutor,
        token: int,
        payload: bytes,
        buffers: list[bytes],
        spec: StageSpec,
        chunk: _ChunkState,
        pending: dict[Future, _ChunkState],
        *,
        speculative: bool,
    ) -> None:
        future = pool.submit(
            _run_chunk,
            token,
            payload,
            buffers,
            chunk.partitions,
            spec.max_task_retries,
            spec.attempt_offset,
            spec.budget,
        )
        chunk.futures[future] = speculative
        chunk.last_submitted = time.monotonic()
        pending[future] = chunk

    def _gather(
        self,
        pool: ProcessPoolExecutor,
        token: int,
        payload: bytes,
        buffers: list[bytes],
        spec: StageSpec,
        chunks: list[_ChunkState],
        pending: dict[Future, _ChunkState],
    ) -> StageResult:
        result = StageResult()
        outcomes: dict[int, TaskOutcome] = {}
        finished_elapsed: list[float] = []
        speculative_budget = max(1, int(len(chunks) * self.speculative_fraction)) if (
            self.speculative_fraction > 0 and len(chunks) > 1
        ) else 0

        try:
            while any(not c.finished for c in chunks):
                if not pending:
                    raise EngineError("process backend lost track of in-flight chunks")
                done, _ = wait(set(pending), timeout=self.poll_interval, return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in done:
                    chunk = pending.pop(future)
                    was_speculative = chunk.futures.pop(future, False)
                    if chunk.finished:
                        continue  # the other copy already won; discard
                    failure = future.exception()
                    if failure is not None:
                        if isinstance(failure, BrokenProcessPool):
                            raise failure
                        if isinstance(failure, TaskFailure):
                            fatal = _note_copy_failure(chunk, failure, was_speculative)
                            if fatal is None:
                                continue  # a sibling copy may still win
                            chunk.finished = True
                            raise fatal
                        chunk.finished = True
                        raise EngineError(
                            f"process worker failed to return chunk {chunk.partitions}: "
                            f"{failure!r}"
                        ) from failure
                    chunk.finished = True
                    finished_elapsed.append(now - chunk.first_submitted)
                    if was_speculative:
                        result.speculative_wins += 1
                    for outcome in future.result():
                        outcome.speculative = was_speculative
                        # Fold timeout re-dispatches and discarded sibling
                        # copies into the task's attempt accounting so
                        # retry overhead stays visible — each charged once.
                        outcome.attempts += chunk.resubmits
                        outcome.failed_attempts += chunk.resubmits + chunk.wasted_attempts
                        outcome.failed_seconds += chunk.wasted_seconds
                        if self.task_timeout is not None:
                            outcome.failed_seconds += chunk.resubmits * self.task_timeout
                        outcomes[outcome.partition] = outcome

                self._handle_stragglers(
                    pool, token, payload, buffers, spec, chunks, pending,
                    finished_elapsed, result, speculative_budget,
                )
        except BrokenProcessPool as exc:
            # A worker died (SIGKILL/OOM/crash): salvage what landed and
            # tell the engine exactly which partitions still need work.
            salvaged = [outcomes[p] for p in sorted(outcomes)]
            lost = [
                p
                for chunk in chunks
                for p in chunk.partitions
                if p not in outcomes
            ]
            raise WorkerLostError(salvaged, lost) from exc

        result.outcomes = [outcomes[p] for p in sorted(outcomes)]
        return result

    def _handle_stragglers(
        self,
        pool: ProcessPoolExecutor,
        token: int,
        payload: bytes,
        buffers: list[bytes],
        spec: StageSpec,
        chunks: list[_ChunkState],
        pending: dict[Future, _ChunkState],
        finished_elapsed: list[float],
        result: StageResult,
        speculative_budget: int,
    ) -> None:
        now = time.monotonic()

        # Per-chunk timeout: re-dispatch, counting toward the retry budget.
        if self.task_timeout is not None:
            for chunk in chunks:
                if chunk.finished or now - chunk.last_submitted <= self.task_timeout:
                    continue
                if chunk.resubmits + 1 >= spec.retry_limit:
                    chunk.finished = True
                    partition = chunk.partitions[0]
                    raise TaskFailure(
                        partition,
                        chunk.resubmits + 1,
                        TaskTimeout(partition, self.task_timeout),
                        elapsed_seconds=(chunk.resubmits + 1) * self.task_timeout,
                    )
                chunk.resubmits += 1
                self._dispatch(
                    pool, token, payload, buffers, spec, chunk, pending, speculative=False
                )

        # Speculation: after a quorum finishes, clone the slowest stragglers.
        launched = result.speculative_launched
        if launched >= speculative_budget or 2 * len(finished_elapsed) < len(chunks):
            return
        median = statistics.median(finished_elapsed)
        threshold = max(
            self.speculative_multiplier * median, self.speculative_floor_seconds
        )
        stragglers = sorted(
            (
                c
                for c in chunks
                if not c.finished
                and not c.speculated
                and c.resubmits == 0
                and now - c.first_submitted > threshold
            ),
            key=lambda c: c.first_submitted,
        )
        for chunk in stragglers:
            if launched >= speculative_budget:
                break
            chunk.speculated = True
            self._dispatch(
                pool, token, payload, buffers, spec, chunk, pending, speculative=True
            )
            launched += 1
        result.speculative_launched = launched

    def __repr__(self) -> str:
        return (
            f"ProcessBackend(max_workers={self.max_workers}, "
            f"chunk_size={self.chunk_size}, task_timeout={self.task_timeout})"
        )
