"""Thread-pool execution — shared memory, GIL-bound."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.exec.base import Backend, StageResult, StageSpec, run_task_attempts


def _run_in_thread(spec: StageSpec, partition: int):
    return run_task_attempts(
        spec.task,
        partition,
        spec.max_task_retries,
        spec.failure_injector,
        worker=threading.current_thread().name,
        policy=spec.policy,
        fault_plan=spec.fault_plan,
        stage_no=spec.stage_no,
        attempt_offset=spec.attempt_offset,
        budget=spec.budget,
    )


class ThreadBackend(Backend):
    """Run tasks on a shared :class:`ThreadPoolExecutor`.

    Tasks share the driver's memory, so nothing needs to be picklable and
    metrics callbacks are cheap — but CPU-bound Python tasks serialize on
    the GIL.  This backend pays off when tasks block on I/O or call into
    C extensions that release the GIL.

    The pool is created lazily on first use and reused across stages;
    ``stop()`` shuts it down (the next stage would recreate it).
    """

    name = "thread"

    def __init__(self, max_workers: int = 8):
        if max_workers < 1:
            raise ValueError("a thread backend needs at least one worker")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="engine-worker"
            )
        return self._pool

    def prestart(self) -> None:
        self._ensure_pool()

    def run_stage(self, spec: StageSpec) -> StageResult:
        pool = self._ensure_pool()
        started = time.time()
        futures = [
            pool.submit(_run_in_thread, spec, partition)
            for partition in spec.partition_ids()
        ]
        # Gather in partition order so a multi-partition failure surfaces
        # the lowest failing partition, matching sequential execution.
        outcomes = [future.result() for future in futures]
        return StageResult(outcomes, started_wall=started, ended_wall=time.time())

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ThreadBackend(max_workers={self.max_workers})"
