"""Pluggable stage-execution backends.

``EngineContext.run_stage`` delegates the actual running of a stage's
tasks to a :class:`Backend`:

* :class:`SequentialBackend` — inline, deterministic; the default.
* :class:`ThreadBackend` — shared-memory thread pool; good for I/O-bound
  or GIL-releasing tasks.
* :class:`ProcessBackend` — multiprocess pool with pickled task closures,
  cost-model-sized chunks, worker warm-up/reuse, per-task timeouts, and
  speculative straggler re-execution.

Select one at construction (``EngineContext(backend="process")``), per
call site (``ctx.using_backend("thread")``), on the CLI (``--backend``),
or per benchmark run (``REPRO_BENCH_BACKEND=process``).
"""

from __future__ import annotations

from repro.engine.exec.base import (
    Backend,
    StageResult,
    StageSpec,
    TaskOutcome,
    run_task_attempts,
)
from repro.engine.exec.process import HAS_CLOUDPICKLE, ProcessBackend
from repro.engine.exec.sequential import SequentialBackend
from repro.engine.exec.thread import ThreadBackend

BACKENDS: dict[str, type[Backend]] = {
    SequentialBackend.name: SequentialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(
    spec: "str | Backend | None",
    parallelism: int,
    options: dict | None = None,
) -> Backend:
    """Turn a backend spec into an instance.

    ``spec`` may be an existing :class:`Backend` (returned as-is, options
    ignored), a registry name, or ``None`` (sequential).  Pool-based
    backends default their worker count to ``parallelism``.
    """
    if isinstance(spec, Backend):
        return spec
    name = (spec or "sequential").lower()
    cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {spec!r}; choose one of {sorted(BACKENDS)}"
        )
    if cls is SequentialBackend:
        return cls()
    kwargs = {"max_workers": parallelism, **(options or {})}
    return cls(**kwargs)


__all__ = [
    "Backend",
    "BACKENDS",
    "HAS_CLOUDPICKLE",
    "ProcessBackend",
    "SequentialBackend",
    "StageResult",
    "StageSpec",
    "TaskOutcome",
    "ThreadBackend",
    "resolve_backend",
    "run_task_attempts",
]
