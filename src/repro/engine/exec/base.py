"""The execution-backend contract.

A :class:`Backend` runs the tasks of one stage — one task per partition —
and returns per-task :class:`TaskOutcome` records.  The engine context
owns everything around the backend: stage counting, nested-stage inlining,
metrics merging, failure surfacing, and lost-partition recovery.  Backends
own *how* the tasks run: inline, on a thread pool, or on a process pool
with speculative retry.

The retry loop itself (:func:`run_task_attempts`) is shared: every backend
— and every process-pool worker — executes task attempts the same way,
under the same :class:`~repro.engine.faults.RetryPolicy`, so retry
accounting and fault injection are identical no matter where a task lands.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.errors import InjectedFault, TaskFailure

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.faults.plan import FaultPlan
    from repro.engine.faults.policy import RetryBudget, RetryPolicy


@dataclass
class StageSpec:
    """Everything a backend needs to execute one stage.

    ``task`` maps a partition index to that partition's output list;
    ``failure_injector`` is the engine's test hook, invoked before each
    attempt (raising simulates an executor fault).  ``policy`` supersedes
    the bare ``max_task_retries`` count (kept for compatibility and used
    when no policy is given); ``fault_plan``/``stage_no`` wire the
    deterministic fault injector into every attempt.

    ``partitions`` narrows the stage to an explicit subset of partition
    indices — how the engine recomputes *only* the partitions lost to a
    dead worker — and ``attempt_offset`` carries the attempts those
    partitions already consumed, so per-task retry caps and first-attempt
    fault rules keep counting across the recovery boundary.
    """

    num_partitions: int
    task: Callable[[int], list]
    max_task_retries: int = 3
    failure_injector: Callable[[int, int], None] | None = None
    policy: "RetryPolicy | None" = None
    fault_plan: "FaultPlan | None" = None
    stage_no: int = 0
    partitions: list[int] | None = None
    attempt_offset: int = 0
    budget: "RetryBudget | None" = None

    def partition_ids(self) -> list[int]:
        """The partition indices this (possibly narrowed) stage runs."""
        if self.partitions is not None:
            return list(self.partitions)
        return list(range(self.num_partitions))

    @property
    def retry_limit(self) -> int:
        """Per-task attempt cap: the policy's, else ``max_task_retries``."""
        return self.policy.max_attempts if self.policy is not None else self.max_task_retries


@dataclass
class TaskOutcome:
    """One finished task: its result plus execution accounting.

    ``attempts`` is the 1-based attempt that succeeded; ``failed_attempts``
    and ``failed_seconds`` meter the retry overhead that preceded it;
    ``worker`` identifies the executor (thread name, process pid, or
    ``"driver"``); ``speculative`` marks results produced by a speculative
    re-execution that beat the original copy.  ``injected_faults`` and
    ``injected_delay_seconds`` separate fault-plan noise from organic
    failures.  ``started_wall`` is the epoch time (``time.time()``) at
    which the winning attempt began — epoch rather than monotonic because
    process-backend outcomes are stamped in another process, and wall
    clock is the only timebase the driver's tracer shares with workers.
    """

    partition: int
    result: list
    elapsed_seconds: float
    attempts: int = 1
    failed_attempts: int = 0
    failed_seconds: float = 0.0
    worker: str = "driver"
    speculative: bool = False
    started_wall: float = 0.0
    injected_faults: int = 0
    injected_delay_seconds: float = 0.0


@dataclass
class StageResult:
    """A backend's report for one stage.

    ``started_wall``/``ended_wall`` bracket the backend's own execution
    window (dispatch through last gather) in epoch seconds; the engine's
    tracer subtracts this from its stage span to expose scheduling and
    serialization overhead.  0.0 means the backend did not stamp them.
    """

    outcomes: list[TaskOutcome] = field(default_factory=list)
    speculative_launched: int = 0
    speculative_wins: int = 0
    started_wall: float = 0.0
    ended_wall: float = 0.0


def run_task_attempts(
    task: Callable[[int], list],
    partition: int,
    max_task_retries: int,
    failure_injector: Callable[[int, int], None] | None = None,
    worker: str = "driver",
    *,
    policy: "RetryPolicy | None" = None,
    fault_plan: "FaultPlan | None" = None,
    stage_no: int = 0,
    attempt_offset: int = 0,
    budget: "RetryBudget | None" = None,
    process_worker: bool = False,
) -> TaskOutcome:
    """Run one task with the engine's retry semantics.

    Failed attempts are timed, counted, and logged (the attempt history
    rides on the eventual :class:`TaskFailure`), backoff between retries
    follows ``policy``, and injected faults from ``fault_plan`` are
    metered separately.  ``attempt_offset`` pre-charges attempts consumed
    before this call (a lost worker took them), so caps and budgets keep
    counting across a recovery re-dispatch.
    """
    limit = policy.max_attempts if policy is not None else max_task_retries
    last_error: BaseException | None = None
    failed_attempts = attempt_offset
    failed_seconds = 0.0
    injected_faults = 0
    injected_delay = 0.0
    history: list[tuple[int, str]] = []
    deadline = policy.retry_deadline_seconds if policy is not None else None
    loop_start = time.perf_counter()
    if attempt_offset >= limit:
        raise TaskFailure(partition, attempt_offset, last_error, history=tuple(history))
    for attempt in range(attempt_offset + 1, limit + 1):
        retries_here = attempt - attempt_offset - 1
        if policy is not None and retries_here > 0:
            pause = policy.delay_before_retry(retries_here, partition)
            if pause > 0:
                time.sleep(pause)
        start = time.perf_counter()
        start_wall = time.time()
        try:
            if failure_injector is not None:
                failure_injector(partition, attempt)
            if fault_plan is not None:
                count, delayed = fault_plan.before_attempt(
                    stage_no, partition, attempt, process_worker=process_worker
                )
                injected_faults += count
                injected_delay += delayed
            result = task(partition)
        except Exception as exc:  # noqa: BLE001 - retry any task error
            failed_attempts += 1
            failed_seconds += time.perf_counter() - start
            last_error = exc
            if isinstance(exc, InjectedFault):
                injected_faults += 1
            history.append((attempt, repr(exc)))
            if budget is not None and not budget.consume():
                from repro.engine.errors import RetryBudgetExhausted

                raise TaskFailure(
                    partition,
                    attempt,
                    RetryBudgetExhausted(partition, budget.limit),
                    elapsed_seconds=failed_seconds,
                    history=tuple(history),
                ) from exc
            if deadline is not None and time.perf_counter() - loop_start >= deadline:
                break
            continue
        return TaskOutcome(
            partition=partition,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
            attempts=attempt,
            failed_attempts=failed_attempts,
            failed_seconds=failed_seconds,
            worker=worker,
            started_wall=start_wall,
            injected_faults=injected_faults,
            injected_delay_seconds=injected_delay,
        )
    raise TaskFailure(
        partition,
        failed_attempts,
        last_error,
        elapsed_seconds=failed_seconds,
        history=tuple(history),
    )


class Backend(ABC):
    """Strategy for executing the tasks of a stage."""

    #: Registry / display name ("sequential", "thread", "process").
    name: str = "abstract"

    #: True when tasks cross a process boundary: the stage's task closure
    #: (and everything it references — the RDD lineage, the context, the
    #: failure injector) must be picklable, and the engine materializes
    #: shuffle dependencies driver-side before dispatch so workers never
    #: recompute a map stage.
    requires_serializable_tasks: bool = False

    @abstractmethod
    def run_stage(self, spec: StageSpec) -> StageResult:
        """Execute every task of ``spec`` and return their outcomes.

        Outcomes may be returned in any order; the context sorts them by
        partition before merging metrics.  A permanently failing task
        raises :class:`TaskFailure`; a pool death with work outstanding
        raises :class:`~repro.engine.errors.WorkerLostError` carrying the
        salvaged outcomes (process backend only).
        """

    def prestart(self) -> None:
        """Spawn the backend's workers now rather than at the first stage.

        Pool-based backends create their pools lazily, so in batch runs
        the first stage pays the spawn cost.  Long-lived processes — the
        ``repro serve`` daemon — call this once at startup so *no* query
        ever pays it.  Default: nothing to warm.
        """

    def stop(self) -> None:
        """Release pools/processes. Idempotent; the backend may be reused."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
