"""The execution-backend contract.

A :class:`Backend` runs the tasks of one stage — one task per partition —
and returns per-task :class:`TaskOutcome` records.  The engine context
owns everything around the backend: stage counting, nested-stage inlining,
metrics merging, and failure surfacing.  Backends own *how* the tasks run:
inline, on a thread pool, or on a process pool with speculative retry.

The retry loop itself (:func:`run_task_attempts`) is shared: every backend
— and every process-pool worker — executes task attempts the same way, so
retry accounting is identical no matter where a task lands.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.errors import TaskFailure


@dataclass
class StageSpec:
    """Everything a backend needs to execute one stage.

    ``task`` maps a partition index to that partition's output list;
    ``failure_injector`` is the engine's test hook, invoked before each
    attempt (raising simulates an executor fault).
    """

    num_partitions: int
    task: Callable[[int], list]
    max_task_retries: int = 3
    failure_injector: Callable[[int, int], None] | None = None


@dataclass
class TaskOutcome:
    """One finished task: its result plus execution accounting.

    ``attempts`` is the 1-based attempt that succeeded; ``failed_attempts``
    and ``failed_seconds`` meter the retry overhead that preceded it;
    ``worker`` identifies the executor (thread name, process pid, or
    ``"driver"``); ``speculative`` marks results produced by a speculative
    re-execution that beat the original copy.  ``started_wall`` is the
    epoch time (``time.time()``) at which the winning attempt began —
    epoch rather than monotonic because process-backend outcomes are
    stamped in another process, and wall clock is the only timebase the
    driver's tracer shares with workers.
    """

    partition: int
    result: list
    elapsed_seconds: float
    attempts: int = 1
    failed_attempts: int = 0
    failed_seconds: float = 0.0
    worker: str = "driver"
    speculative: bool = False
    started_wall: float = 0.0


@dataclass
class StageResult:
    """A backend's report for one stage.

    ``started_wall``/``ended_wall`` bracket the backend's own execution
    window (dispatch through last gather) in epoch seconds; the engine's
    tracer subtracts this from its stage span to expose scheduling and
    serialization overhead.  0.0 means the backend did not stamp them.
    """

    outcomes: list[TaskOutcome] = field(default_factory=list)
    speculative_launched: int = 0
    speculative_wins: int = 0
    started_wall: float = 0.0
    ended_wall: float = 0.0


def run_task_attempts(
    task: Callable[[int], list],
    partition: int,
    max_task_retries: int,
    failure_injector: Callable[[int, int], None] | None = None,
    worker: str = "driver",
) -> TaskOutcome:
    """Run one task with the engine's retry semantics.

    Failed attempts are timed and counted so retry overhead is visible in
    metrics; after ``max_task_retries`` failures a :class:`TaskFailure`
    carrying the accumulated wasted time is raised.
    """
    last_error: BaseException | None = None
    failed_attempts = 0
    failed_seconds = 0.0
    for attempt in range(1, max_task_retries + 1):
        start = time.perf_counter()
        start_wall = time.time()
        try:
            if failure_injector is not None:
                failure_injector(partition, attempt)
            result = task(partition)
        except Exception as exc:  # noqa: BLE001 - retry any task error
            failed_attempts += 1
            failed_seconds += time.perf_counter() - start
            last_error = exc
            continue
        return TaskOutcome(
            partition=partition,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
            attempts=attempt,
            failed_attempts=failed_attempts,
            failed_seconds=failed_seconds,
            worker=worker,
            started_wall=start_wall,
        )
    raise TaskFailure(partition, max_task_retries, last_error, elapsed_seconds=failed_seconds)


class Backend(ABC):
    """Strategy for executing the tasks of a stage."""

    #: Registry / display name ("sequential", "thread", "process").
    name: str = "abstract"

    #: True when tasks cross a process boundary: the stage's task closure
    #: (and everything it references — the RDD lineage, the context, the
    #: failure injector) must be picklable, and the engine materializes
    #: shuffle dependencies driver-side before dispatch so workers never
    #: recompute a map stage.
    requires_serializable_tasks: bool = False

    @abstractmethod
    def run_stage(self, spec: StageSpec) -> StageResult:
        """Execute every task of ``spec`` and return their outcomes.

        Outcomes may be returned in any order; the context sorts them by
        partition before merging metrics.  A permanently failing task
        raises :class:`TaskFailure`.
        """

    def stop(self) -> None:
        """Release pools/processes. Idempotent; the backend may be reused."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
