"""The unified retry policy.

One object answers every "should we try again, and when?" question the
engine used to answer ad hoc: per-task attempt caps (previously
``max_task_retries`` threaded loose through backends), exponential backoff
with deterministic jitter, a wall-clock retry deadline, and a shared
per-stage budget of failed attempts (so a stage-wide fault storm aborts
early instead of burning ``partitions × max_attempts`` retries).
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs applied by the shared attempt loop on every backend.

    Parameters
    ----------
    max_attempts:
        Per-task attempt cap — Spark's ``spark.task.maxFailures`` analog
        and the successor of ``EngineContext(max_task_retries=...)``.
    backoff_seconds:
        Sleep before the first retry; 0 (the default) disables backoff
        entirely, preserving the engine's historical retry-immediately
        behavior (and keeping test suites fast).
    backoff_multiplier / backoff_max_seconds:
        Exponential growth of the backoff, capped.
    jitter_fraction:
        Spread each backoff by ``±fraction`` — *deterministically*, hashed
        from (seed, partition, retry index), because a wall-clock- or
        ``random``-seeded jitter would make chaos runs unreproducible.
    retry_deadline_seconds:
        Total wall-clock allowance for one task's attempts (first included);
        when exceeded, the task aborts even with attempts left.
    stage_attempt_budget:
        Shared cap on *failed* attempts across all tasks of one stage.
        On the process backend each worker meters its own chunk against
        the budget (no cross-process counter), so the cap is per-executor
        there — still a bound, just a looser one.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 30.0
    jitter_fraction: float = 0.0
    retry_deadline_seconds: float | None = None
    stage_attempt_budget: int | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.retry_deadline_seconds is not None and self.retry_deadline_seconds <= 0:
            raise ValueError("retry_deadline_seconds must be positive")
        if self.stage_attempt_budget is not None and self.stage_attempt_budget < 1:
            raise ValueError("stage_attempt_budget must be positive")

    def delay_before_retry(self, retry_index: int, partition: int = 0) -> float:
        """Backoff (seconds) before the ``retry_index``-th retry (1-based)."""
        if self.backoff_seconds <= 0 or retry_index < 1:
            return 0.0
        delay = min(
            self.backoff_seconds * self.backoff_multiplier ** (retry_index - 1),
            self.backoff_max_seconds,
        )
        if self.jitter_fraction > 0:
            from repro.engine.faults.plan import _unit_interval

            spread = 2.0 * _unit_interval(0, "jitter", partition, retry_index) - 1.0
            delay *= 1.0 + self.jitter_fraction * spread
        return max(0.0, delay)

    def new_stage_budget(self) -> "RetryBudget | None":
        """A fresh shared budget for one stage, or ``None`` when uncapped."""
        if self.stage_attempt_budget is None:
            return None
        return RetryBudget(self.stage_attempt_budget)


class RetryBudget:
    """Thread-safe counter of failed attempts shared across a stage's tasks."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0
        self._lock = Lock()

    def consume(self) -> bool:
        """Charge one failed attempt; ``False`` once the budget is blown."""
        with self._lock:
            self.used += 1
            return self.used <= self.limit

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = Lock()

    def __repr__(self) -> str:
        return f"RetryBudget(used={self.used}, limit={self.limit})"
