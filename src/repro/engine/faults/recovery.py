"""Recovery configuration: lost-partition recomputation and degradation.

The actual recovery loop lives in ``EngineContext.run_stage`` (it needs
the context's locks, tracer, and backend ownership); this module holds
its policy surface and the backend demotion ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Graceful-degradation order: after repeated worker loss the engine
#: demotes the context's backend one rung at a time.  Sequential is the
#: floor — nothing left to lose but the driver.
DEMOTION_LADDER = {"process": "thread", "thread": "sequential"}


@dataclass(frozen=True)
class RecoveryOptions:
    """Knobs for the engine's stage-recovery loop.

    Parameters
    ----------
    max_stage_recoveries:
        How many worker-loss recovery rounds one stage may consume before
        the engine gives up and surfaces the loss.  Each round recomputes
        only the partitions whose outcomes were lost (lineage
        recomputation, not a whole-stage re-run).
    demote_after_worker_losses:
        Cumulative worker losses (across the context's lifetime) after
        which the backend is demoted along :data:`DEMOTION_LADDER`.
    demote:
        Master switch for the demotion ladder.
    """

    max_stage_recoveries: int = 4
    demote_after_worker_losses: int = 2
    demote: bool = True

    def __post_init__(self):
        if self.max_stage_recoveries < 0:
            raise ValueError("max_stage_recoveries must be non-negative")
        if self.demote_after_worker_losses < 1:
            raise ValueError("demote_after_worker_losses must be positive")


def demotion_target(backend_name: str) -> str | None:
    """The next rung down from ``backend_name``, or ``None`` at the floor."""
    return DEMOTION_LADDER.get(backend_name)
