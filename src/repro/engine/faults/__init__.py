"""Deterministic fault injection and the engine's recovery policies.

The package splits cleanly along the failure-handling story:

* :mod:`~repro.engine.faults.plan` — *inject*: seeded, site-keyed faults
  (task errors, worker kills, straggler delays, corrupt block reads).
* :mod:`~repro.engine.faults.policy` — *retry*: the unified
  :class:`RetryPolicy` (attempt caps, backoff + deterministic jitter,
  deadlines, shared stage budgets).
* :mod:`~repro.engine.faults.recovery` — *recover*: lost-partition
  recomputation limits and the process→thread→sequential demotion ladder.
* :mod:`~repro.engine.faults.checkpoint` — *resume*: phase-level
  checkpoint-and-resume for pipelines.

Entry points: ``EngineContext(fault_plan=..., retry_policy=...,
recovery=...)``, the ``REPRO_FAULT_PLAN`` environment variable, and the
``repro chaos`` CLI.
"""

from __future__ import annotations

from repro.engine.faults.checkpoint import COMPLETE_MARKER, PipelineCheckpoint
from repro.engine.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    corrupt_bytes,
)
from repro.engine.faults.policy import RetryBudget, RetryPolicy
from repro.engine.faults.recovery import (
    DEMOTION_LADDER,
    RecoveryOptions,
    demotion_target,
)

__all__ = [
    "COMPLETE_MARKER",
    "DEMOTION_LADDER",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultRule",
    "PipelineCheckpoint",
    "RecoveryOptions",
    "RetryBudget",
    "RetryPolicy",
    "corrupt_bytes",
    "demotion_target",
]
