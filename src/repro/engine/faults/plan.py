"""Deterministic, seedable fault injection.

A :class:`FaultPlan` decides — from a seed and the fault *site* alone —
whether a fault fires at a given ``(stage, partition, attempt)`` or on a
given block-file read.  Decisions are pure functions of the key (hashed
with BLAKE2b, never Python's per-process-randomized ``hash()``), so the
same plan injects the same faults on every backend, in every worker
process, on every run: chaos tests can assert exact recovery behavior,
and the CI chaos job can assert output parity with a fault-free run.

Four fault kinds, mirroring the failure model of lineage-based engines
(RDD recomputation, MapReduce speculative re-execution):

``task_error``
    Raise :class:`~repro.engine.errors.InjectedFault` inside the stage
    closure — an executor-side task crash, recovered by the retry loop.
``worker_kill``
    SIGKILL the executing process-pool worker (a real worker death, taking
    its whole chunk with it); on in-process backends, where there is no
    process to kill, raise :class:`~repro.engine.errors.InjectedWorkerLoss`
    instead.  Recovered by lost-partition recomputation.
``delay``
    Sleep before the attempt — a straggler, recovered (on the process
    backend) by speculative re-execution or simply tolerated.
``corrupt_read``
    Hand the stio reader mangled bytes for a block file's first read(s) —
    a transient storage fault, recovered by the retry loop re-reading.

Rules fire only while ``attempt <= max_attempt`` (default 1), so an
injected fault cannot chase its own recovery forever: the retried or
recomputed attempt runs clean and the plan converges by construction.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Lock

from repro.engine.errors import InjectedFault, InjectedWorkerLoss

#: Environment variable consulted by ``EngineContext`` when no explicit
#: ``fault_plan`` is passed: inline JSON (starts with ``{``) or a path to
#: a JSON plan file.  How ``repro chaos`` steers scripts that build their
#: own context.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("task_error", "worker_kill", "delay", "corrupt_read")


@dataclass(frozen=True)
class FaultRule:
    """One injection site pattern.

    ``stage`` and ``partition`` narrow the site (``None`` matches any);
    ``probability`` is the per-site firing chance (1.0 = always);
    ``max_attempt`` caps which attempts the rule may hit — the default 1
    means "first attempt only", guaranteeing the retry recovers.  For
    ``corrupt_read`` rules the attempt counter is the per-worker read
    count of the block file and ``path`` substring-matches the file path.
    """

    kind: str
    stage: int | None = None
    partition: int | None = None
    probability: float = 1.0
    max_attempt: int = 1
    delay_seconds: float = 0.0
    path: str | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be positive")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")

    def to_dict(self) -> dict:
        """Plain-dict form, omitting defaults, for JSON plans."""
        out: dict = {"kind": self.kind}
        for f in dataclasses.fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out


def _unit_interval(seed: int, *key: object) -> float:
    """Deterministic uniform [0, 1) from a site key.

    BLAKE2b over the formatted key: stable across processes, platforms,
    and ``PYTHONHASHSEED`` — the property ``hash()`` does not have.
    """
    import hashlib

    material = "|".join(str(k) for k in (seed, *key)).encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


def corrupt_bytes(raw: bytes) -> bytes:
    """Deterministically mangle a pickle payload beyond recovery.

    Truncate to half and flip the header bytes: ``pickle.loads`` fails on
    either the bad opcode or the missing STOP, whichever it meets first.
    """
    if not raw:
        return b"\xff"
    half = raw[: max(1, len(raw) // 2)]
    head = bytes(b ^ 0xFF for b in half[:8])
    return head + half[8:]


class FaultPlan:
    """A seeded set of :class:`FaultRule` sites, consulted by the engine.

    The plan travels inside pickled stage closures to process-pool workers
    (its decisions don't depend on which side evaluates them).  The only
    mutable state — the per-file read counters backing ``corrupt_read``'s
    "first read only" semantics and the fired-fault log — is worker-local
    by design: a fresh worker re-corrupts a file's first read, and the
    retry loop re-reads it clean either way.
    """

    def __init__(self, rules: "list[FaultRule] | tuple[FaultRule, ...]" = (), seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = Lock()
        self._read_counts: dict[tuple[int, str], int] = {}
        #: Local log of fired faults: ``(kind, stage, partition, attempt)``.
        self.fired: list[tuple[str, int, int, int]] = []

    # -- construction ---------------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int = 17,
        *,
        task_error: float = 0.0,
        worker_kill: float = 0.0,
        delay: float = 0.0,
        corrupt_read: float = 0.0,
        delay_seconds: float = 0.02,
    ) -> "FaultPlan":
        """A plan of site-wide probability rules — the ``repro chaos`` mix."""
        rules = []
        if task_error > 0:
            rules.append(FaultRule("task_error", probability=task_error))
        if worker_kill > 0:
            rules.append(FaultRule("worker_kill", probability=worker_kill))
        if delay > 0:
            rules.append(
                FaultRule("delay", probability=delay, delay_seconds=delay_seconds)
            )
        if corrupt_read > 0:
            rules.append(FaultRule("corrupt_read", probability=corrupt_read))
        return cls(rules, seed=seed)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        rules = [FaultRule(**rule) for rule in payload.get("rules", [])]
        return cls(rules, seed=int(payload.get("seed", 0)))

    def to_dict(self) -> dict:
        """JSON-ready form (``seed`` + ``rules``)."""
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    def to_json(self) -> str:
        """Serialize for ``REPRO_FAULT_PLAN`` or a plan file."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_spec(cls, spec: "FaultPlan | dict | str | Path | None") -> "FaultPlan | None":
        """Coerce any accepted plan spelling into a plan instance.

        Accepts an existing plan, a plain dict, inline JSON, or a path to
        a JSON file; ``None`` passes through.
        """
        if spec is None or isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        text = str(spec)
        if text.lstrip().startswith("{"):
            return cls.from_dict(json.loads(text))
        return cls.from_dict(json.loads(Path(text).read_text()))

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Build from ``REPRO_FAULT_PLAN``, or ``None`` when unset/empty."""
        value = os.environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.from_spec(value) if value else None

    # -- decisions ------------------------------------------------------------------

    def decide(
        self, kind: str, stage: int, partition: int, attempt: int
    ) -> FaultRule | None:
        """The first matching rule whose die roll fires, else ``None``."""
        for index, rule in enumerate(self.rules):
            if rule.kind != kind:
                continue
            if rule.stage is not None and rule.stage != stage:
                continue
            if rule.partition is not None and rule.partition != partition:
                continue
            if attempt > rule.max_attempt:
                continue
            if rule.probability >= 1.0 or (
                _unit_interval(self.seed, index, kind, stage, partition, attempt)
                < rule.probability
            ):
                return rule
        return None

    def _note(self, kind: str, stage: int, partition: int, attempt: int) -> None:
        with self._lock:
            self.fired.append((kind, stage, partition, attempt))

    def before_attempt(
        self,
        stage: int,
        partition: int,
        attempt: int,
        *,
        process_worker: bool = False,
    ) -> tuple[int, float]:
        """Apply delay/kill/error faults for one task attempt.

        Returns ``(faults_injected, delay_seconds)`` for non-raising
        faults; raising faults are counted by the attempt loop catching
        them.  A firing ``worker_kill`` never returns on a process worker.
        """
        injected = 0
        delayed = 0.0
        rule = self.decide("delay", stage, partition, attempt)
        if rule is not None and rule.delay_seconds > 0:
            self._note("delay", stage, partition, attempt)
            time.sleep(rule.delay_seconds)
            injected += 1
            delayed += rule.delay_seconds
        if self.decide("worker_kill", stage, partition, attempt) is not None:
            self._note("worker_kill", stage, partition, attempt)
            if process_worker:
                # A real worker death: the pool breaks, the driver salvages
                # finished chunks and recomputes the rest from lineage.
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedWorkerLoss(
                f"injected worker loss at stage {stage} partition {partition} "
                f"attempt {attempt}",
                site=f"{stage}/{partition}/{attempt}",
            )
        if self.decide("task_error", stage, partition, attempt) is not None:
            self._note("task_error", stage, partition, attempt)
            raise InjectedFault(
                f"injected task error at stage {stage} partition {partition} "
                f"attempt {attempt}",
                site=f"{stage}/{partition}/{attempt}",
            )
        return injected, delayed

    def corrupt_read(self, path: "str | Path", raw: bytes) -> bytes:
        """Possibly mangle a block file's bytes (``corrupt_read`` rules).

        The per-rule read counter plays the role ``attempt`` plays for the
        other kinds: with the default ``max_attempt=1`` only the first
        read of each file (per worker process) is corrupted, so the retry
        loop's re-read always recovers.
        """
        name = Path(path).name
        for index, rule in enumerate(self.rules):
            if rule.kind != "corrupt_read":
                continue
            if rule.path is not None and rule.path not in str(path):
                continue
            with self._lock:
                count = self._read_counts.get((index, name), 0) + 1
                self._read_counts[(index, name)] = count
            if count > rule.max_attempt:
                continue
            if rule.probability >= 1.0 or (
                _unit_interval(self.seed, index, "corrupt_read", name)
                < rule.probability
            ):
                self._note("corrupt_read", -1, -1, count)
                return corrupt_bytes(raw)
        return raw

    # -- pickling (ships to process workers inside stage closures) ------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        # Worker-local mutable state starts fresh on the other side.
        state["_read_counts"] = {}
        state["fired"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = Lock()

    def __repr__(self) -> str:
        kinds = [r.kind for r in self.rules]
        return f"FaultPlan(seed={self.seed}, rules={kinds})"
