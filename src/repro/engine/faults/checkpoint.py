"""Checkpoint-and-resume for pipeline phases.

Spark truncates lineage by checkpointing RDDs to reliable storage; the
analog here persists a phase's materialized partitions through
:class:`~repro.stio.StDataset` (raw-pickle codec, so arbitrary phase
outputs — replica-flagged instances, partial collective instances —
round-trip exactly) and marks the phase complete.  A resumed pipeline
loads the last completed phase from disk instead of recomputing the
phases before it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import EngineContext
    from repro.engine.rdd import RDD

#: Marker file (per phase directory) whose presence means "every block of
#: this phase landed".  Written last, so a crash mid-checkpoint leaves no
#: marker and the phase recomputes — never resumes from a torn write.
COMPLETE_MARKER = "_COMPLETE"


class PipelineCheckpoint:
    """Phase-level checkpoint store under one directory.

    Layout: ``<directory>/<phase>/part-*.pkl`` + ``metadata.json`` +
    ``_COMPLETE``.  ``save`` returns a lineage-truncated RDD over the
    same in-memory partitions (the caller keeps computing without a
    read-back); ``load`` returns a lazy RDD over the on-disk blocks.
    """

    def __init__(self, directory: "str | Path", ctx: "EngineContext"):
        self.directory = Path(directory)
        self.ctx = ctx

    def phase_dir(self, phase: str) -> Path:
        """The directory holding one phase's blocks."""
        return self.directory / phase

    def has(self, phase: str) -> bool:
        """True when ``phase`` completed a checkpoint (marker present)."""
        return (self.phase_dir(phase) / COMPLETE_MARKER).exists()

    def save(self, phase: str, rdd: "RDD") -> "RDD":
        """Persist ``rdd``'s partitions as the ``phase`` checkpoint.

        Materializes the lineage (checkpointing *is* an action), writes
        every block, then drops the marker.  Returns a source RDD over
        the materialized partitions: downstream phases run against
        truncated lineage, so a later failure recomputes from the
        checkpoint, not from the original source.
        """
        from repro.stio.dataset import StDataset

        tracer = self.ctx.tracer
        started = time.time()
        partitions = rdd._collect_partitions()
        target = self.phase_dir(phase)
        marker = target / COMPLETE_MARKER
        if marker.exists():  # re-run over an old checkpoint dir: replace it
            marker.unlink()
        StDataset.write(target, partitions, instance_type="checkpoint", codec="pickle")
        marker.write_text(
            json.dumps({"phase": phase, "partitions": len(partitions)})
        )
        if tracer is not None:
            tracer.counter("checkpoint_saves", 1)
            tracer.add_span(
                f"checkpoint-save:{phase}",
                "checkpoint",
                started,
                time.time(),
                partitions=len(partitions),
                path=str(target),
            )
        return self.ctx.from_partitions(partitions)

    def load(self, phase: str) -> "RDD":
        """A lazy RDD over the ``phase`` checkpoint's blocks."""
        from repro.stio.dataset import StDataset

        tracer = self.ctx.tracer
        started = time.time()
        rdd, _stats = StDataset(self.phase_dir(phase)).read(
            self.ctx, use_metadata=False
        )
        if tracer is not None:
            tracer.counter("checkpoint_resumes", 1)
            tracer.add_span(
                f"checkpoint-resume:{phase}",
                "checkpoint",
                started,
                time.time(),
                partitions=rdd.num_partitions,
                path=str(self.phase_dir(phase)),
            )
        return rdd
