"""Analytic cluster cost model over counted work.

The engine counts the quantities that dominate distributed runtime —
records scanned per task, records shuffled, records broadcast, partitions
read from disk.  This module turns those counters into an *estimated*
cluster execution time under an explicit, simple model:

* per-task compute scales with records processed, divided across
  ``n_workers`` with the observed per-partition balance (a straggling
  partition gates its stage — which is why the paper cares about CV);
* every shuffled record pays a network cost;
* every broadcast record pays a network cost once per worker;
* every partition read pays an I/O latency plus per-record deserialize.

The model is deliberately transparent rather than calibrated: its value
is *comparative* (plan A vs plan B under identical constants), mirroring
how the paper's conclusions depend on relative, not absolute, numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.metrics import JobMetrics
from repro.stio.dataset import LoadStats


@dataclass(frozen=True)
class ClusterProfile:
    """Cost constants for a hypothetical cluster.

    Defaults sketch a small commodity cluster (the paper's testbed class):
    5 µs/record compute, 2 µs/record network per shuffle hop, 10 ms
    per-partition I/O latency + 1 µs/record deserialize.
    """

    n_workers: int = 8
    seconds_per_record_compute: float = 5e-6
    seconds_per_record_shuffle: float = 2e-6
    seconds_per_record_broadcast: float = 2e-6
    seconds_per_partition_io: float = 10e-3
    seconds_per_record_io: float = 1e-6

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("a cluster needs at least one worker")


@dataclass(frozen=True)
class CostEstimate:
    """Estimated stage-level costs in seconds."""

    compute_seconds: float
    shuffle_seconds: float
    broadcast_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        """Sum of all cost components."""
        return (
            self.compute_seconds
            + self.shuffle_seconds
            + self.broadcast_seconds
            + self.io_seconds
        )

    def breakdown(self) -> dict:
        """Components as a plain dict, including the total."""
        return {
            "compute": self.compute_seconds,
            "shuffle": self.shuffle_seconds,
            "broadcast": self.broadcast_seconds,
            "io": self.io_seconds,
            "total": self.total_seconds,
        }


def suggest_task_chunks(
    num_tasks: int,
    n_workers: int,
    target_waves: int = 3,
) -> int:
    """Chunk size for batching stage tasks onto a worker pool.

    Dispatching one pool job per task maximizes balance but pays a
    serialization round-trip per task; one job per worker minimizes
    overhead but lets a straggling chunk gate the stage.  The model picks
    the coarsest chunking that still gives each worker ``target_waves``
    chunks, so late chunks can level out skew — the same straggler-gating
    argument :func:`estimate_cost` applies to partitions.
    """
    if num_tasks <= 0:
        return 1
    if n_workers < 1 or target_waves < 1:
        raise ValueError("workers and target_waves must be positive")
    return max(1, num_tasks // (n_workers * target_waves))


def estimate_cost(
    metrics: JobMetrics,
    profile: ClusterProfile | None = None,
    load_stats: LoadStats | None = None,
) -> CostEstimate:
    """Estimate cluster time for the work recorded in ``metrics``.

    Compute time models stage gating by stragglers: records are spread
    over workers, but a stage can finish no faster than its largest task,
    so the effective divisor interpolates between perfect parallelism and
    the observed worst-task share.
    """
    profile = profile or ClusterProfile()
    total_records = sum(t.records_out for t in metrics.tasks)
    if metrics.tasks:
        max_task = max(t.records_out for t in metrics.tasks)
        # Perfectly balanced: max_task == total/n_tasks; fully skewed:
        # max_task == total.  The gating share is what one wave of
        # n_workers tasks must wait for.
        ideal = total_records / profile.n_workers
        gating = max(ideal, max_task)
    else:
        gating = 0.0
    compute = gating * profile.seconds_per_record_compute
    shuffle = metrics.shuffle_records * profile.seconds_per_record_shuffle
    broadcast = (
        metrics.broadcast_records
        * profile.n_workers
        * profile.seconds_per_record_broadcast
    )
    io = 0.0
    if load_stats is not None:
        # Partition reads parallelize across workers; records pay deserialize.
        waves = -(-load_stats.partitions_read // profile.n_workers)
        io = (
            waves * profile.seconds_per_partition_io
            + load_stats.records_loaded * profile.seconds_per_record_io / profile.n_workers
        )
    return CostEstimate(compute, shuffle, broadcast, io)
