"""A single-machine stand-in for Apache Spark.

ST4ML is implemented on Spark; this package reproduces the slice of Spark
the paper relies on, as a deterministic single-process engine:

* :class:`EngineContext` — the ``SparkContext`` analog: creates RDDs,
  broadcasts values, owns the executor pool and the metrics registry.
* :class:`RDD` — lazy, immutable, partitioned collections with the
  classic transformation/action split (``map``/``filter``/``flatMap``/
  ``mapPartitions``/``reduceByKey``/``groupByKey``/…).  Wide
  transformations introduce a shuffle whose record volume is metered.
* :class:`Broadcast` — read-only values shared by every task, used by the
  converters to ship the collective structure (and its R-tree) to all
  executors exactly as Section 3.2.2 describes.
* :class:`TaskMetrics` / :class:`JobMetrics` — per-partition record and
  timing counters.  Because the engine runs on one machine, benchmarks
  report *both* wall-clock and these counted-work metrics; the paper's
  comparisons (fewer intersection tests, fewer shuffled records, balanced
  partitions) are claims about counted work, which survives the scale-down.

The engine is intentionally pull-based: an action evaluates the lineage
recursively, materializing shuffle outputs at stage boundaries, which is
the same stage decomposition Spark's DAG scheduler performs.
"""

from repro.engine import lockwatch
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.engine.broadcast import Broadcast
from repro.engine.accumulators import Accumulator, counter
from repro.engine.metrics import JobMetrics, TaskMetrics
from repro.engine.errors import (
    CorruptPartitionError,
    EngineError,
    InjectedFault,
    InjectedWorkerLoss,
    LockOrderViolation,
    RetryBudgetExhausted,
    StrictModeViolation,
    TaskFailure,
    TaskSerializationError,
    TaskTimeout,
    WorkerLostError,
)
from repro.engine.exec import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.engine.faults import (
    FaultPlan,
    FaultRule,
    PipelineCheckpoint,
    RecoveryOptions,
    RetryPolicy,
)

__all__ = [
    "EngineContext",
    "RDD",
    "Broadcast",
    "Accumulator",
    "counter",
    "JobMetrics",
    "TaskMetrics",
    "CorruptPartitionError",
    "EngineError",
    "InjectedFault",
    "InjectedWorkerLoss",
    "LockOrderViolation",
    "RetryBudgetExhausted",
    "StrictModeViolation",
    "TaskFailure",
    "TaskSerializationError",
    "TaskTimeout",
    "WorkerLostError",
    "FaultPlan",
    "FaultRule",
    "PipelineCheckpoint",
    "RecoveryOptions",
    "RetryPolicy",
    "Backend",
    "BACKENDS",
    "SequentialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "lockwatch",
]

# REPRO_LOCK_SANITIZER=1 turns the lock-order sanitizer on for the whole
# process at `import repro` — this runs after the engine modules above so
# install() can rebind their `from threading import Lock` globals too.
if lockwatch.env_enabled():
    lockwatch.install()
