"""Text rendering of extracted features.

The paper's Figure 10 visualizes derived road flows on a map.  This
module provides dependency-free text renderings for quick inspection of
extracted collective features: grid heatmaps for regular spatial maps and
rasters, sparklines for time series, and a network-flow digest.

All renderers return strings (callers decide whether to print), use a
fixed glyph ramp, and treat ``None`` cells as missing.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.instances.raster import Raster
from repro.instances.spatialmap import SpatialMap
from repro.instances.timeseries import TimeSeries

#: Density ramp from empty to full.
RAMP = " .:-=+*#%@"
MISSING = "·"


def _glyph(value: float | None, lo: float, hi: float) -> str:
    if value is None:
        return MISSING
    if hi <= lo:
        return RAMP[-1] if value > 0 else RAMP[0]
    frac = (value - lo) / (hi - lo)
    index = min(len(RAMP) - 1, max(0, int(frac * (len(RAMP) - 1) + 0.5)))
    return RAMP[index]


def _bounds(values: Sequence[float | None]) -> tuple[float, float]:
    present = [v for v in values if v is not None]
    if not present:
        return (0.0, 0.0)
    return (min(present), max(present))


def render_grid(
    values: Sequence[float | None],
    nx: int,
    ny: int,
    title: str = "",
) -> str:
    """Heatmap of a row-major regular grid, northmost row on top."""
    if len(values) != nx * ny:
        raise ValueError(f"{len(values)} values cannot fill a {nx}x{ny} grid")
    lo, hi = _bounds(values)
    lines = []
    if title:
        lines.append(title)
    for row in range(ny - 1, -1, -1):  # y grows north; print north first
        lines.append(
            "".join(_glyph(values[row * nx + col], lo, hi) for col in range(nx))
        )
    lines.append(f"[{lo:.3g} '{RAMP[0]}' .. '{RAMP[-1]}' {hi:.3g}; '{MISSING}' missing]")
    return "\n".join(lines)


def render_spatial_map(
    sm: SpatialMap,
    nx: int,
    ny: int,
    value_of: Callable[[object], float | None] = lambda v: v,
    title: str = "",
) -> str:
    """Heatmap of a regular spatial map's cell values."""
    return render_grid([value_of(v) for v in sm.cell_values()], nx, ny, title)


def render_raster_slice(
    raster: Raster,
    nx: int,
    ny: int,
    nt: int,
    t_index: int,
    value_of: Callable[[object], float | None] = lambda v: v,
    title: str = "",
) -> str:
    """Heatmap of one temporal slice of a regular raster."""
    if not 0 <= t_index < nt:
        raise ValueError(f"t_index {t_index} out of range for nt={nt}")
    values = raster.cell_values()
    if len(values) != nx * ny * nt:
        raise ValueError(f"raster has {len(values)} cells, expected {nx * ny * nt}")
    slice_values = [value_of(values[cell * nt + t_index]) for cell in range(nx * ny)]
    label = title or f"t={t_index}"
    return render_grid(slice_values, nx, ny, label)


def render_time_series(
    ts: TimeSeries,
    value_of: Callable[[object], float | None] = lambda v: v,
    width: int | None = None,
    title: str = "",
) -> str:
    """One-line sparkline of a time series."""
    values = [value_of(v) for v in ts.cell_values()]
    if width is not None and len(values) > width:
        # Downsample by averaging consecutive buckets.
        bucket = len(values) / width
        compacted = []
        for i in range(width):
            chunk = [
                v for v in values[int(i * bucket) : int((i + 1) * bucket)] if v is not None
            ]
            compacted.append(sum(chunk) / len(chunk) if chunk else None)
        values = compacted
    lo, hi = _bounds(values)
    line = "".join(_glyph(v, lo, hi) for v in values)
    prefix = f"{title} " if title else ""
    return f"{prefix}[{line}] min={lo:.3g} max={hi:.3g}"


def render_flow_digest(
    flows: dict[tuple[int, int], int],
    n_hours: int = 24,
    bar_width: int = 40,
) -> str:
    """Hour-by-hour network flow bars (the Figure 10 temporal pattern)."""
    per_hour = [0] * n_hours
    for (_, hour), count in flows.items():
        if 0 <= hour < n_hours:
            per_hour[hour] += count
    peak = max(per_hour) if any(per_hour) else 1
    lines = ["hour  network flow"]
    for hour, total in enumerate(per_hour):
        bar = "#" * int(bar_width * total / peak)
        lines.append(f"{hour:4d}  {bar} {total}")
    return "\n".join(lines)
