"""A thin client for the serve protocol, used by ``repro query``.

One TCP connection, line-delimited JSON both ways (see
:mod:`repro.serve.protocol`).  The client is deliberately dumb: it frames
requests, assigns ids, and decodes responses — interpretation (retry on
SHED, parity checks, latency accounting) belongs to callers.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any

from repro.serve.protocol import canonical_dumps


class ServeError(RuntimeError):
    """Transport-level failure talking to a serve daemon."""


class ServeClient:
    """Blocking client for one serve daemon connection.

    Not thread-safe — one connection carries one request at a time
    (concurrency tests open one client per thread, which also exercises
    the server's connection handling).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str = "default",
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None
        self._next_id = 0

    def connect(self) -> "ServeClient":
        """Open the connection (idempotent); returns self for chaining."""
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServeError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            self._sock = sock
            self._rfile = sock.makefile("rb")
            self._wfile = sock.makefile("wb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request, wait for its response line, decode it."""
        self.connect()
        self._next_id += 1
        payload = {"op": op, "id": self._next_id, **fields}
        line = canonical_dumps(payload)
        try:
            self._wfile.write(line.encode("utf-8") + b"\n")
            self._wfile.flush()
            raw = self._rfile.readline()
        except OSError as exc:
            self.close()
            raise ServeError(f"connection to serve daemon failed: {exc}") from exc
        if not raw:
            self.close()
            raise ServeError("serve daemon closed the connection")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"malformed response from serve daemon: {exc}") from exc
        if not isinstance(response, dict):
            raise ServeError("serve daemon response is not a JSON object")
        return response

    def query(
        self,
        bbox: list | tuple | None = None,
        time_range: list | tuple | None = None,
        priority: int | None = None,
        tenant: str | None = None,
    ) -> dict:
        """One ST-range query; returns the raw response dict (any status)."""
        fields: dict[str, Any] = {"tenant": tenant or self.tenant}
        if bbox is not None:
            fields["bbox"] = list(bbox)
        if time_range is not None:
            fields["time"] = list(time_range)
        if priority is not None:
            fields["priority"] = int(priority)
        return self.request("query", **fields)

    def ping(self) -> dict:
        """Liveness + protocol/generation probe."""
        return self.request("ping")

    def stats(self) -> dict:
        """The server's counters/caches/tenants/queue snapshot."""
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the daemon to stop (if it allows remote shutdown)."""
        response = self.request("shutdown")
        self.close()
        return response


def wait_until_ready(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> dict:
    """Poll ``ping`` until the daemon answers; returns the ping response.

    Raises :class:`ServeError` when the deadline passes — used by the
    smoke tool and docs examples to avoid racing daemon startup.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        client = ServeClient(host, port, timeout=min(1.0, timeout))
        try:
            return client.ping()
        except ServeError as exc:
            last_error = exc
            time.sleep(interval)
        finally:
            client.close()
    raise ServeError(
        f"serve daemon at {host}:{port} not ready after {timeout:.1f}s: {last_error}"
    )
