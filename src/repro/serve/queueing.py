"""A bounded priority queue with explicit rejection (no silent drops).

The serve daemon's execution queue: admission-passed requests wait here
for a query worker.  Depth is bounded — a server melting down must say
``SHED`` quickly, not buffer unboundedly and answer everything late — and
``offer`` *returns* ``False`` when full instead of blocking or raising,
so the transport layer can turn queue pressure into an explicit shed
response.

Ordering is by ``priority`` (lower first), FIFO within a priority via a
monotonic sequence number — equal-priority tenants cannot starve each
other, and heapq never compares the (incomparable) payloads.
"""

from __future__ import annotations

import heapq
import itertools
from threading import Condition, Lock
from typing import Any


class BoundedPriorityQueue:
    """Priority queue with a hard depth bound; thread-safe."""

    def __init__(self, depth: int = 64):
        if depth < 1:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        self._lock = Lock()
        self._not_empty = Condition(self._lock)
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._closed = False
        self.offered = 0
        self.rejected = 0
        self.peak_depth = 0

    def offer(self, item: Any, priority: int = 0) -> bool:
        """Enqueue if there is room; ``False`` (reject) when full/closed."""
        with self._lock:
            self.offered += 1
            if self._closed or len(self._heap) >= self.depth:
                self.rejected += 1
                return False
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            self.peak_depth = max(self.peak_depth, len(self._heap))
            self._not_empty.notify()
            return True

    def take(self, timeout: float | None = None) -> Any | None:
        """Dequeue the highest-priority item; ``None`` on timeout/close."""
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Reject future offers and wake every blocked :meth:`take`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
