"""``repro.serve`` — the long-lived query daemon.

ST4ML's batch pipeline pays dataset open, metadata parse, block decode,
index build, and worker-pool spawn on *every* invocation.  This package
keeps all of that resident behind a socket: a
:class:`~repro.serve.server.QueryServer` holds the dataset handle, the
decoded partition blocks, the per-partition selection indexes, the
server-wide result cache, and a warm execution backend, answering
concurrent ST-range queries over a line-delimited-JSON protocol with
per-tenant admission control and explicit load shedding.

Modules:

* :mod:`repro.serve.protocol` — wire format + the result codec shared
  with ``repro select --format json`` (byte-for-byte parity);
* :mod:`repro.serve.admission` — token buckets, in-flight caps, tenant
  policies;
* :mod:`repro.serve.queueing` — bounded priority queue with explicit
  rejection;
* :mod:`repro.serve.cache` — the generation-keyed LRU result cache;
* :mod:`repro.serve.server` — resident state, workers, transport;
* :mod:`repro.serve.client` — the thin client behind ``repro query``.
"""

from repro.serve.admission import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
)
from repro.serve.cache import CachedResult, ResultCache
from repro.serve.client import ServeClient, ServeError, wait_until_ready
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    canonical_dumps,
    encode_records,
    records_document,
    result_document,
)
from repro.serve.queueing import BoundedPriorityQueue
from repro.serve.server import DatasetState, QueryServer, ServeConfig

__all__ = [
    "AdmissionController",
    "BoundedPriorityQueue",
    "CachedResult",
    "DatasetState",
    "PROTOCOL_VERSION",
    "QueryServer",
    "ResultCache",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TenantPolicy",
    "TokenBucket",
    "canonical_dumps",
    "encode_records",
    "records_document",
    "result_document",
    "wait_until_ready",
]
