"""The line-delimited-JSON wire protocol and the shared result codec.

One request per line, one response per line, UTF-8 JSON both ways — the
simplest protocol a shell script, a notebook, or another service can
speak.  Requests carry an ``op`` plus op-specific fields::

    {"op": "query", "tenant": "ml-team", "bbox": [-74.0, 40.6, -73.9, 40.8],
     "time": [1356998400, 1357603200], "priority": 5}

Responses carry ``status``: ``"ok"``, ``"SHED"`` (admission control or
queue pressure rejected the request — explicit, never a silent drop), or
``"error"``.

Result records are serialized by :func:`encode_records` — the *same*
function behind ``repro select --format json`` — and every JSON document
either side emits goes through :func:`canonical_dumps` (sorted keys,
minimal separators).  Shared construction is what makes "served results
are byte-for-byte identical to the one-shot CLI" a testable property
rather than a hope.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox, st_query_box
from repro.instances.base import Instance
from repro.stio.formats import encode_record
from repro.temporal.duration import Duration

#: Bumped when the wire format changes incompatibly; ``ping`` reports it.
PROTOCOL_VERSION = 1

#: Default priority for requests that do not set one (lower = sooner).
DEFAULT_PRIORITY = 10

#: Explicit load-shed status — the contract is SHED responses, never
#: silent drops.
STATUS_OK = "ok"
STATUS_SHED = "SHED"
STATUS_ERROR = "error"


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _jsonable(value: Any) -> Any:
    """Tuples→lists, recursively — the only repair JSON needs here."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def encode_records(instances: Sequence[Instance]) -> list:
    """JSON-safe encoded records, in selection output order.

    Routes through :func:`repro.stio.formats.encode_record` — the on-disk
    tuple codec — so the wire format and the storage format agree on what
    a record is.
    """
    return [_jsonable(encode_record(inst)) for inst in instances]


def records_document(instances: Sequence[Instance]) -> str:
    """The one-shot-CLI result document: ``{"count": N, "records": [...]}``.

    ``repro select --format json`` prints exactly this string;
    ``repro query --format json`` re-derives it from a query response via
    :func:`result_document`.  Byte-for-byte parity between the two paths
    is asserted by tests and the serve-smoke CI job.
    """
    records = encode_records(instances)
    return canonical_dumps({"count": len(records), "records": records})


def result_document(response: dict) -> str:
    """Rebuild the :func:`records_document` string from an ``ok`` response."""
    return canonical_dumps(
        {"count": response.get("count", 0), "records": response.get("records", [])}
    )


def parse_query_range(
    request: dict,
) -> tuple[Envelope | None, Duration | None]:
    """Extract and validate the ST range of a ``query`` request.

    ``bbox`` is ``[min_x, min_y, max_x, max_y]``; ``time`` is
    ``[start, end]``.  Either may be absent (unconstrained), but not both
    — the same rule the ``Selector`` constructor enforces.
    """
    spatial = None
    temporal = None
    bbox = request.get("bbox")
    if bbox is not None:
        if not isinstance(bbox, (list, tuple)) or len(bbox) != 4:
            raise ValueError("bbox must be [min_x, min_y, max_x, max_y]")
        spatial = Envelope(*(float(v) for v in bbox))
    window = request.get("time")
    if window is not None:
        if not isinstance(window, (list, tuple)) or len(window) != 2:
            raise ValueError("time must be [start, end]")
        temporal = Duration(float(window[0]), float(window[1]))
    if spatial is None and temporal is None:
        raise ValueError("a query needs bbox and/or time")
    return spatial, temporal


def query_cache_key(
    spatial: Envelope | None, temporal: Duration | None, generation: int
) -> str:
    """Canonical result-cache key: ``st_query_box`` + dataset generation.

    Built on :func:`~repro.index.boxes.st_query_box` — the same canonical
    box metadata pruning and in-memory filtering share — so two requests
    that mean the same range (e.g. one passes the dataset's full time span
    explicitly, another passes the equivalent box) hit the same entry, and
    a generation bump (append / repartition) makes every old key
    unreachable without any eager sweep.
    """
    box: STBox = st_query_box(spatial, temporal)
    return canonical_dumps(
        {"gen": generation, "mins": list(box.mins), "maxs": list(box.maxs)}
    )


def parse_request(line: str) -> dict:
    """Decode one request line; raises ``ValueError`` with a client-safe
    message on malformed input."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON request: {exc.msg}") from exc
    if not isinstance(request, dict):
        raise ValueError("request must be a JSON object")
    op = request.get("op")
    if not isinstance(op, str) or not op:
        raise ValueError("request needs a string 'op'")
    return request


def shed_response(request_id: Any, reason: str, tenant: str) -> dict:
    """An explicit SHED response (admission control / queue pressure)."""
    return {
        "id": request_id,
        "status": STATUS_SHED,
        "reason": reason,
        "tenant": tenant,
    }


def error_response(request_id: Any, message: str) -> dict:
    """An error response carrying a client-safe message."""
    return {"id": request_id, "status": STATUS_ERROR, "error": message}
