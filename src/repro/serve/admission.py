"""Per-tenant admission control: token buckets + in-flight caps.

A tenant's budget has two independent dimensions:

* **rate** — a token bucket refilled continuously at ``rate`` tokens/sec
  up to ``burst``; each admitted request spends one token.  ``rate=0``
  means no refill: the tenant gets exactly ``burst`` requests, ever —
  degenerate in production but exactly what deterministic tests want.
* **concurrency** — at most ``max_inflight`` requests admitted but not
  yet completed (queued or executing).

Rejections are *explicit*: the caller turns them into ``SHED`` responses
carrying the reason (``rate_limit`` / ``max_inflight``), never silent
drops.  The controller is deliberately below the transport: it knows
tenant names and clocks, nothing about sockets or queues.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable

#: Shed reasons the controller can produce (the queue adds "queue_full").
REASON_RATE = "rate_limit"
REASON_INFLIGHT = "max_inflight"


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission budget."""

    rate: float = 50.0
    burst: float = 20.0
    max_inflight: int = 8

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")

    @classmethod
    def from_spec(cls, spec: str) -> tuple[str, "TenantPolicy"]:
        """Parse ``name:rate:burst:max_inflight`` (the CLI ``--tenant`` form).

        Trailing fields may be omitted: ``name:rate`` and
        ``name:rate:burst`` fill the rest with defaults.
        """
        parts = spec.split(":")
        if not parts[0]:
            raise ValueError(f"tenant spec needs a name: {spec!r}")
        if len(parts) > 4:
            raise ValueError(f"tenant spec has too many fields: {spec!r}")
        defaults = cls()
        try:
            rate = float(parts[1]) if len(parts) > 1 and parts[1] else defaults.rate
            burst = float(parts[2]) if len(parts) > 2 and parts[2] else defaults.burst
            inflight = (
                int(parts[3]) if len(parts) > 3 and parts[3] else defaults.max_inflight
            )
        except ValueError as exc:
            raise ValueError(f"bad tenant spec {spec!r}: {exc}") from exc
        return parts[0], cls(rate=rate, burst=burst, max_inflight=inflight)


class TokenBucket:
    """Continuous-refill token bucket (not thread-safe; callers lock)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if self.rate > 0:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; False (and no spend) otherwise."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current token level (refilled to now)."""
        self._refill()
        return self._tokens


@dataclass
class TenantStats:
    """Per-tenant admission accounting, reported by the ``stats`` op."""

    admitted: int = 0
    completed: int = 0
    shed_rate: int = 0
    shed_inflight: int = 0
    inflight: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view for JSON responses."""
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_rate": self.shed_rate,
            "shed_inflight": self.shed_inflight,
            "inflight": self.inflight,
        }


class AdmissionController:
    """Admit or shed requests per tenant; thread-safe.

    Tenants not named in ``tenants`` are admitted under ``default`` —
    every caller gets *a* budget, so one unknown tenant cannot starve the
    named ones.  Buckets and in-flight counters are per tenant name.
    """

    def __init__(
        self,
        default: TenantPolicy | None = None,
        tenants: dict[str, TenantPolicy] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.default = default if default is not None else TenantPolicy()
        self._policies = dict(tenants or {})
        self._clock = clock
        self._lock = Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._stats: dict[str, TenantStats] = {}

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (the default for unknown tenants)."""
        return self._policies.get(tenant, self.default)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy_for(tenant)
            bucket = TokenBucket(policy.rate, policy.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def _tenant_stats(self, tenant: str) -> TenantStats:
        stats = self._stats.get(tenant)
        if stats is None:
            stats = TenantStats()
            self._stats[tenant] = stats
        return stats

    def admit(self, tenant: str) -> str | None:
        """Try to admit one request; returns ``None`` or a shed reason.

        Admission takes the in-flight slot immediately — the caller MUST
        pair every successful ``admit`` with exactly one :meth:`release`,
        whatever happens to the request afterwards.
        """
        with self._lock:
            stats = self._tenant_stats(tenant)
            policy = self.policy_for(tenant)
            if stats.inflight >= policy.max_inflight:
                stats.shed_inflight += 1
                return REASON_INFLIGHT
            if not self._bucket(tenant).try_acquire():
                stats.shed_rate += 1
                return REASON_RATE
            stats.admitted += 1
            stats.inflight += 1
            return None

    def release(self, tenant: str) -> None:
        """Complete one admitted request (frees its in-flight slot)."""
        with self._lock:
            stats = self._tenant_stats(tenant)
            stats.inflight = max(0, stats.inflight - 1)
            stats.completed += 1

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant stats as plain dicts (for the ``stats`` op)."""
        with self._lock:
            return {name: stats.snapshot() for name, stats in self._stats.items()}
