"""The server-wide, byte-bounded LRU result cache.

This is the second cache tier of the serve daemon.  The first — the
per-partition selection-index cache in :mod:`repro.columnar.cache` —
amortizes *index construction* across queries that touch the same
resident partition; this one amortizes the *whole answer* across repeats
of the same canonical query.  Entries are keyed on
:func:`repro.serve.protocol.query_cache_key` (canonical ``st_query_box``
+ dataset generation), so invalidation on append/repartition is free: the
generation bump changes every future key, and the stale entries age out
through the byte-budgeted LRU sweep (or are dropped eagerly by
:meth:`ResultCache.drop_stale_generations` when the server notices the
edit).

The cached value is the *encoded* record list (JSON-safe, via
``encode_records``) — what the response needs, with no instance objects
pinned — and the byte charge is the canonical serialization length, a
faithful proxy for both the memory held and the bytes a hit will send.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock


@dataclass
class CachedResult:
    """One cached answer: encoded records + accounting."""

    records: list
    count: int
    nbytes: int
    generation: int


class ResultCache:
    """Memory-bounded LRU over canonical-query keys; thread-safe.

    ``max_bytes`` bounds the summed byte charge of cached values.  Like
    the selection-index tier, the most recent entry survives even when it
    alone exceeds the budget; unlike it, there is no entry-count knob —
    results vary wildly in size, so bytes are the only honest bound.
    """

    def __init__(self, max_bytes: int = 64 << 20):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._lock = Lock()
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: str) -> CachedResult | None:
        """The entry for ``key`` (refreshing its recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CachedResult) -> None:
        """Store ``entry``, evicting LRU entries past the byte budget."""
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes -= previous.nbytes
            self._entries[key] = entry
            self.bytes += entry.nbytes
            while len(self._entries) > 1 and self.bytes > self.max_bytes:
                _, dropped = self._entries.popitem(last=False)
                self.bytes -= dropped.nbytes
                self.evictions += 1

    def drop_stale_generations(self, current: int) -> int:
        """Eagerly drop entries from generations other than ``current``.

        Correctness never needs this — stale generations stop *hitting*
        the moment the key changes — but a long-lived server should not
        let dead entries squat on the byte budget until LRU churn reaches
        them.  Returns the number dropped.
        """
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.generation != current
            ]
            for key in stale:
                self.bytes -= self._entries.pop(key).nbytes
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self.bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Counters for the ``stats`` op / trace export."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
