"""The ``repro serve`` daemon: resident state + control plane + transport.

Architecture (one dataset per server)::

    client ── TCP line ──▶ handler thread (socketserver.ThreadingMixIn)
                             │  parse → admission control (token bucket,
                             │  in-flight cap) → bounded priority queue
                             ▼                    │ SHED on any rejection
                       query workers (N threads) ◀┘
                             │  result cache → resident partitions →
                             │  Selector (same filter path as batch)
                             ▼
                       response line back through the handler

What stays resident between queries — the whole point of the daemon,
versus the one-shot CLI that pays all of this per invocation:

* the :class:`~repro.stio.StDataset` handle and its parsed
  :class:`~repro.stio.metadata.DatasetMetadata`;
* decoded partition block lists (:class:`DatasetState`), whose stable
  object identity is what lets the per-partition selection-index cache of
  :mod:`repro.columnar.cache` hit across queries;
* the :class:`~repro.serve.cache.ResultCache`, keyed on canonical
  ``st_query_box`` + dataset generation;
* the engine backend's worker pool (``Backend.prestart()`` at startup).

Invalidation: every query round-trips an ``os.stat`` of the metadata file
(:meth:`DatasetState.refresh`); when an append or re-index bumped the
dataset generation, the resident blocks and selection indexes are dropped
and the result cache's stale generations are swept.  Every request is
metered through :mod:`repro.obs` when a tracer is installed — the same
span/counter machinery batch runs profile with.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.columnar.cache import (
    configure_selection_cache,
    invalidate_partition_indexes,
    seed_partition_boxtable,
    selection_cache,
)
from repro.core.selector import Selector
from repro.engine.context import EngineContext
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.cache import CachedResult, ResultCache
from repro.serve.protocol import (
    DEFAULT_PRIORITY,
    PROTOCOL_VERSION,
    STATUS_OK,
    canonical_dumps,
    encode_records,
    error_response,
    parse_query_range,
    parse_request,
    query_cache_key,
    shed_response,
)
from repro.serve.queueing import BoundedPriorityQueue
from repro.stio.dataset import StDataset
from repro.stio.metadata import METADATA_FILENAME, DatasetMetadata

#: Queue-pressure shed reason (admission reasons live in serve.admission).
REASON_QUEUE_FULL = "queue_full"


@dataclass
class ServeConfig:
    """Everything the daemon is configured with."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    queue_depth: int = 64
    request_timeout: float = 60.0
    cache_bytes: int = 64 << 20
    index_cache_bytes: int | None = 256 << 20
    index_cache_entries: int = 1024
    max_resident_blocks: int = 4096
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    index: bool = True
    use_columnar: bool = True
    allow_shutdown: bool = True
    #: "raise" answers queries over an undecodable block with an error;
    #: "quarantine" skips the block (partial answers, counted in stats).
    on_corrupt: str = "raise"


class DatasetState:
    """Resident handles for the served dataset; thread-safe.

    Holds the dataset handle, its parsed metadata, and an LRU of decoded
    partition blocks keyed on filename.  :meth:`refresh` is the
    invalidation edge: a changed metadata file (append bumped the
    generation, a re-index rewrote the directory) drops the resident
    blocks and the process-wide selection-index cache — the block lists'
    identities are about to change, so the old indexes can never hit
    again and would only squat on the byte budget.
    """

    def __init__(
        self,
        directory: str | Path,
        max_resident_blocks: int = 4096,
        on_corrupt: str = "raise",
    ):
        self.dataset = StDataset(directory)
        self.max_resident_blocks = max_resident_blocks
        self.on_corrupt = on_corrupt
        self._lock = threading.Lock()
        self._blocks: dict[str, list] = {}
        self._block_order: list[str] = []
        self.blocks_loaded = 0
        self.block_evictions = 0
        self.blocks_quarantined = 0
        self.refreshes = 0
        self.invalidations = 0
        self.meta: DatasetMetadata = self.dataset.metadata()
        self._meta_sig = self._signature()

    def _signature(self) -> tuple[int, int]:
        stat = (self.dataset.directory / METADATA_FILENAME).stat()
        return (stat.st_mtime_ns, stat.st_size)

    @property
    def generation(self) -> int:
        """The resident metadata's dataset generation."""
        return self.meta.generation

    def refresh(self) -> bool:
        """Re-stat the metadata file; reload + invalidate if it changed.

        Returns True when the dataset changed underneath the server.  The
        stat round-trip is a few microseconds — cheap enough to pay per
        query for the guarantee that a stale answer is never served.
        """
        with self._lock:
            self.refreshes += 1
            signature = self._signature()
            if signature == self._meta_sig:
                return False
            self.meta = self.dataset.metadata()
            self._meta_sig = signature
            self._blocks.clear()
            self._block_order.clear()
            self.invalidations += 1
            invalidate_partition_indexes()
            return True

    def partitions_for(self, spatial, temporal) -> tuple[list[list], int, int]:
        """Resident partition lists overlapping the query range.

        Returns ``(partitions, scanned, total)`` where ``scanned`` is the
        number of partitions surviving metadata pruning — the same
        shortlist a one-shot :meth:`StDataset.read` would deserialize,
        except here previously loaded blocks come from residency.

        Disk reads and block decode happen *outside* the lock (REPRO203:
        a decode can take tens of milliseconds, and every other request
        thread would stall on the lock for the duration).  Two threads
        missing on the same block may both decode it; the second store is
        dropped so all callers share one resident object per filename.

        For v2 datasets each decode also yields a BoxTable whose extent
        columns are views into the mmapped block file; it is seeded into
        the selection-index cache against the *adopted* resident list, so
        the first query over a fresh block already hits the columnar
        index.  Under ``on_corrupt="quarantine"`` an undecodable block
        answers as empty (and is counted, never cached, so a repaired
        file is picked up on the next query).
        """
        with self._lock:
            meta_snapshot = self.meta
            codec = meta_snapshot.codec
            block_format = meta_snapshot.block_format
            selected = meta_snapshot.select_partitions(spatial, temporal)
            total = len(meta_snapshot.partitions)
            blocks: dict[str, list] = {}
            misses = []
            for meta in selected:
                block = self._blocks.get(meta.filename)
                if block is None:
                    misses.append(meta)
                else:
                    # Touch for LRU recency.
                    self._block_order.remove(meta.filename)
                    self._block_order.append(meta.filename)
                    blocks[meta.filename] = block
        decoded = {
            meta.filename: self.dataset.read_block_indexed(
                meta,
                codec=codec,
                block_format=block_format,
                on_corrupt=self.on_corrupt,
            )
            for meta in misses
        }
        quarantined = {
            meta.filename
            for meta in misses
            if meta.count > 0 and not decoded[meta.filename][0]
        }
        if decoded:
            with self._lock:
                for filename, (block, table) in decoded.items():
                    blocks[filename] = block
                    if filename in quarantined:
                        # Selected partitions always have count > 0, so an
                        # empty decode means the block was quarantined:
                        # answer without it, never cache it — a repaired
                        # file must be re-read next query.
                        self.blocks_quarantined += 1
                        continue
                    if self.meta is not meta_snapshot:
                        # A refresh() swapped the dataset mid-decode; the
                        # answer (built from the old snapshot) is still
                        # consistent, but caching the stale block would
                        # poison the fresh residency set.
                        continue
                    resident = self._blocks.get(filename)
                    if resident is not None:
                        # A concurrent miss decoded it first; keep the
                        # resident object so every caller shares one copy.
                        blocks[filename] = resident
                        continue
                    self._blocks[filename] = block
                    self._block_order.append(filename)
                    self.blocks_loaded += 1
                    if table is not None:
                        # Key the mmapped BoxTable on the list object that
                        # just became resident — exactly the identity the
                        # Selector will probe the cache with.
                        seed_partition_boxtable(block, table)
                    while len(self._block_order) > self.max_resident_blocks:
                        evicted = self._block_order.pop(0)
                        self._blocks.pop(evicted, None)
                        self.block_evictions += 1
        partitions = [blocks[meta.filename] for meta in selected]
        return partitions, len(selected), total

    def resident_blocks(self) -> int:
        """Number of currently resident decoded blocks."""
        with self._lock:
            return len(self._blocks)


class _Pending:
    """One admitted query waiting for (or being processed by) a worker."""

    __slots__ = (
        "request", "tenant", "spatial", "temporal",
        "enqueued", "started_wall", "event", "response",
    )

    def __init__(self, request: dict, tenant: str, spatial, temporal):
        self.request = request
        self.tenant = tenant
        self.spatial = spatial
        self.temporal = temporal
        self.enqueued = time.monotonic()
        self.started_wall = time.time()
        self.event = threading.Event()
        self.response: dict | None = None


class QueryServer:
    """The daemon: resident dataset state + admission + workers + cache."""

    def __init__(
        self,
        directory: str | Path,
        config: ServeConfig | None = None,
        ctx: EngineContext | None = None,
    ):
        self.config = config or ServeConfig()
        self.directory = Path(directory)
        self.ctx = ctx or EngineContext()
        self.state = DatasetState(
            self.directory,
            max_resident_blocks=self.config.max_resident_blocks,
            on_corrupt=self.config.on_corrupt,
        )
        self.result_cache = ResultCache(max_bytes=self.config.cache_bytes)
        self.admission = AdmissionController(
            default=self.config.default_tenant, tenants=self.config.tenants
        )
        self.queue = BoundedPriorityQueue(depth=self.config.queue_depth)
        configure_selection_cache(
            capacity=self.config.index_cache_entries,
            max_bytes=self.config.index_cache_bytes,
        )
        self.started = time.time()
        self._counters_lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self._workers: list[threading.Thread] = []
        self._tcp: _TCPServer | None = None
        self._serving = threading.Event()
        self._stopped = False

    # -- metering -----------------------------------------------------------------

    def _count(self, name: str, value: float = 1) -> None:
        """Bump a server counter, mirrored to the installed tracer."""
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + value
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.counter(name, value)

    def _trace_request(
        self, pending: _Pending, status: str, queue_wait: float, **args: Any
    ) -> None:
        tracer = self.ctx.tracer
        if tracer is not None:
            tracer.add_span(
                "request",
                "serve",
                pending.started_wall,
                time.time(),
                track="serve",
                tenant=pending.tenant,
                status=status,
                queue_wait_seconds=round(queue_wait, 6),
                **args,
            )

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the socket, warm the backend, start the query workers.

        Returns the bound ``(host, port)`` — with ``port=0`` this is how
        the caller learns the ephemeral port.
        """
        if self._tcp is not None:
            raise RuntimeError("server already started")
        # Warm worker residency: spawn the execution pool now so the first
        # query doesn't pay process/thread startup.
        self.ctx.backend.prestart()
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-query-{i}", daemon=True
            )
            thread.start()
            self._workers.append(thread)
        self._tcp = _TCPServer((self.config.host, self.config.port), _Handler, self)
        self._serving.set()
        return self._tcp.server_address[0], self._tcp.server_address[1]

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or a shutdown op)."""
        if self._tcp is None:
            self.start()
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down the transport, the workers, and the engine backend."""
        if self._stopped:
            return
        self._stopped = True
        self._serving.clear()
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
        self.queue.close()
        for thread in self._workers:
            thread.join(timeout=2.0)
        self.ctx.stop()

    def __enter__(self) -> "QueryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- request handling (called from handler threads) -----------------------------

    def handle_line(self, line: str) -> tuple[str, bool]:
        """Process one request line; returns ``(response_line, keep_open)``."""
        try:
            request = parse_request(line)
        except ValueError as exc:
            self._count("serve_errors")
            return canonical_dumps(error_response(None, str(exc))), True
        op = request.get("op")
        request_id = request.get("id")
        try:
            if op == "query":
                return canonical_dumps(self._handle_query(request)), True
            if op == "ping":
                return canonical_dumps(self._handle_ping(request_id)), True
            if op == "stats":
                return canonical_dumps(self._handle_stats(request_id)), True
            if op == "shutdown":
                return self._handle_shutdown(request_id)
            self._count("serve_errors")
            return (
                canonical_dumps(error_response(request_id, f"unknown op {op!r}")),
                True,
            )
        except Exception as exc:  # noqa: BLE001 - a request must never kill the server
            self._count("serve_errors")
            return (
                canonical_dumps(
                    error_response(request_id, f"{type(exc).__name__}: {exc}")
                ),
                True,
            )

    def _handle_query(self, request: dict) -> dict:
        tenant = str(request.get("tenant", "default"))
        request_id = request.get("id")
        self._count("serve_requests")
        self._count(f"serve_requests[{tenant}]")
        try:
            spatial, temporal = parse_query_range(request)
        except ValueError as exc:
            self._count("serve_errors")
            return error_response(request_id, str(exc))
        pending = _Pending(request, tenant, spatial, temporal)
        reason = self.admission.admit(tenant)
        if reason is not None:
            return self._shed(pending, reason)
        priority = request.get("priority", DEFAULT_PRIORITY)
        try:
            priority = int(priority)
        except (TypeError, ValueError):
            priority = DEFAULT_PRIORITY
        if not self.queue.offer(pending, priority):
            self.admission.release(tenant)
            return self._shed(pending, REASON_QUEUE_FULL)
        if not pending.event.wait(self.config.request_timeout):
            # The worker will still complete (and release admission); the
            # client just stops waiting.
            self._count("serve_timeouts")
            return error_response(request_id, "request timed out server-side")
        return pending.response

    def _shed(self, pending: _Pending, reason: str) -> dict:
        self._count("serve_shed")
        self._count(f"serve_shed_{reason}")
        self._count(f"serve_shed[{pending.tenant}]")
        self._trace_request(pending, "SHED", 0.0, reason=reason)
        return shed_response(pending.request.get("id"), reason, pending.tenant)

    # -- query execution (worker threads) -------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            pending = self.queue.take(timeout=0.2)
            if pending is None:
                if self._stopped:
                    return
                continue
            try:
                pending.response = self._execute(pending)
            except Exception as exc:  # noqa: BLE001 - answer, don't die
                self._count("serve_errors")
                pending.response = error_response(
                    pending.request.get("id"), f"{type(exc).__name__}: {exc}"
                )
            finally:
                self.admission.release(pending.tenant)
                pending.event.set()

    def _execute(self, pending: _Pending) -> dict:
        queue_wait = time.monotonic() - pending.enqueued
        self._count("serve_queue_wait_seconds", round(queue_wait, 6))
        started = time.monotonic()
        if self.state.refresh():
            self._count("serve_invalidations")
            self.result_cache.drop_stale_generations(self.state.generation)
        generation = self.state.generation
        key = query_cache_key(pending.spatial, pending.temporal, generation)
        cached = self.result_cache.get(key)
        if cached is not None:
            self._count("serve_cache_hits")
            self._trace_request(
                pending, STATUS_OK, queue_wait, cache_hit=True, records=cached.count
            )
            return self._ok(pending, cached, generation, queue_wait, started, True)
        self._count("serve_cache_misses")
        partitions, scanned, total = self.state.partitions_for(
            pending.spatial, pending.temporal
        )
        self._count("serve_partitions_scanned", scanned)
        self._count("serve_partitions_pruned", total - scanned)
        selector = Selector(
            pending.spatial,
            pending.temporal,
            index=self.config.index,
            use_columnar=self.config.use_columnar,
        )
        # copy=False keeps the resident lists' identity, so the
        # per-partition selection-index cache hits on repeat visits.
        rdd = self.ctx.from_partitions(partitions, copy=False)
        instances = selector.select(self.ctx, rdd).collect()
        records = encode_records(instances)
        entry = CachedResult(
            records=records,
            count=len(records),
            nbytes=len(canonical_dumps(records)),
            generation=generation,
        )
        self.result_cache.put(key, entry)
        self._trace_request(
            pending,
            STATUS_OK,
            queue_wait,
            cache_hit=False,
            records=entry.count,
            partitions_scanned=scanned,
        )
        return self._ok(pending, entry, generation, queue_wait, started, False)

    def _ok(
        self,
        pending: _Pending,
        entry: CachedResult,
        generation: int,
        queue_wait: float,
        started: float,
        cached: bool,
    ) -> dict:
        return {
            "id": pending.request.get("id"),
            "status": STATUS_OK,
            "tenant": pending.tenant,
            "count": entry.count,
            "records": entry.records,
            "cached": cached,
            "generation": generation,
            "queue_ms": round(queue_wait * 1e3, 3),
            "exec_ms": round((time.monotonic() - started) * 1e3, 3),
        }

    # -- control ops ----------------------------------------------------------------

    def _handle_ping(self, request_id: Any) -> dict:
        return {
            "id": request_id,
            "status": STATUS_OK,
            "protocol": PROTOCOL_VERSION,
            "dataset": str(self.directory),
            "generation": self.state.generation,
            "watermark": self.state.meta.watermark,
        }

    def _handle_stats(self, request_id: Any) -> dict:
        index_cache = selection_cache()
        with self._counters_lock:
            counters = {
                k: v for k, v in self.counters.items() if "[" not in k
            }
        return {
            "id": request_id,
            "status": STATUS_OK,
            "uptime_seconds": round(time.time() - self.started, 3),
            "backend": self.ctx.backend_name,
            "counters": counters,
            "result_cache": self.result_cache.snapshot(),
            "index_cache": {
                "entries": len(index_cache),
                "bytes": index_cache.bytes,
                "max_bytes": index_cache.max_bytes,
                "hits": index_cache.hits,
                "misses": index_cache.misses,
                "evictions": index_cache.evictions,
            },
            "tenants": self.admission.snapshot(),
            "queue": {
                "depth": len(self.queue),
                "max_depth": self.queue.depth,
                "peak_depth": self.queue.peak_depth,
                "rejected": self.queue.rejected,
            },
            "dataset": {
                "generation": self.state.generation,
                "watermark": self.state.meta.watermark,
                "partitions": len(self.state.meta.partitions),
                "records": self.state.meta.total_records,
                "resident_blocks": self.state.resident_blocks(),
                "blocks_loaded": self.state.blocks_loaded,
                "blocks_quarantined": self.state.blocks_quarantined,
                "block_format": self.state.meta.block_format,
                "invalidations": self.state.invalidations,
            },
        }

    def _handle_shutdown(self, request_id: Any) -> tuple[str, bool]:
        if not self.config.allow_shutdown:
            self._count("serve_errors")
            return (
                canonical_dumps(
                    error_response(request_id, "shutdown disabled on this server")
                ),
                True,
            )
        # Acknowledge first; the handler flushes the line before the
        # transport goes down (stop() runs from a helper thread because
        # TCPServer.shutdown blocks until serve_forever exits).
        threading.Thread(target=self.stop, name="serve-shutdown", daemon=True).start()
        return canonical_dumps({"id": request_id, "status": STATUS_OK, "bye": True}), False


class _TCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server wired to a :class:`QueryServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], handler, query_server: QueryServer):
        self.query_server = query_server
        super().__init__(address, handler)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: loop reading request lines until EOF."""

    def handle(self) -> None:
        server: QueryServer = self.server.query_server
        while True:
            try:
                raw = self.rfile.readline()
            except (ConnectionError, OSError):
                return
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            response_line, keep_open = server.handle_line(line)
            try:
                self.wfile.write(response_line.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if not keep_open:
                return
