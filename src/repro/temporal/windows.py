"""Window helpers over durations.

These back the ``temporalSliding``-style convenience functions the paper
offers to application programmers (Section 3.3, "Native Spark operations").
"""

from __future__ import annotations

from repro.temporal.duration import Duration


def tumbling_windows(extent: Duration, size: float) -> list[Duration]:
    """Cover ``extent`` with consecutive non-overlapping windows of ``size``.

    The final window is truncated to the extent's end so the union of the
    returned windows equals the extent exactly — converters rely on this to
    guarantee every record lands in some slot.
    """
    if size <= 0:
        raise ValueError("window size must be positive")
    windows = []
    t = extent.start
    while t < extent.end:
        windows.append(Duration(t, min(t + size, extent.end)))
        t += size
    if not windows:
        # Zero-length extent still deserves one instant window.
        windows.append(Duration(extent.start, extent.end))
    return windows


def sliding_windows(extent: Duration, size: float, step: float) -> list[Duration]:
    """Overlapping windows of ``size`` advancing by ``step``.

    Unlike tumbling windows, sliding windows may extend past the extent's
    end; callers that need clipping intersect with ``extent`` themselves.
    """
    if size <= 0 or step <= 0:
        raise ValueError("window size and step must be positive")
    windows = []
    t = extent.start
    while t < extent.end:
        windows.append(Duration(t, t + size))
        t += step
    if not windows:
        windows.append(Duration(extent.start, extent.start + size))
    return windows
