"""Temporal substrate: durations, instants, and window helpers.

ST4ML's ``Entry`` couples a geometry with a ``Duration``; the temporal
dimension is a first-class citizen of every index, partitioner, and
converter in the system.  Timestamps are Unix epoch seconds stored as
floats, which matches the second-granularity sampling of the paper's
datasets while staying trivially serializable.
"""

from repro.temporal.duration import Duration
from repro.temporal.windows import sliding_windows, tumbling_windows

__all__ = ["Duration", "sliding_windows", "tumbling_windows"]
