"""Closed time intervals."""

from __future__ import annotations

import math
from typing import Iterable


class Duration:
    """A closed interval ``[start, end]`` of Unix epoch seconds.

    An *instant* is the special case ``start == end`` — the paper models
    event timestamps this way.  Durations are immutable value objects, and
    intersection follows the same closed-boundary convention as
    :class:`repro.geometry.Envelope` so the 3-d (x, y, t) semantics are
    uniform across dimensions.
    """

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float | None = None):
        if end is None:
            end = start
        if math.isnan(start) or math.isnan(end):
            raise ValueError("duration endpoints must not be NaN")
        if start > end:
            raise ValueError(f"invalid duration: start {start} > end {end}")
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "end", float(end))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Duration is immutable")

    # -- construction ---------------------------------------------------------

    @classmethod
    def instant(cls, t: float) -> "Duration":
        """A zero-length duration at time ``t``."""
        return cls(t, t)

    @classmethod
    def merge_all(cls, durations: Iterable["Duration"]) -> "Duration":
        """The smallest duration covering every input."""
        iterator = iter(durations)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot merge zero durations") from None
        start, end = first.start, first.end
        for d in iterator:
            start = min(start, d.start)
            end = max(end, d.end)
        return cls(start, end)

    # -- predicates -------------------------------------------------------------

    @property
    def is_instant(self) -> bool:
        """True when start == end."""
        return self.start == self.end

    @property
    def length(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start

    @property
    def center(self) -> float:
        """Per-dimension midpoint."""
        return (self.start + self.end) / 2.0

    def contains(self, t: float) -> bool:
        """True when the other box lies fully inside."""
        return self.start <= t <= self.end

    def contains_duration(self, other: "Duration") -> bool:
        """True when the other interval lies fully inside."""
        return self.start <= other.start and self.end >= other.end

    def intersects(self, other: "Duration") -> bool:
        """True when the two geometries share any point."""
        return not (other.start > self.end or other.end < self.start)

    def intersection(self, other: "Duration") -> "Duration | None":
        """Overlap interval, or None when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start > end:
            return None
        return Duration(start, end)

    def distance_to(self, other: "Duration") -> float:
        """Gap in seconds between the two intervals; 0 when they overlap."""
        if self.intersects(other):
            return 0.0
        return max(other.start - self.end, self.start - other.end)

    # -- manipulation -------------------------------------------------------------

    def merge(self, other: "Duration") -> "Duration":
        """Smallest object covering both operands."""
        return Duration(min(self.start, other.start), max(self.end, other.end))

    def shifted(self, seconds: float) -> "Duration":
        """Copy translated by ``seconds``."""
        return Duration(self.start + seconds, self.end + seconds)

    def expanded(self, margin: float) -> "Duration":
        """Copy grown by ``margin`` on both ends."""
        return Duration(self.start - margin, self.end + margin)

    def split(self, n: int) -> list["Duration"]:
        """Tile this duration into ``n`` equal consecutive slots."""
        if n <= 0:
            raise ValueError("slot count must be positive")
        step = self.length / n
        return [
            Duration(self.start + i * step, self.start + (i + 1) * step)
            for i in range(n)
        ]

    def hour_of_day(self) -> float:
        """Hour-of-day of the interval center, in ``[0, 24)``.

        Used by the anomaly extractor ("events occurring 23:00-04:00").
        """
        return (self.center % 86_400.0) / 3_600.0

    def day_index(self) -> int:
        """Whole days elapsed since the epoch at the interval center."""
        return int(self.center // 86_400.0)

    # -- value semantics ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Duration):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __lt__(self, other: "Duration") -> bool:
        return (self.start, self.end) < (other.start, other.end)

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        if self.is_instant:
            return f"Duration.instant({self.start})"
        return f"Duration({self.start}, {self.end})"

    def __getstate__(self):
        return (self.start, self.end)

    def __setstate__(self, state):
        object.__setattr__(self, "start", state[0])
        object.__setattr__(self, "end", state[1])
