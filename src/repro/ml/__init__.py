"""ML-facing output layer.

The paper's pipeline ends with "extracted feature outputs ... directed to
Spark-affiliated ML modules ... or channeled to external ML engines, like
TensorFlow and PyTorch, in standard JSON or CSV data formats"
(Section 3.3), and its motivating application consumes features as a
sequence of 2-d matrices ``[A^t0, A^t1, ...]`` (Section 2.1).

This package closes that loop:

* :mod:`repro.ml.tensors` — assemble numpy matrices/tensors from extracted
  rasters, spatial maps, and time series (including the ``[A^t]`` sequence
  of the traffic-forecast formulation) and build supervised
  sliding-window datasets from them;
* :mod:`repro.ml.export` — JSON / CSV feature channeling;
* :mod:`repro.ml.forecast` — a self-contained least-squares baseline
  forecaster (the "downstream model" stand-in) so examples and tests can
  demonstrate an end-to-end *STDML* workflow without external ML engines.
"""

from repro.ml.tensors import (
    raster_to_matrix_sequence,
    sliding_window_dataset,
    spatial_map_to_matrix,
    time_series_to_vector,
)
from repro.ml.export import features_to_csv, features_to_json
from repro.ml.forecast import RidgeForecaster, train_test_split_windows

__all__ = [
    "raster_to_matrix_sequence",
    "spatial_map_to_matrix",
    "time_series_to_vector",
    "sliding_window_dataset",
    "features_to_json",
    "features_to_csv",
    "RidgeForecaster",
    "train_test_split_windows",
]
