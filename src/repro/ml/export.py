"""Feature channeling to external ML engines (JSON / CSV).

Section 3.3: extracted features can be "channeled to external ML engines,
like TensorFlow and PyTorch, in standard JSON or CSV data formats".
These writers serialize a collective instance's cells with their ST
boundaries so the consumer needs no back-reference to the structure.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Callable

from repro.geometry.envelope import Envelope
from repro.instances.collective import CollectiveInstance


def _cell_rows(
    instance: CollectiveInstance,
    value_encoder: Callable[[Any], Any],
) -> list[dict]:
    rows = []
    for cell_id, entry in enumerate(instance.entries):
        env: Envelope = entry.spatial.envelope
        rows.append(
            {
                "cell": cell_id,
                "min_x": env.min_x,
                "min_y": env.min_y,
                "max_x": env.max_x,
                "max_y": env.max_y,
                "t_start": entry.temporal.start,
                "t_end": entry.temporal.end,
                "value": value_encoder(entry.value),
            }
        )
    return rows


def features_to_json(
    path: str | Path,
    instance: CollectiveInstance,
    value_encoder: Callable[[Any], Any] = lambda v: v,
) -> Path:
    """Write one JSON document: structure kind + per-cell features."""
    path = Path(path)
    payload = {
        "instance_type": type(instance).__name__,
        "n_cells": instance.n_cells,
        "data": repr(instance.data) if instance.data is not None else None,
        "cells": _cell_rows(instance, value_encoder),
    }
    path.write_text(json.dumps(payload, indent=1, default=str))
    return path


def features_to_csv(
    path: str | Path,
    instance: CollectiveInstance,
    value_encoder: Callable[[Any], Any] = lambda v: v,
) -> Path:
    """Write per-cell features as CSV (one row per cell)."""
    path = Path(path)
    rows = _cell_rows(instance, value_encoder)
    columns = ["cell", "min_x", "min_y", "max_x", "max_y", "t_start", "t_end", "value"]
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    return path


def load_features_json(path: str | Path) -> dict:
    """Read back a features JSON document (round-trip convenience)."""
    return json.loads(Path(path).read_text())
