"""A self-contained downstream forecaster.

The point of ST4ML is producing model-ready features; to demonstrate the
loop end to end without external ML engines, this module provides a ridge
(L2-regularized least-squares) forecaster over the sliding-window datasets
of :mod:`repro.ml.tensors`.  It is deliberately simple — the paper's
forecasting models (DCRNN et al.) are out of scope — but real enough to
show features carrying signal (tests assert it beats a naive baseline on
rhythmic synthetic traffic).
"""

from __future__ import annotations

from repro._deps import require_numpy

np = require_numpy("repro.ml.forecast")


class RidgeForecaster:
    """Least-squares linear forecaster with L2 regularization.

    Solves ``min ||XW - Y||^2 + alpha ||W||^2`` in closed form; handles
    multi-output targets (one column per forecast cell).
    """

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """True once fit() has run."""
        return self._weights is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeForecaster":
        """Fit the ridge weights in closed form; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y sample counts differ")
        x_mean = X.mean(axis=0)
        y_mean = y.mean(axis=0)
        xc = X - x_mean
        yc = y - y_mean
        gram = xc.T @ xc + self.alpha * np.eye(X.shape[1])
        self._weights = np.linalg.solve(gram, xc.T @ yc)
        self._bias = y_mean - x_mean @ self._weights
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``; requires fit()."""
        if not self.is_fitted:
            raise RuntimeError("forecaster is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return X @ self._weights + self._bias

    def score_rmse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Root-mean-square error on (X, y)."""
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        pred = self.predict(X)
        return float(np.sqrt(np.mean((pred - y) ** 2)))


def train_test_split_windows(
    X: np.ndarray, y: np.ndarray, train_fraction: float = 0.8
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chronological split (no shuffling — temporal data leaks otherwise)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    cut = max(1, int(X.shape[0] * train_fraction))
    if cut >= X.shape[0]:
        raise ValueError("not enough samples to split")
    return X[:cut], y[:cut], X[cut:], y[cut:]


def naive_last_value_rmse(X: np.ndarray, y: np.ndarray, feature_size: int) -> float:
    """RMSE of the persist-last-frame baseline, the standard yardstick."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim == 1:
        y = y[:, None]
    last_frame = X[:, -feature_size:]
    return float(np.sqrt(np.mean((last_frame - y) ** 2)))


def evaluate_forecast(y_true: np.ndarray, y_pred: np.ndarray) -> dict:
    """Standard forecast error metrics: RMSE, MAE, and MAPE.

    MAPE skips zero-valued targets (the conventional guard) and is
    reported as a percentage; all metrics are over the flattened arrays.
    """
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("prediction and target shapes differ")
    if y_true.size == 0:
        raise ValueError("cannot evaluate empty arrays")
    err = y_pred - y_true
    rmse = float(np.sqrt(np.mean(err**2)))
    mae = float(np.mean(np.abs(err)))
    nonzero = y_true != 0
    if nonzero.any():
        mape = float(np.mean(np.abs(err[nonzero] / y_true[nonzero])) * 100.0)
    else:
        mape = float("nan")
    return {"rmse": rmse, "mae": mae, "mape": mape}
