"""Feature tensors from extracted collective instances.

The traffic-forecast formulation of Section 2.1 consumes features as a
sequence of 2-d matrices ``[A^t0, A^t1, ...]`` where ``a_ij^t`` is a cell
feature at time ``t``.  These helpers reshape extracted rasters, spatial
maps, and time series into exactly that numpy layout, and build supervised
sliding-window datasets from the sequences.
"""

from __future__ import annotations

from typing import Callable

from repro._deps import require_numpy

np = require_numpy("repro.ml.tensors")

from repro.instances.raster import Raster
from repro.instances.spatialmap import SpatialMap
from repro.instances.timeseries import TimeSeries


def time_series_to_vector(
    ts: TimeSeries,
    value_of: Callable[[object], float] = float,
    fill: float = 0.0,
) -> np.ndarray:
    """1-d array of per-slot features; ``None`` cells become ``fill``."""
    return np.array(
        [fill if v is None else value_of(v) for v in ts.cell_values()],
        dtype=np.float64,
    )


def spatial_map_to_matrix(
    sm: SpatialMap,
    nx: int,
    ny: int,
    value_of: Callable[[object], float] = float,
    fill: float = 0.0,
) -> np.ndarray:
    """(ny, nx) matrix from a regular spatial map's row-major cells."""
    if sm.n_cells != nx * ny:
        raise ValueError(
            f"spatial map has {sm.n_cells} cells, expected {nx}x{ny}"
        )
    flat = [fill if v is None else value_of(v) for v in sm.cell_values()]
    return np.array(flat, dtype=np.float64).reshape(ny, nx)


def raster_to_matrix_sequence(
    raster: Raster,
    nx: int,
    ny: int,
    nt: int,
    value_of: Callable[[object], float] = float,
    fill: float = 0.0,
) -> np.ndarray:
    """The ``[A^t0, A^t1, ...]`` sequence: an (nt, ny, nx) tensor.

    Expects the cell layout of :meth:`Raster.regular` /
    :meth:`RasterStructure.regular`: spatial row-major outer, temporal
    inner.
    """
    if raster.n_cells != nx * ny * nt:
        raise ValueError(
            f"raster has {raster.n_cells} cells, expected {nx}x{ny}x{nt}"
        )
    tensor = np.full((nt, ny, nx), fill, dtype=np.float64)
    values = raster.cell_values()
    for row in range(ny):
        for col in range(nx):
            base = (row * nx + col) * nt
            for t in range(nt):
                v = values[base + t]
                if v is not None:
                    tensor[t, row, col] = value_of(v)
    return tensor


def sliding_window_dataset(
    sequence: np.ndarray,
    history: int,
    horizon: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Supervised pairs from a temporal sequence.

    ``sequence`` has time as its first axis.  Returns ``(X, y)`` with
    ``X[i] = sequence[i : i + history]`` (flattened per sample) and
    ``y[i] = sequence[i + history + horizon - 1]`` (flattened) — the
    standard next-step formulation of the paper's forecasting citations.
    """
    if history < 1 or horizon < 1:
        raise ValueError("history and horizon must be positive")
    n_samples = sequence.shape[0] - history - horizon + 1
    if n_samples <= 0:
        raise ValueError(
            f"sequence of length {sequence.shape[0]} too short for "
            f"history={history}, horizon={horizon}"
        )
    feature_size = int(np.prod(sequence.shape[1:])) if sequence.ndim > 1 else 1
    X = np.empty((n_samples, history * feature_size), dtype=np.float64)
    y = np.empty((n_samples, feature_size), dtype=np.float64)
    for i in range(n_samples):
        X[i] = sequence[i : i + history].reshape(-1)
        y[i] = sequence[i + history + horizon - 1].reshape(-1)
    return X, y
