"""Directed road network with segment geometry and shortest paths."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.geometry.distance import (
    METERS_PER_DEGREE_LAT,
    haversine_distance,
    meters_per_degree_lon,
    project_point_to_segment,
)
from repro.geometry.linestring import LineString
from repro.index.boxes import STBox
from repro.index.rtree import RTree


@dataclass(frozen=True)
class RoadSegment:
    """One directed road segment between two junction nodes.

    ``segment_id`` is stable and unique; geometry is the straight line
    between the endpoint coordinates (polyline segments can be modeled as
    chains of RoadSegments).
    """

    segment_id: int
    from_node: int
    to_node: int
    from_lon: float
    from_lat: float
    to_lon: float
    to_lat: float

    @property
    def length_meters(self) -> float:
        """Great-circle length in meters."""
        return haversine_distance(self.from_lon, self.from_lat, self.to_lon, self.to_lat)

    def linestring(self) -> LineString:
        """The segment as a LineString."""
        return LineString([(self.from_lon, self.from_lat), (self.to_lon, self.to_lat)])

    def project(self, lon: float, lat: float) -> tuple[float, float, float, float]:
        """Snap a point onto the segment.

        Returns ``(snap_lon, snap_lat, distance_meters, fraction)`` where
        ``fraction`` is the relative position along the segment.  The
        projection is computed in a locally-scaled planar frame so the
        meters distance is faithful at city scale.
        """
        scale_x = meters_per_degree_lon(lat)
        scale_y = METERS_PER_DEGREE_LAT
        qx, qy, t = project_point_to_segment(
            lon * scale_x,
            lat * scale_y,
            self.from_lon * scale_x,
            self.from_lat * scale_y,
            self.to_lon * scale_x,
            self.to_lat * scale_y,
        )
        snap_lon = qx / scale_x
        snap_lat = qy / scale_y
        dist = math.hypot(lon * scale_x - qx, lat * scale_y - qy)
        return (snap_lon, snap_lat, dist, t)


class RoadNetwork:
    """A directed road graph with an R-tree over segments.

    Construction from explicit segments or via :meth:`grid` (a synthetic
    Manhattan-style grid used by the Hangzhou case-study substitute).
    """

    def __init__(self, segments: list[RoadSegment]):
        if not segments:
            raise ValueError("a road network needs at least one segment")
        self.segments = list(segments)
        self._by_id = {s.segment_id: s for s in self.segments}
        if len(self._by_id) != len(self.segments):
            raise ValueError("duplicate segment ids")
        self._adjacency: dict[int, list[tuple[int, float, int]]] = {}
        for s in self.segments:
            self._adjacency.setdefault(s.from_node, []).append(
                (s.to_node, s.length_meters, s.segment_id)
            )
        self._rtree: RTree[int] | None = None

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def grid(
        cls,
        min_lon: float,
        min_lat: float,
        n_rows: int,
        n_cols: int,
        spacing_degrees: float = 0.005,
        bidirectional: bool = True,
    ) -> "RoadNetwork":
        """A rectangular grid network of ``n_rows x n_cols`` junctions."""
        if n_rows < 2 or n_cols < 2:
            raise ValueError("grid needs at least 2x2 junctions")

        def node_id(r: int, c: int) -> int:
            return r * n_cols + c

        def node_pos(r: int, c: int) -> tuple[float, float]:
            return (min_lon + c * spacing_degrees, min_lat + r * spacing_degrees)

        segments = []
        seg_id = 0
        for r in range(n_rows):
            for c in range(n_cols):
                lon, lat = node_pos(r, c)
                neighbors = []
                if c + 1 < n_cols:
                    neighbors.append((r, c + 1))
                if r + 1 < n_rows:
                    neighbors.append((r + 1, c))
                for nr, nc in neighbors:
                    nlon, nlat = node_pos(nr, nc)
                    segments.append(
                        RoadSegment(seg_id, node_id(r, c), node_id(nr, nc), lon, lat, nlon, nlat)
                    )
                    seg_id += 1
                    if bidirectional:
                        segments.append(
                            RoadSegment(seg_id, node_id(nr, nc), node_id(r, c), nlon, nlat, lon, lat)
                        )
                        seg_id += 1
        return cls(segments)

    # -- lookup ----------------------------------------------------------------------

    def segment(self, segment_id: int) -> RoadSegment:
        """Look a segment up by id."""
        return self._by_id[segment_id]

    @property
    def n_segments(self) -> int:
        """Number of directed segments."""
        return len(self.segments)

    def rtree(self) -> RTree[int]:
        """Lazily built 2-d R-tree over segment MBRs (broadcast by the
        map-matching conversion so it is built exactly once)."""
        if self._rtree is None:
            items = []
            for s in self.segments:
                env = s.linestring().envelope
                items.append(
                    (STBox((env.min_x, env.min_y), (env.max_x, env.max_y)), s.segment_id)
                )
            self._rtree = RTree.build(items)
        return self._rtree

    def candidate_segments(
        self, lon: float, lat: float, radius_meters: float, max_candidates: int = 8
    ) -> list[tuple[int, float]]:
        """Segments within ``radius_meters`` of a point, nearest first.

        Shortlisted with the R-tree (a box of the radius around the point),
        then exact-projected; capped at ``max_candidates``.
        """
        deg_x = radius_meters / max(1e-9, meters_per_degree_lon(lat))
        deg_y = radius_meters / METERS_PER_DEGREE_LAT
        box = STBox((lon - deg_x, lat - deg_y), (lon + deg_x, lat + deg_y))
        hits = []
        for seg_id in self.rtree().query(box):
            _, _, dist, _ = self._by_id[seg_id].project(lon, lat)
            if dist <= radius_meters:
                hits.append((seg_id, dist))
        hits.sort(key=lambda h: h[1])
        return hits[:max_candidates]

    # -- routing -----------------------------------------------------------------------

    def shortest_path_meters(self, from_node: int, to_node: int, cutoff_meters: float = math.inf) -> float:
        """Dijkstra distance between junctions; ``inf`` when unreachable
        or beyond ``cutoff_meters`` (the HMM transition uses a cutoff so
        unreachable candidate pairs prune early)."""
        if from_node == to_node:
            return 0.0
        dist = {from_node: 0.0}
        heap = [(0.0, from_node)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == to_node:
                return d
            if d > dist.get(node, math.inf) or d > cutoff_meters:
                continue
            for neighbor, weight, _ in self._adjacency.get(node, ()):
                nd = d + weight
                if nd < dist.get(neighbor, math.inf) and nd <= cutoff_meters:
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor))
        return math.inf

    def route_distance_meters(
        self,
        from_segment: int,
        from_fraction: float,
        to_segment: int,
        to_fraction: float,
        cutoff_meters: float = math.inf,
    ) -> float:
        """On-network driving distance between two snapped positions."""
        seg_a = self._by_id[from_segment]
        seg_b = self._by_id[to_segment]
        if from_segment == to_segment:
            return abs(to_fraction - from_fraction) * seg_a.length_meters
        remaining = (1.0 - from_fraction) * seg_a.length_meters
        lead_in = to_fraction * seg_b.length_meters
        between = self.shortest_path_meters(
            seg_a.to_node, seg_b.from_node, cutoff_meters
        )
        return remaining + between + lead_in
