"""Calibration conversions built on map matching.

These complete the singular→singular conversion set of Section 3.2.2:

* trajectory→trajectory — HMM map matching, run in parallel with the road
  network (and its segment R-tree) broadcast once to all executors;
* event→event — snap each event to its nearest road segment.
"""

from __future__ import annotations

from repro.engine.rdd import RDD
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory
from repro.mapmatching.hmm import HmmMapMatcher
from repro.mapmatching.road_network import RoadNetwork


class Traj2TrajMapMatchConverter:
    """Calibrate raw trajectories onto the road network.

    Output trajectories have entry points on road segments and entry
    values carrying the matched segment id; trajectories with no matched
    points are dropped (sensing noise beyond recovery).
    """

    def __init__(self, network: RoadNetwork, **matcher_kwargs):
        self.network = network
        self.matcher_kwargs = matcher_kwargs

    def convert(self, rdd: RDD) -> RDD:
        # Build the segment index once, then broadcast network + index.
        """Apply this conversion to the RDD (see class docstring)."""
        self.network.rtree()
        broadcast = rdd.ctx.broadcast(
            self.network, record_count=self.network.n_segments
        )
        kwargs = self.matcher_kwargs

        def match_partition(partition: list) -> list:
            matcher = HmmMapMatcher(broadcast.value, **kwargs)
            out = []
            for traj in partition:
                if not isinstance(traj, Trajectory):
                    raise TypeError("map matching expects trajectories")
                matched = matcher.match_to_trajectory(traj)
                if matched is not None:
                    out.append(matched)
            return out

        return rdd.map_partitions(match_partition)


class Event2EventConverter:
    """Project each event onto its nearest road segment.

    Events farther than ``search_radius_meters`` from any segment are kept
    unmodified (calibration should not invent positions); set
    ``drop_unmatched=True`` to discard them instead.
    """

    def __init__(
        self,
        network: RoadNetwork,
        search_radius_meters: float = 150.0,
        drop_unmatched: bool = False,
    ):
        self.network = network
        self.search_radius_meters = search_radius_meters
        self.drop_unmatched = drop_unmatched

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        self.network.rtree()
        broadcast = rdd.ctx.broadcast(
            self.network, record_count=self.network.n_segments
        )
        radius = self.search_radius_meters
        drop = self.drop_unmatched

        def snap_partition(partition: list) -> list:
            network = broadcast.value
            out = []
            for ev in partition:
                if not isinstance(ev, Event):
                    raise TypeError("event calibration expects events")
                candidates = network.candidate_segments(
                    ev.spatial.x, ev.spatial.y, radius, max_candidates=1
                )
                if not candidates:
                    if not drop:
                        out.append(ev)
                    continue
                seg_id, _ = candidates[0]
                snap_lon, snap_lat, _, _ = network.segment(seg_id).project(
                    ev.spatial.x, ev.spatial.y
                )
                out.append(
                    Event.of_point(
                        snap_lon, snap_lat, ev.temporal.start, value=seg_id, data=ev.data
                    )
                )
            return out

        return rdd.map_partitions(snap_partition)
