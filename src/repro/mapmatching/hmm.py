"""Hidden Markov Model map matching — Newson & Krumm (2009).

The model: hidden states are candidate road segments per GPS sample;

* **emission** — GPS noise is zero-mean Gaussian, so the probability of
  observing a sample at distance ``d`` from its true segment is
  ``N(0, sigma)`` evaluated at ``d``;
* **transition** — the difference between on-road route distance and
  great-circle distance of consecutive samples is exponentially
  distributed with scale ``beta`` (detours are unlikely);
* Viterbi decoding finds the maximum-likelihood segment sequence, with a
  restart when no candidate connects (gap in the network or the data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.distance import haversine_distance
from repro.instances.trajectory import Trajectory, TrajectoryPoint
from repro.mapmatching.road_network import RoadNetwork


@dataclass(frozen=True)
class MatchedPoint:
    """One map-matched sample: snapped position + matched segment."""

    lon: float
    lat: float
    t: float
    segment_id: int
    fraction: float
    original_lon: float
    original_lat: float
    snap_distance_meters: float


@dataclass(frozen=True)
class _Candidate:
    segment_id: int
    lon: float
    lat: float
    distance: float
    fraction: float


class HmmMapMatcher:
    """Newson-Krumm map matcher over a :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        The road graph (its segment R-tree accelerates candidate search).
    sigma_meters:
        GPS noise standard deviation (emission model).
    beta_meters:
        Scale of the route-vs-great-circle discrepancy (transition model).
    search_radius_meters:
        Candidate shortlist radius per sample.
    max_candidates:
        Candidates retained per sample after exact projection.
    """

    def __init__(
        self,
        network: RoadNetwork,
        sigma_meters: float = 20.0,
        beta_meters: float = 200.0,
        search_radius_meters: float = 150.0,
        max_candidates: int = 8,
    ):
        if sigma_meters <= 0 or beta_meters <= 0 or search_radius_meters <= 0:
            raise ValueError("model parameters must be positive")
        self.network = network
        self.sigma = sigma_meters
        self.beta = beta_meters
        self.search_radius = search_radius_meters
        self.max_candidates = max_candidates

    # -- model terms (log space) -----------------------------------------------

    def _log_emission(self, snap_distance: float) -> float:
        return -0.5 * (snap_distance / self.sigma) ** 2

    def _log_transition(self, route_dist: float, straight_dist: float) -> float:
        if math.isinf(route_dist):
            return -math.inf
        return -abs(route_dist - straight_dist) / self.beta

    # -- candidate generation ------------------------------------------------------

    def _candidates(self, lon: float, lat: float) -> list[_Candidate]:
        out = []
        for seg_id, _ in self.network.candidate_segments(
            lon, lat, self.search_radius, self.max_candidates
        ):
            snap_lon, snap_lat, dist, frac = self.network.segment(seg_id).project(
                lon, lat
            )
            out.append(_Candidate(seg_id, snap_lon, snap_lat, dist, frac))
        return out

    # -- matching ----------------------------------------------------------------------

    def match(self, trajectory: Trajectory) -> list[MatchedPoint]:
        """Viterbi-decode the trajectory; unmatched samples are dropped.

        When consecutive samples have no connected candidates (route
        distance infinite for every pair), the chain restarts — standard
        practice for sparse or gappy traces like the camera-derived
        trajectories of the Section 6 case study.
        """
        points = trajectory.points()
        if not points:
            return []
        matched: list[MatchedPoint] = []
        chain_points: list[TrajectoryPoint] = []
        chain_candidates: list[list[_Candidate]] = []

        def flush() -> None:
            if chain_points:
                matched.extend(self._viterbi(chain_points, chain_candidates))
            chain_points.clear()
            chain_candidates.clear()

        for p in points:
            candidates = self._candidates(p.lon, p.lat)
            if not candidates:
                flush()
                continue
            if chain_points:
                # Restart the chain when nothing connects to the new sample.
                if not self._any_connection(
                    chain_points[-1], chain_candidates[-1], p, candidates
                ):
                    flush()
            chain_points.append(p)
            chain_candidates.append(candidates)
        flush()
        return matched

    def match_to_trajectory(self, trajectory: Trajectory) -> Trajectory | None:
        """Matched result as a calibrated trajectory (entry values are the
        matched segment ids); ``None`` when nothing matched."""
        matched = self.match(trajectory)
        if not matched:
            return None
        return Trajectory.of_points(
            [(m.lon, m.lat, m.t, m.segment_id) for m in matched],
            data=trajectory.data,
        )

    def _route_cutoff(self, straight_dist: float) -> float:
        # Routes wildly longer than the straight line carry negligible
        # probability; cutting Dijkstra there bounds the per-pair cost.
        return straight_dist + 10.0 * self.beta

    def _any_connection(
        self,
        prev_point: TrajectoryPoint,
        prev_candidates: list[_Candidate],
        point: TrajectoryPoint,
        candidates: list[_Candidate],
    ) -> bool:
        straight = haversine_distance(prev_point.lon, prev_point.lat, point.lon, point.lat)
        cutoff = self._route_cutoff(straight)
        for a in prev_candidates:
            for b in candidates:
                route = self.network.route_distance_meters(
                    a.segment_id, a.fraction, b.segment_id, b.fraction, cutoff
                )
                if not math.isinf(route):
                    return True
        return False

    def _viterbi(
        self,
        points: list[TrajectoryPoint],
        candidates_per_point: list[list[_Candidate]],
    ) -> list[MatchedPoint]:
        # scores[i][j]: best log-likelihood ending at candidate j of point i.
        scores = [[self._log_emission(c.distance) for c in candidates_per_point[0]]]
        back: list[list[int]] = [[-1] * len(candidates_per_point[0])]
        for i in range(1, len(points)):
            straight = haversine_distance(
                points[i - 1].lon, points[i - 1].lat, points[i].lon, points[i].lat
            )
            cutoff = self._route_cutoff(straight)
            row_scores = []
            row_back = []
            for b in candidates_per_point[i]:
                best_score = -math.inf
                best_prev = -1
                for j, a in enumerate(candidates_per_point[i - 1]):
                    if math.isinf(scores[i - 1][j]):
                        continue
                    route = self.network.route_distance_meters(
                        a.segment_id, a.fraction, b.segment_id, b.fraction, cutoff
                    )
                    candidate_score = scores[i - 1][j] + self._log_transition(
                        route, straight
                    )
                    if candidate_score > best_score:
                        best_score = candidate_score
                        best_prev = j
                row_scores.append(best_score + self._log_emission(b.distance))
                row_back.append(best_prev)
            scores.append(row_scores)
            back.append(row_back)
        # Backtrack from the best final candidate.
        last = max(range(len(scores[-1])), key=lambda j: scores[-1][j])
        path = [last]
        for i in range(len(points) - 1, 0, -1):
            last = back[i][last]
            if last < 0:
                # Disconnected despite the restart guard (numerical corner);
                # fall back to the locally best candidate.
                last = max(
                    range(len(scores[i - 1])), key=lambda j: scores[i - 1][j]
                )
            path.append(last)
        path.reverse()
        out = []
        for p, candidate_list, idx in zip(points, candidates_per_point, path):
            c = candidate_list[idx]
            out.append(
                MatchedPoint(
                    lon=c.lon,
                    lat=c.lat,
                    t=p.t,
                    segment_id=c.segment_id,
                    fraction=c.fraction,
                    original_lon=p.lon,
                    original_lat=p.lat,
                    snap_distance_meters=c.distance,
                )
            )
        return out
