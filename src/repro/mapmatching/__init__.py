"""Road networks and HMM map matching (paper Section 3.2.2).

ST4ML's trajectory→trajectory calibration conversion runs the Hidden
Markov Model map matching of Newson & Krumm (2009): GPS points are snapped
to candidate road segments (shortlisted with an R-tree over segments,
broadcast to every executor), and Viterbi decoding picks the most likely
segment sequence given Gaussian emission noise and route-length-consistent
transitions.

* :class:`RoadNetwork` — directed road graph with segment geometry, an
  R-tree over segments, and Dijkstra shortest paths;
* :class:`HmmMapMatcher` — the Newson-Krumm matcher;
* :class:`Traj2TrajMapMatchConverter` / :class:`Event2EventConverter` —
  the calibration conversions built on top.
"""

from repro.mapmatching.road_network import RoadNetwork, RoadSegment
from repro.mapmatching.hmm import HmmMapMatcher, MatchedPoint
from repro.mapmatching.converters import (
    Event2EventConverter,
    Traj2TrajMapMatchConverter,
)

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "HmmMapMatcher",
    "MatchedPoint",
    "Traj2TrajMapMatchConverter",
    "Event2EventConverter",
]
