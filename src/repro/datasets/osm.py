"""OSM-like POIs and postal-code areas.

The real dataset: 147M points of interest with string attributes and 219k
postal-code polygons, worldwide, no temporal information.  The generator
produces POIs (point events at the epoch instant — mirroring how a dataset
without time is represented) and irregular postal-area polygons built by
jittering a grid (cells vary in size and shape, the irregular-structure
case of Section 4.2).
"""

from __future__ import annotations

import random

from repro.datasets.common import BBox, HotspotMixture
from repro.geometry.polygon import Polygon
from repro.instances.event import Event

#: A country-scale box (continental Europe-ish) for the synthetic POIs.
OSM_BBOX = BBox(2.0, 45.0, 12.0, 52.0)

_POI_TYPES = (
    "restaurant",
    "cafe",
    "school",
    "hospital",
    "shop",
    "bank",
    "park",
    "fuel",
)


def generate_osm_pois(
    n: int,
    seed: int = 17,
    bbox: BBox = OSM_BBOX,
    n_hotspots: int = 12,
) -> list[Event]:
    """``n`` POI events: instant 0, ``value`` the attribute dict
    (including ``type``), ``data`` the POI id."""
    if n < 0:
        raise ValueError("record count must be non-negative")
    rng = random.Random(seed)
    mixture = HotspotMixture(bbox, n_hotspots, rng, spread_fraction=0.03)
    pois = []
    for i in range(n):
        lon, lat = mixture.sample(rng)
        attrs = {
            "type": _POI_TYPES[rng.randrange(len(_POI_TYPES))],
            "name": f"poi-{i}",
        }
        pois.append(Event.of_point(lon, lat, 0.0, value=attrs, data=i))
    return pois


def generate_osm_areas(
    nx: int,
    ny: int,
    seed: int = 17,
    bbox: BBox = OSM_BBOX,
    jitter_fraction: float = 0.3,
) -> list[Polygon]:
    """``nx * ny`` irregular postal-area polygons.

    Built by jittering the interior junctions of a regular grid: the
    resulting quadrilaterals still tile the box (no gaps — every POI falls
    in some area) but have unequal sizes and non-rectangular shapes, so
    conversions must use the R-tree path, as with real postal polygons.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    rng = random.Random(seed)
    dx = bbox.width / nx
    dy = bbox.height / ny
    # Jittered junction lattice; border junctions stay fixed.
    junctions = {}
    for j in range(ny + 1):
        for i in range(nx + 1):
            x = bbox.min_lon + i * dx
            y = bbox.min_lat + j * dy
            if 0 < i < nx:
                x += rng.uniform(-jitter_fraction, jitter_fraction) * dx
            if 0 < j < ny:
                y += rng.uniform(-jitter_fraction, jitter_fraction) * dy
            junctions[(i, j)] = (x, y)
    areas = []
    for j in range(ny):
        for i in range(nx):
            areas.append(
                Polygon(
                    [
                        junctions[(i, j)],
                        junctions[(i + 1, j)],
                        junctions[(i + 1, j + 1)],
                        junctions[(i, j + 1)],
                    ]
                )
            )
    return areas
