"""Air-quality-record generator + the paper's enlargement protocol.

The real dataset: 2,891,393 hourly records from 437 stations in China
(2014-05 to 2015-04); each record carries location, time, and six air
quality indices.  The paper enlarges it by replicating stations 20× with
σ = 500 m Gaussian noise and interpolating records down to a 5-minute
interval; :func:`enlarge_air` follows that protocol.
"""

from __future__ import annotations

import math
import random

from repro.datasets.common import BBox, EPOCH_2013, meters_to_degrees
from repro.instances.event import Event

AIR_BBOX = BBox(115.0, 29.0, 122.0, 41.0)

#: 2014-05-01 00:00 UTC, the collection start.
AIR_START = EPOCH_2013 + 485 * 86_400.0

#: The six indices of the original feed.
AQI_FIELDS = ("pm25", "pm10", "no2", "co", "o3", "so2")


def _station_positions(n_stations: int, rng: random.Random) -> list[tuple[float, float]]:
    return [
        (
            rng.uniform(AIR_BBOX.min_lon, AIR_BBOX.max_lon),
            rng.uniform(AIR_BBOX.min_lat, AIR_BBOX.max_lat),
        )
        for _ in range(n_stations)
    ]


def _indices_at(station: int, t: float, rng: random.Random) -> dict[str, float]:
    """Six AQI values with a daily cycle + station offset + noise."""
    day_phase = math.sin(2.0 * math.pi * (t % 86_400.0) / 86_400.0)
    base = 60.0 + 15.0 * day_phase + (station % 7) * 5.0
    values = {}
    for k, field in enumerate(AQI_FIELDS):
        values[field] = max(0.0, base * (0.4 + 0.2 * k) + rng.gauss(0.0, 8.0))
    return values


def generate_air_records(
    n_stations: int = 40,
    hours: int = 72,
    seed: int = 17,
    interval_seconds: float = 3600.0,
    start: float = AIR_START,
) -> list[Event]:
    """Station-periodic air-quality events: ``value`` is the AQI dict,
    ``data`` the station id."""
    if n_stations < 1 or hours < 1:
        raise ValueError("need at least one station and one hour")
    rng = random.Random(seed)
    stations = _station_positions(n_stations, rng)
    records = []
    steps = int(hours * 3600.0 / interval_seconds)
    for station_id, (lon, lat) in enumerate(stations):
        for step in range(steps):
            t = start + step * interval_seconds
            records.append(
                Event.of_point(
                    lon,
                    lat,
                    t,
                    value=_indices_at(station_id, t, rng),
                    data=station_id,
                )
            )
    return records


def enlarge_air(
    records: list[Event],
    station_factor: int = 20,
    target_interval_seconds: float = 300.0,
    seed: int = 17,
    sigma_meters: float = 500.0,
) -> list[Event]:
    """The paper's Air enlargement: replicate stations ``station_factor``×
    with σ = 500 m positional noise, and linearly interpolate each
    station's series down to ``target_interval_seconds``."""
    if station_factor < 1:
        raise ValueError("station factor must be at least 1")
    rng = random.Random(seed)
    by_station: dict = {}
    for ev in records:
        by_station.setdefault(ev.data, []).append(ev)
    out: list[Event] = []
    for station_id, series in by_station.items():
        series.sort(key=lambda ev: ev.temporal.start)
        for copy in range(station_factor):
            if copy == 0:
                d_lon = d_lat = 0.0
            else:
                unit_lon, unit_lat = meters_to_degrees(1.0, series[0].spatial.y)
                d_lon = rng.gauss(0.0, sigma_meters) * unit_lon
                d_lat = rng.gauss(0.0, sigma_meters) * unit_lat
            new_id = (station_id, copy)
            out.extend(_interpolated(series, d_lon, d_lat, target_interval_seconds, new_id))
    return out


def _interpolated(
    series: list[Event],
    d_lon: float,
    d_lat: float,
    interval: float,
    station_id,
) -> list[Event]:
    """Resample one station's series to ``interval``, linear in each index."""
    out = []
    for a, b in zip(series, series[1:]):
        t = a.temporal.start
        t_end = b.temporal.start
        while t < t_end:
            frac = (t - a.temporal.start) / (t_end - a.temporal.start)
            values = {
                field: a.value[field] + frac * (b.value[field] - a.value[field])
                for field in a.value
            }
            out.append(
                Event.of_point(
                    a.spatial.x + d_lon,
                    a.spatial.y + d_lat,
                    t,
                    value=values,
                    data=station_id,
                )
            )
            t += interval
    last = series[-1]
    out.append(
        Event.of_point(
            last.spatial.x + d_lon,
            last.spatial.y + d_lat,
            last.temporal.start,
            value=dict(last.value),
            data=station_id,
        )
    )
    return out
