"""Hangzhou-case-study substitute: camera-derived vehicle trajectories.

The Section 6 case studies use proprietary trajectories assembled from
traffic-camera plate recognitions in Hangzhou: sparse (avg 9.03 points per
trajectory), long-interval (~27 min span), and road-bound.  This generator
reproduces those statistics on a synthetic grid road network:

* cameras sit at a subset of junctions;
* vehicles drive random routes along roads at urban speeds;
* a trajectory's points are only the camera passings (plus plate id) —
  so downstream map matching and flow inference face the same sparsity
  the paper describes ("long intervals between location samples, which
  incur high computation intensity in map matching").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.instances.trajectory import Trajectory
from repro.mapmatching.road_network import RoadNetwork

#: Hangzhou city-center anchor for the synthetic grid.
HANGZHOU_ANCHOR = (120.12, 30.25)


@dataclass
class HangzhouCase:
    """Everything the case-study benchmarks need, bundled."""

    network: RoadNetwork
    trajectories: list[Trajectory]
    camera_nodes: list[int]


def generate_hangzhou_case(
    n_vehicles: int,
    seed: int = 17,
    grid_rows: int = 12,
    grid_cols: int = 12,
    camera_fraction: float = 0.5,
    mean_route_hops: int = 18,
    speed_kmh: float = 35.0,
    day_start: float = 0.0,
) -> HangzhouCase:
    """Synthesize the road network, cameras, and vehicle trajectories.

    Each vehicle drives a random route of roughly ``mean_route_hops`` road
    hops; only junctions with cameras record a (noisy) observation.  With
    the defaults ~half the junctions are instrumented, matching the
    partial-coverage challenge of the flow-inference case study.
    """
    rng = random.Random(seed)
    network = RoadNetwork.grid(
        HANGZHOU_ANCHOR[0], HANGZHOU_ANCHOR[1], grid_rows, grid_cols,
        spacing_degrees=0.006,
    )
    n_nodes = grid_rows * grid_cols
    camera_nodes = sorted(
        rng.sample(range(n_nodes), max(1, int(n_nodes * camera_fraction)))
    )
    camera_set = set(camera_nodes)
    node_pos = {}
    for seg in network.segments:
        node_pos[seg.from_node] = (seg.from_lon, seg.from_lat)
        node_pos[seg.to_node] = (seg.to_lon, seg.to_lat)
    adjacency: dict[int, list[int]] = {}
    for seg in network.segments:
        adjacency.setdefault(seg.from_node, []).append(seg.to_node)

    trajectories = []
    for vehicle in range(n_vehicles):
        node = rng.randrange(n_nodes)
        t = day_start + rng.uniform(5 * 3600.0, 22 * 3600.0)
        hops = max(4, int(rng.gauss(mean_route_hops, mean_route_hops * 0.3)))
        observations = []
        prev = None
        for _ in range(hops):
            if node in camera_set:
                lon, lat = node_pos[node]
                observations.append(
                    (
                        lon + rng.gauss(0.0, 0.00005),
                        lat + rng.gauss(0.0, 0.00005),
                        t,
                    )
                )
            neighbors = [nb for nb in adjacency.get(node, []) if nb != prev]
            if not neighbors:
                neighbors = adjacency.get(node, [])
                if not neighbors:
                    break
            prev, node = node, rng.choice(neighbors)
            # Hop travel time at urban speed over one grid edge (~600 m).
            hop_meters = 0.006 * 111_000.0
            t += hop_meters / (speed_kmh / 3.6) * max(0.3, rng.gauss(1.0, 0.25))
        if len(observations) >= 2:
            trajectories.append(
                Trajectory.of_points(observations, data=f"plate-{vehicle:06d}")
            )
    return HangzhouCase(network, trajectories, camera_nodes)
