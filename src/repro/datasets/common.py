"""Shared generator machinery."""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Unix epoch seconds of 2013-01-01 00:00:00 UTC — the evaluation year of
#: the NYC dataset and the start of the Porto collection window.
EPOCH_2013 = 1356998400.0

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


@dataclass(frozen=True)
class BBox:
    """A lon/lat bounding box for a generator's city."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_lat - self.min_lat

    def to_envelope(self):
        """The bbox as a geometry Envelope."""
        from repro.geometry.envelope import Envelope

        return Envelope(self.min_lon, self.min_lat, self.max_lon, self.max_lat)


class HotspotMixture:
    """Spatial mixture: Gaussian hotspots over a uniform background.

    Real urban activity concentrates around a handful of centers; the
    paper's pruning and balance results all depend on this skew (uniform
    data would make every partitioner look equally good).
    """

    def __init__(
        self,
        bbox: BBox,
        n_hotspots: int,
        rng: random.Random,
        hotspot_weight: float = 0.75,
        spread_fraction: float = 0.06,
    ):
        self.bbox = bbox
        self.hotspot_weight = hotspot_weight
        self.spread_lon = bbox.width * spread_fraction
        self.spread_lat = bbox.height * spread_fraction
        self.centers = [
            (
                rng.uniform(bbox.min_lon + self.spread_lon, bbox.max_lon - self.spread_lon),
                rng.uniform(bbox.min_lat + self.spread_lat, bbox.max_lat - self.spread_lat),
            )
            for _ in range(n_hotspots)
        ]

    def sample(self, rng: random.Random) -> tuple[float, float]:
        """Draw one (lon, lat) from the mixture."""
        if rng.random() < self.hotspot_weight:
            cx, cy = rng.choice(self.centers)
            lon = _clamp(rng.gauss(cx, self.spread_lon), self.bbox.min_lon, self.bbox.max_lon)
            lat = _clamp(rng.gauss(cy, self.spread_lat), self.bbox.min_lat, self.bbox.max_lat)
            return (lon, lat)
        return (
            rng.uniform(self.bbox.min_lon, self.bbox.max_lon),
            rng.uniform(self.bbox.min_lat, self.bbox.max_lat),
        )


#: Relative activity per hour of day, a two-peak urban rhythm (morning and
#: evening rush); night hours are ~10% of peak, which the anomaly
#: application's 23:00-04:00 window relies on.
HOURLY_ACTIVITY = [
    0.15, 0.10, 0.08, 0.08, 0.10, 0.20,  # 0-5
    0.45, 0.80, 1.00, 0.85, 0.70, 0.70,  # 6-11
    0.75, 0.70, 0.65, 0.70, 0.80, 0.95,  # 12-17
    1.00, 0.90, 0.70, 0.55, 0.40, 0.25,  # 18-23
]


def sample_daytime(rng: random.Random) -> float:
    """Seconds-within-day sampled from the urban activity rhythm."""
    weights = HOURLY_ACTIVITY
    hour = rng.choices(range(24), weights=weights)[0]
    return hour * SECONDS_PER_HOUR + rng.uniform(0.0, SECONDS_PER_HOUR)


def sample_timestamp(rng: random.Random, start: float, days: int) -> float:
    """A timestamp within ``days`` from ``start`` following the rhythm."""
    day = rng.randrange(days)
    return start + day * SECONDS_PER_DAY + sample_daytime(rng)


def meters_to_degrees(meters: float, lat: float) -> tuple[float, float]:
    """(d_lon, d_lat) spanning ``meters`` at the given latitude."""
    from repro.geometry.distance import METERS_PER_DEGREE_LAT, meters_per_degree_lon

    return (meters / max(1e-9, meters_per_degree_lon(lat)), meters / METERS_PER_DEGREE_LAT)


def _clamp(v: float, lo: float, hi: float) -> float:
    return min(max(v, lo), hi)
