"""Porto-taxi-like trajectory generator + the paper's enlargement protocol.

The real dataset: 1,674,160 taxi trajectories from Porto (2013-07 to
2014-06), fields ``[tripId, Array((lon, lat)), startTime]``, sampled every
15 s.  The paper enlarges it 20× by duplication with Gaussian noise
(σs = 20 m, σt = 2 min); :func:`enlarge_trajectories` implements exactly
that protocol.
"""

from __future__ import annotations

import math
import random

from repro.datasets.common import (
    BBox,
    EPOCH_2013,
    HotspotMixture,
    meters_to_degrees,
    sample_timestamp,
)
from repro.instances.trajectory import Trajectory

PORTO_BBOX = BBox(-8.70, 41.10, -8.50, 41.25)

#: Porto collection started 2013-07-01.
PORTO_START = EPOCH_2013 + 181 * 86_400.0

#: The real feed's sampling interval.
SAMPLING_INTERVAL_S = 15.0


def generate_porto_trajectories(
    n: int,
    seed: int = 17,
    days: int = 365,
    min_points: int = 8,
    max_points: int = 60,
    mean_speed_kmh: float = 30.0,
    start: float = PORTO_START,
) -> list[Trajectory]:
    """``n`` taxi-like trajectories with momentum random-walk motion.

    Trips start at hotspot-mixture origins, move with a heading that
    drifts slowly (vehicles don't teleport), and sample every 15 s like
    the original feed.  ``data`` is the trip id string.
    """
    if n < 0:
        raise ValueError("record count must be non-negative")
    rng = random.Random(seed)
    mixture = HotspotMixture(PORTO_BBOX, 5, rng)
    trajectories = []
    step_meters = mean_speed_kmh / 3.6 * SAMPLING_INTERVAL_S
    for i in range(n):
        lon, lat = mixture.sample(rng)
        t = sample_timestamp(rng, start, days)
        heading = rng.uniform(0.0, 2.0 * math.pi)
        n_points = rng.randint(min_points, max_points)
        points = []
        for _ in range(n_points):
            points.append((lon, lat, t))
            heading += rng.gauss(0.0, 0.35)
            speed_scale = max(0.1, rng.gauss(1.0, 0.3))
            d_lon, d_lat = meters_to_degrees(step_meters * speed_scale, lat)
            lon += math.cos(heading) * d_lon
            lat += math.sin(heading) * d_lat
            lon = min(max(lon, PORTO_BBOX.min_lon), PORTO_BBOX.max_lon)
            lat = min(max(lat, PORTO_BBOX.min_lat), PORTO_BBOX.max_lat)
            t += SAMPLING_INTERVAL_S
        trajectories.append(Trajectory.of_points(points, data=f"trip-{i}"))
    return trajectories


def enlarge_trajectories(
    trajectories: list[Trajectory],
    factor: int,
    seed: int = 17,
    sigma_s_meters: float = 20.0,
    sigma_t_seconds: float = 120.0,
) -> list[Trajectory]:
    """The paper's Porto enlargement: duplicate ``factor`` times with
    Gaussian spatial noise (σ = 20 m) and temporal noise (σ = 2 min).

    The original trajectories are included as copy 0; each duplicate
    shifts the whole trip by one temporal offset and each point by its own
    spatial noise, preserving point order.
    """
    if factor < 1:
        raise ValueError("enlargement factor must be at least 1")
    rng = random.Random(seed)
    enlarged = list(trajectories)
    for copy in range(1, factor):
        for traj in trajectories:
            dt = rng.gauss(0.0, sigma_t_seconds)
            points = []
            for p in traj.points():
                d_lon, d_lat = meters_to_degrees(1.0, p.lat)
                points.append(
                    (
                        p.lon + rng.gauss(0.0, sigma_s_meters) * d_lon,
                        p.lat + rng.gauss(0.0, sigma_s_meters) * d_lat,
                        p.t + dt,
                        p.value,
                    )
                )
            enlarged.append(
                Trajectory.of_points(points, data=f"{traj.data}-dup{copy}")
            )
    return enlarged
