"""Synthetic dataset generators standing in for the paper's datasets.

The paper evaluates on four public datasets (NYC taxi events, Porto taxi
trajectories, China air-quality records, OSM POIs + postal areas) and one
proprietary one (Hangzhou camera-derived trajectories).  At laptop scale
we regenerate each with a seeded synthetic generator that preserves the
properties the evaluation depends on:

* the *schemas* (field-for-field);
* spatial skew (hotspot mixtures — real urban data is far from uniform,
  which drives the partition-balance and pruning results);
* temporal rhythm (daily cycles; night hours sparse — the anomaly
  application needs this);
* the paper's own *enlargement protocols* (Porto ×20 with σs=20 m,
  σt=2 min Gaussian noise; Air stations ×20 with σ=500 m plus 5-minute
  interpolation) implemented verbatim so the benchmarks can sweep scale
  the same way.

Every generator takes an explicit ``seed`` and record budget, so
experiments are reproducible and scalable.
"""

from repro.datasets.nyc import NYC_BBOX, generate_nyc_events
from repro.datasets.porto import (
    PORTO_BBOX,
    enlarge_trajectories,
    generate_porto_trajectories,
)
from repro.datasets.air import AIR_BBOX, enlarge_air, generate_air_records
from repro.datasets.osm import generate_osm_areas, generate_osm_pois
from repro.datasets.hangzhou import generate_hangzhou_case

__all__ = [
    "NYC_BBOX",
    "generate_nyc_events",
    "PORTO_BBOX",
    "generate_porto_trajectories",
    "enlarge_trajectories",
    "AIR_BBOX",
    "generate_air_records",
    "enlarge_air",
    "generate_osm_pois",
    "generate_osm_areas",
    "generate_hangzhou_case",
]
