"""NYC-taxi-like event generator.

The real dataset: 337,865,116 pick-up/drop-off events from New York, 2013,
with fields ``[lon, lat, time, auxInfo]``.  The generator emits events
with the same schema over the NYC bounding box, a Manhattan-heavy hotspot
mixture, and the daily activity rhythm.
"""

from __future__ import annotations

import random

from repro.datasets.common import (
    BBox,
    EPOCH_2013,
    HotspotMixture,
    sample_timestamp,
)
from repro.instances.event import Event

NYC_BBOX = BBox(-74.05, 40.60, -73.75, 40.90)

#: auxInfo values mirroring the real feed's event kinds.
_AUX_KINDS = ("pickup", "dropoff")


def generate_nyc_events(
    n: int,
    seed: int = 17,
    days: int = 365,
    n_hotspots: int = 6,
    start: float = EPOCH_2013,
) -> list[Event]:
    """``n`` point-at-instant events with ``data = (event_id, auxInfo)``."""
    if n < 0:
        raise ValueError("record count must be non-negative")
    rng = random.Random(seed)
    mixture = HotspotMixture(NYC_BBOX, n_hotspots, rng)
    events = []
    for i in range(n):
        lon, lat = mixture.sample(rng)
        t = sample_timestamp(rng, start, days)
        aux = _AUX_KINDS[rng.randrange(len(_AUX_KINDS))]
        events.append(Event.of_point(lon, lat, t, value=aux, data=i))
    return events
