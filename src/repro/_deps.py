"""Optional-dependency guards with actionable errors.

numpy is a declared install dependency (``pyproject.toml``), but the core
pipeline deliberately runs without it — the columnar kernels and the
:mod:`repro.ml` helpers are the only consumers.  Modules that hard-require
numpy import it through :func:`require_numpy` so a missing install fails
with a message naming the feature and the fix instead of a bare
``ModuleNotFoundError: numpy`` deep inside a stage closure.
"""

from __future__ import annotations


def has_numpy() -> bool:
    """True when numpy is importable (gates the columnar fast path)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy(feature: str):
    """Import and return numpy, or raise naming the feature that needs it."""
    try:
        import numpy
    except ImportError as exc:
        raise ModuleNotFoundError(
            f"{feature} requires numpy, which is not installed. numpy is a "
            "declared dependency of this package (pyproject.toml: "
            "numpy>=1.24) — install the package with `pip install -e .` or "
            "run `pip install 'numpy>=1.24'`. The scalar pipeline paths "
            "(use_columnar=False) run without it."
        ) from exc
    return numpy
