"""The T-STR partitioner — Algorithm 1 of the paper.

T-STR decouples the temporal and spatial dimensions: the sample is first
split along time into ``gt`` equal-count slices, then each slice is tiled
spatially with 2-d STR into ``gs`` cells, yielding ``gt * gs`` partitions
whose records are both time-local and space-local.  The temporal-first
order also matches the paper's efficiency argument: the cheap 1-d temporal
split chunks the data so the expensive spatial sorts run on smaller inputs
(in parallel on a real cluster).
"""

from __future__ import annotations

from typing import Sequence

from repro._deps import has_numpy
from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner
from repro.partitioners.tiling import (
    Str2D,
    bucket_interval,
    bucket_of,
    bucket_of_batch,
    buckets_overlapping,
    equal_count_cuts,
)


class TSTRPartitioner(STPartitioner):
    """Temporal split into ``gt`` slices, then 2-d STR into ``gs`` per slice.

    Parameters mirror the paper's ``TSTRPartitioner(gt, gs)`` where gt and
    gs are the temporal and spatial granularities.
    """

    def __init__(self, gt: int, gs: int):
        super().__init__()
        if gt < 1 or gs < 1:
            raise ValueError("granularities must be positive")
        self.gt = gt
        self.gs = gs
        self._t_cuts: list[float] | None = None
        self._tilings: list[Str2D] | None = None
        self._offsets: list[int] | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        reps = [
            (inst.spatial_extent.centroid(), inst.temporal_extent.center)
            for inst in sample
        ]
        self._t_cuts = equal_count_cuts([t for _, t in reps], self.gt)
        slice_count = len(self._t_cuts) + 1
        slices: list[list[tuple[float, float]]] = [[] for _ in range(slice_count)]
        for center, t in reps:
            slices[bucket_of(self._t_cuts, t)].append((center.x, center.y))
        self._tilings = []
        self._offsets = [0]
        for slice_points in slices:
            if slice_points:
                tiling = Str2D(slice_points, self.gs)
            else:
                # Degenerate slice (all sample timestamps equal): one cell.
                tiling = Str2D([(0.0, 0.0)], 1)
            self._tilings.append(tiling)
            self._offsets.append(self._offsets[-1] + tiling.cell_count)
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return self._offsets[-1]

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        t_slice = bucket_of(self._t_cuts, instance.temporal_extent.center)
        center = instance.spatial_extent.centroid()
        return self._offsets[t_slice] + self._tilings[t_slice].cell_of(
            center.x, center.y
        )

    def assign_batch(self, instances: Sequence[Instance]) -> list[int]:
        """Vectorized :meth:`assign` (see STPartitioner for the contract).

        Representative (x, y, t) centers are extracted in one Python pass,
        then each instance's temporal slice and spatial cell come from
        searchsorted kernels — the same arithmetic as the scalar path, so
        the two agree on every input including cut-sitting centers.
        """
        self._require_fitted()
        if not has_numpy() or not instances:
            return super().assign_batch(instances)
        import numpy as np

        ts = np.empty(len(instances), dtype=np.float64)
        xs = np.empty(len(instances), dtype=np.float64)
        ys = np.empty(len(instances), dtype=np.float64)
        for i, inst in enumerate(instances):
            bx0, by0, bt0, bx1, by1, bt1 = inst.st_bounds()
            ts[i] = (bt0 + bt1) / 2.0
            xs[i] = (bx0 + bx1) / 2.0
            ys[i] = (by0 + by1) / 2.0
        t_slices = bucket_of_batch(self._t_cuts, ts)
        pids = np.empty(len(instances), dtype=np.int64)
        for t_slice in np.unique(t_slices):
            mask = t_slices == t_slice
            cells = self._tilings[t_slice].cells_of_batch(xs[mask], ys[mask])
            pids[mask] = self._offsets[t_slice] + cells
        return pids.tolist()

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        self._require_fitted()
        dur = instance.temporal_extent
        env = instance.spatial_extent
        pids = []
        for t_slice in buckets_overlapping(self._t_cuts, dur.start, dur.end):
            base = self._offsets[t_slice]
            for cell in self._tilings[t_slice].cells_overlapping(env):
                pids.append(base + cell)
        return sorted(pids)

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        boxes = []
        for t_slice, tiling in enumerate(self._tilings):
            t_lo, t_hi = bucket_interval(self._t_cuts, t_slice)
            for cell in range(tiling.cell_count):
                env = tiling.cell_envelope(cell)
                boxes.append(
                    STBox(
                        (env.min_x, env.min_y, t_lo),
                        (env.max_x, env.max_y, t_hi),
                    )
                )
        return boxes
