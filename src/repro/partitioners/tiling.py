"""Shared tiling machinery for the boundary-based partitioners."""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.geometry.envelope import Envelope
from repro.partitioners.base import UNBOUNDED


def equal_count_cuts(values: Sequence[float], k: int) -> list[float]:
    """``k - 1`` cut points splitting sorted ``values`` into equal-count runs.

    The cuts are sample quantiles; duplicates are allowed (heavily skewed
    samples can repeat a cut, producing empty middle partitions — the same
    degradation real sampled partitioners exhibit).
    """
    if k < 1:
        raise ValueError("cut count k must be at least 1")
    ordered = sorted(values)
    if not ordered or k == 1:
        return []
    return [ordered[i * len(ordered) // k] for i in range(1, k)]


def bucket_of(cuts: Sequence[float], value: float) -> int:
    """Index of the bucket ``value`` falls into given sorted cut points.

    Half-open convention: bucket ``i`` covers ``[cuts[i-1], cuts[i])`` with
    the outer buckets unbounded, so assignment is total.
    """
    return bisect_right(cuts, value)


def bucket_of_batch(cuts: Sequence[float], values):
    """Vectorized :func:`bucket_of` over a float array of values.

    ``np.searchsorted(cuts, v, side="right")`` computes exactly
    ``bisect_right(cuts, v)`` per element, so batch and scalar assignment
    agree on every input, cut-sitting values included.
    """
    from repro._deps import require_numpy

    np = require_numpy("bucket_of_batch")
    values = np.asarray(values, dtype=np.float64)
    if not cuts:
        return np.zeros(len(values), dtype=np.int64)
    return np.searchsorted(
        np.asarray(cuts, dtype=np.float64), values, side="right"
    ).astype(np.int64)


def buckets_overlapping(cuts: Sequence[float], lo: float, hi: float) -> range:
    """Indices of all buckets overlapped by the closed interval [lo, hi]."""
    first = bisect_right(cuts, lo)
    last = bisect_right(cuts, hi)
    # A closed interval touching a cut exactly also overlaps the bucket
    # below the cut (cuts themselves belong to the upper bucket).
    if first > 0 and lo == cuts[first - 1]:
        first -= 1
    return range(first, last + 1)


def bucket_interval(cuts: Sequence[float], index: int) -> tuple[float, float]:
    """The (lo, hi) extent of a bucket, using UNBOUNDED at the edges."""
    lo = cuts[index - 1] if index > 0 else -UNBOUNDED
    hi = cuts[index] if index < len(cuts) else UNBOUNDED
    return (lo, hi)


class Str2D:
    """A fitted 2-d sort-tile-recursive tiling.

    Implements the STR packing of Leutenegger et al.: points are split into
    ``ceil(sqrt(n))`` equal-count slabs along x, and each slab into rows
    along y.  The tiling covers the whole plane (outer cells stretch to
    UNBOUNDED) so assignment is total.
    """

    def __init__(self, points: Sequence[tuple[float, float]], n: int):
        if n < 1:
            raise ValueError("target partition count must be positive")
        if not points:
            raise ValueError("cannot fit STR tiling on an empty sample")
        import math

        kx = max(1, math.ceil(math.sqrt(n)))
        ky = max(1, math.ceil(n / kx))
        self.x_cuts = equal_count_cuts([p[0] for p in points], kx)
        xs_sorted = sorted(points, key=lambda p: p[0])
        self.y_cuts_per_slab: list[list[float]] = []
        slab_count = len(self.x_cuts) + 1
        # Re-derive slab membership from the cuts (not from even slicing) so
        # assignment and fitting agree exactly at duplicated cut values.
        slabs: list[list[float]] = [[] for _ in range(slab_count)]
        for x, y in xs_sorted:
            slabs[bucket_of(self.x_cuts, x)].append(y)
        for slab_ys in slabs:
            if slab_ys:
                self.y_cuts_per_slab.append(equal_count_cuts(slab_ys, ky))
            else:
                self.y_cuts_per_slab.append([])
        self._offsets = [0]
        for cuts in self.y_cuts_per_slab:
            self._offsets.append(self._offsets[-1] + len(cuts) + 1)

    @property
    def cell_count(self) -> int:
        """Total number of tiling cells."""
        return self._offsets[-1]

    def cell_of(self, x: float, y: float) -> int:
        """Cell index containing the point (total over the plane)."""
        slab = bucket_of(self.x_cuts, x)
        row = bucket_of(self.y_cuts_per_slab[slab], y)
        return self._offsets[slab] + row

    def cells_of_batch(self, xs, ys):
        """Vectorized :meth:`cell_of` over coordinate arrays.

        One searchsorted over the x cuts picks each point's slab, then one
        searchsorted per *distinct occupied slab* places the points within
        it — the ragged ``y_cuts_per_slab`` lists prevent a single 2-d
        searchsorted, but the slab count is ~sqrt(num_partitions), so the
        Python loop is over slabs, never points.
        """
        from repro._deps import require_numpy

        np = require_numpy("Str2D.cells_of_batch")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        slabs = bucket_of_batch(self.x_cuts, xs)
        cells = np.empty(len(xs), dtype=np.int64)
        offsets = np.asarray(self._offsets, dtype=np.int64)
        for slab in np.unique(slabs):
            mask = slabs == slab
            rows = bucket_of_batch(self.y_cuts_per_slab[slab], ys[mask])
            cells[mask] = offsets[slab] + rows
        return cells

    def cells_overlapping(self, env: Envelope) -> list[int]:
        """All cell indices overlapped by the envelope."""
        cells = []
        for slab in buckets_overlapping(self.x_cuts, env.min_x, env.max_x):
            y_cuts = self.y_cuts_per_slab[slab]
            for row in buckets_overlapping(y_cuts, env.min_y, env.max_y):
                cells.append(self._offsets[slab] + row)
        return cells

    def cell_envelope(self, cell: int) -> Envelope:
        """The cell's rectangle (UNBOUNDED at outer edges)."""
        if not 0 <= cell < self.cell_count:
            raise IndexError(f"cell {cell} out of range")
        slab = 0
        while self._offsets[slab + 1] <= cell:
            slab += 1
        row = cell - self._offsets[slab]
        x_lo, x_hi = bucket_interval(self.x_cuts, slab)
        y_lo, y_hi = bucket_interval(self.y_cuts_per_slab[slab], row)
        return Envelope(x_lo, y_lo, x_hi, y_hi)
