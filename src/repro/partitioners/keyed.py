"""Keyed-STR partitioner — the paper's T-STR generalization.

Section 4.1: "Such an idea can be extended with more dimensions according
to the application needs.  Any 1-d attribute of the ST data (e.g., the ID
and the vehicle type) can be included for partitioning."

:class:`KeyedSTRPartitioner` partitions first by the quantiles of an
arbitrary numeric 1-d key (temporal center, vehicle id hash, sampling
rate, …) and then spatially with 2-d STR inside each key slice —
:class:`~repro.partitioners.TSTRPartitioner` is exactly this with
``key_func = temporal center``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED
from repro.partitioners.tiling import (
    Str2D,
    bucket_of,
    equal_count_cuts,
)


class KeyedSTRPartitioner(STPartitioner):
    """Quantile slices of a custom 1-d key, then 2-d STR per slice.

    Parameters
    ----------
    key_func:
        Maps an instance to a numeric key.  Must be deterministic — the
        same function routes records during the shuffle.
    gk:
        Number of key slices.
    gs:
        Spatial cells per slice.
    """

    def __init__(self, key_func: Callable[[Instance], float], gk: int, gs: int):
        super().__init__()
        if gk < 1 or gs < 1:
            raise ValueError("granularities must be positive")
        self.key_func = key_func
        self.gk = gk
        self.gs = gs
        self._cuts: list[float] | None = None
        self._tilings: list[Str2D] | None = None
        self._offsets: list[int] | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        keyed = [(self.key_func(inst), inst) for inst in sample]
        self._cuts = equal_count_cuts([k for k, _ in keyed], self.gk)
        slices: list[list[tuple[float, float]]] = [
            [] for _ in range(len(self._cuts) + 1)
        ]
        for key, inst in keyed:
            center = inst.spatial_extent.centroid()
            slices[bucket_of(self._cuts, key)].append((center.x, center.y))
        self._tilings = []
        self._offsets = [0]
        for slice_points in slices:
            tiling = Str2D(slice_points or [(0.0, 0.0)], self.gs if slice_points else 1)
            self._tilings.append(tiling)
            self._offsets.append(self._offsets[-1] + tiling.cell_count)
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return self._offsets[-1]

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        key_slice = bucket_of(self._cuts, self.key_func(instance))
        center = instance.spatial_extent.centroid()
        return self._offsets[key_slice] + self._tilings[key_slice].cell_of(
            center.x, center.y
        )

    def assign_all(self, instance: Instance) -> list[int]:
        # A scalar key places the instance in exactly one key slice; only
        # the spatial dimension can straddle boundaries.
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        self._require_fitted()
        key_slice = bucket_of(self._cuts, self.key_func(instance))
        base = self._offsets[key_slice]
        return sorted(
            base + cell
            for cell in self._tilings[key_slice].cells_overlapping(
                instance.spatial_extent
            )
        )

    def boundaries(self) -> list[STBox]:
        """Spatial boundaries per partition; the key dimension is not an ST
        axis, so the temporal extent is unbounded."""
        self._require_fitted()
        boxes = []
        for tiling in self._tilings:
            for cell in range(tiling.cell_count):
                env = tiling.cell_envelope(cell)
                boxes.append(
                    STBox(
                        (env.min_x, env.min_y, -UNBOUNDED),
                        (env.max_x, env.max_y, UNBOUNDED),
                    )
                )
        return boxes
