"""Temporal-percentile partitioner."""

from __future__ import annotations

from typing import Sequence

from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED
from repro._deps import has_numpy
from repro.partitioners.tiling import (
    bucket_interval,
    bucket_of,
    bucket_of_batch,
    buckets_overlapping,
    equal_count_cuts,
)


class TBalancePartitioner(STPartitioner):
    """Equal-count temporal slices (the paper's T-balance partitioner).

    The paper implements this with Spark's ``approx_percentile``; here the
    cuts are exact sample quantiles, which is the same estimator without
    the sketching error.  Spatial locality is not preserved.
    """

    def __init__(self, num_partitions: int):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        self._n = num_partitions
        self._cuts: list[float] | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        self._cuts = equal_count_cuts(
            [inst.temporal_extent.center for inst in sample], self._n
        )
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return len(self._cuts) + 1

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        return bucket_of(self._cuts, instance.temporal_extent.center)

    def assign_batch(self, instances: Sequence[Instance]) -> list[int]:
        """Vectorized :meth:`assign` (see STPartitioner for the contract)."""
        self._require_fitted()
        if not has_numpy() or not instances:
            return super().assign_batch(instances)
        centers = [
            (b[2] + b[5]) / 2.0 for b in (inst.st_bounds() for inst in instances)
        ]
        return bucket_of_batch(self._cuts, centers).tolist()

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        self._require_fitted()
        dur = instance.temporal_extent
        return list(buckets_overlapping(self._cuts, dur.start, dur.end))

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        boxes = []
        for i in range(self.num_partitions):
            t_lo, t_hi = bucket_interval(self._cuts, i)
            boxes.append(
                STBox(
                    (-UNBOUNDED, -UNBOUNDED, t_lo),
                    (UNBOUNDED, UNBOUNDED, t_hi),
                )
            )
        return boxes
