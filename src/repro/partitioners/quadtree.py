"""Quadtree-based spatial partitioner."""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox
from repro.index.quadtree import QuadTree
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED


class QuadTreePartitioner(STPartitioner):
    """Partition regions are the leaves of a quadtree over a sample.

    Like STR, quadtree partitioning preserves spatial locality only; unlike
    STR, cell sizes adapt to density (dense hotspots split deeper), at the
    cost of a leaf count that only approximates the requested target.
    """

    def __init__(self, num_partitions: int):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        self._target = num_partitions
        self._leaves: list[Envelope] | None = None
        self._leaf_index: dict[Envelope, int] | None = None
        self._tree: QuadTree | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        centers = [
            (c.x, c.y) for c in (inst.spatial_extent.centroid() for inst in sample)
        ]
        # A leaf splits at > capacity points, and a split produces 4 leaves;
        # sizing capacity this way lands the leaf count near the target.
        capacity = max(1, math.ceil(len(centers) / self._target))
        self._tree = QuadTree.build(centers, capacity=capacity)
        self._leaves = self._tree.leaves()
        self._leaf_index = {leaf: i for i, leaf in enumerate(self._leaves)}
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return len(self._leaves)

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        center = instance.spatial_extent.centroid()
        leaf = self._tree.leaf_for(center.x, center.y)
        return self._leaf_index[leaf]

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        self._require_fitted()
        env = instance.spatial_extent
        hits = [
            i for i, leaf in enumerate(self._leaves) if leaf.intersects_envelope(env)
        ]
        if not hits:
            # Instance lies entirely outside the fitted tree bounds; fall
            # back to the clamped primary assignment so routing stays total.
            hits = [self.assign(instance)]
        return hits

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        return [
            STBox(
                (leaf.min_x, leaf.min_y, -UNBOUNDED),
                (leaf.max_x, leaf.max_y, UNBOUNDED),
            )
            for leaf in self._leaves
        ]
