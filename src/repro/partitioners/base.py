"""Partitioner contract."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.index.boxes import STBox
from repro.instances.base import Instance

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD

#: Sentinel magnitude used for dimensions a partitioner does not constrain
#: (e.g. the temporal extent of a purely spatial partitioner).  Finite so
#: boxes stay JSON-serializable and index-safe.
UNBOUNDED = 1.0e18


def _fan_out(instance: Instance, assign, assign_all) -> list[tuple[int, Instance]]:
    """(partition id, copy) pairs for one instance in duplicate mode.

    One primary copy for ``assign(instance)``, one tagged replica per
    additional overlapping partition.  Module-level so the process backend
    can ship the routing stage with stdlib pickle.
    """
    primary = assign(instance)
    return [
        (pid, instance if pid == primary else instance.replica())
        for pid in assign_all(instance)
    ]


def _fan_out_batch(
    partition: list, assign_batch, assign_all
) -> list[tuple[int, Instance]]:
    """Batched duplicate-mode routing for one partition.

    Primaries come from one ``assign_batch`` call; the per-instance
    ``assign_all`` fan-out stays scalar (boundary overlap enumeration),
    producing exactly the pairs ``_fan_out`` would instance by instance.
    """
    routed: list[tuple[int, Instance]] = []
    for inst, primary in zip(partition, assign_batch(partition)):
        for pid in assign_all(inst):
            routed.append((pid, inst if pid == primary else inst.replica()))
    return routed


def _routed_pid(pair: tuple[int, Instance]) -> int:
    return pair[0]


def _routed_instance(pair: tuple[int, Instance]) -> Instance:
    return pair[1]


class STPartitioner(ABC):
    """Learns boundaries from a sample, then assigns instances to partitions.

    Lifecycle::

        p = TSTRPartitioner(gt=8, gs=16)
        partitioned = p.partition(rdd)          # fit on a sample + shuffle

    or, when the caller manages sampling itself::

        p.fit(sample_instances)
        partitioned = rdd.shuffle_by(p.num_partitions, p.assign)

    After fitting, ``boundaries()`` exposes one ST box per partition; the
    on-disk metadata writer (Section 4.1) persists these next to the data.
    """

    def __init__(self) -> None:
        self._fitted = False

    # -- fitting ------------------------------------------------------------------

    @abstractmethod
    def fit(self, sample: Sequence[Instance]) -> None:
        """Compute partition boundaries from a sample of instances."""

    @property
    def is_fitted(self) -> bool:
        """True once fit() has run."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before assigning"
            )

    # -- assignment -----------------------------------------------------------------

    @property
    @abstractmethod
    def num_partitions(self) -> int:
        """Partition count; valid after :meth:`fit`."""

    @abstractmethod
    def assign(self, instance: Instance) -> int:
        """Partition id for an instance, by its representative ST center.

        Total: any instance maps to exactly one partition, including
        instances outside the fitted sample's extent.
        """

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions whose region overlaps the instance's ST MBR.

        Used when ``duplicate=True``: cross-boundary instances are copied
        into every overlapping partition so local-only computations (e.g.
        companion search) stay correct.  Always contains
        ``assign(instance)``.
        """
        self._require_fitted()
        box = instance.st_box()
        primary = self.assign(instance)
        hits = {
            pid
            for pid, bound in enumerate(self.boundaries())
            if bound.intersects(box)
        }
        hits.add(primary)
        return sorted(hits)

    def assign_batch(self, instances: Sequence[Instance]) -> list[int]:
        """Partition ids for many instances at once.

        Contract: elementwise identical to :meth:`assign` —
        ``assign_batch(xs) == [assign(x) for x in xs]`` for every input.
        Subclasses override with vectorized kernels; this default is the
        scalar loop, so overriding is purely a performance choice.
        """
        return [self.assign(inst) for inst in instances]

    @abstractmethod
    def boundaries(self) -> list[STBox]:
        """One 3-d (x, y, t) box per partition, jointly covering all space."""

    # -- execution ---------------------------------------------------------------------

    def partition(
        self,
        rdd: "RDD[Instance]",
        sample_fraction: float = 0.1,
        duplicate: bool = False,
        seed: int = 17,
        use_columnar: bool = True,
    ) -> "RDD[Instance]":
        """Fit on a sample of ``rdd`` and shuffle it into balanced partitions.

        The sampling-then-assigning flow follows Section 3.1: boundaries are
        computed from a fraction of the data ("takes much shorter time and
        only induces minor degradation in load balance"), then every record
        is routed in parallel.  With ``use_columnar`` (and numpy available)
        routing uses :meth:`assign_batch` — one vectorized call per
        partition instead of one ``assign`` call per instance.
        """
        from repro._deps import has_numpy
        from repro.columnar.cache import invalidate_partition_indexes

        sample = [x for p in rdd.sample(sample_fraction, seed)._collect_partitions() for x in p]
        if not sample:
            sample = rdd.take(1000)
        self.fit(sample)
        if getattr(rdd.ctx, "strict", False):
            from repro.engine.sanitizer import validate_partitioner

            validate_partitioner(self, sample)
        # The shuffle replaces every partition list; cached per-partition
        # selection indexes keyed on the old lists are released eagerly.
        invalidate_partition_indexes()
        columnar = use_columnar and has_numpy()
        if not duplicate:
            if columnar:
                return rdd.shuffle_by_batch(self.num_partitions, self.assign_batch)
            return rdd.shuffle_by(self.num_partitions, self.assign)
        # Duplicate mode (Algorithm 1's ``duplicate`` flag): the copy that
        # lands in ``assign(inst)``'s partition stays the primary; copies
        # routed to other overlapping partitions are tagged replicas
        # (``dup_primary=False``), so aggregates can skip them while
        # local-neighborhood operators still see every copy.  The closed
        # intervals of Duration/Envelope intersection mean an instance
        # sitting exactly on a cell boundary always fans out — without the
        # tag it would be double-counted downstream.
        assign_all = self.assign_all
        if columnar:
            assign_batch = self.assign_batch
            routed = rdd.map_partitions(
                lambda part: _fan_out_batch(part, assign_batch, assign_all)
            )
        else:
            assign = self.assign
            routed = rdd.flat_map(lambda inst: _fan_out(inst, assign, assign_all))
        return routed.shuffle_by(self.num_partitions, _routed_pid).map(_routed_instance)

    def partition_with_info(
        self,
        rdd: "RDD[Instance]",
        sample_fraction: float = 0.1,
        duplicate: bool = False,
        seed: int = 17,
        use_columnar: bool = True,
    ) -> tuple["RDD[Instance]", list[STBox]]:
        """Like :meth:`partition` but also return the partition boundaries —
        the ``stPartitionWithInfo`` of Section 4.1's code example."""
        partitioned = self.partition(rdd, sample_fraction, duplicate, seed, use_columnar)
        return partitioned, self.boundaries()
