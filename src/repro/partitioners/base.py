"""Partitioner contract."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.index.boxes import STBox
from repro.instances.base import Instance

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD

#: Sentinel magnitude used for dimensions a partitioner does not constrain
#: (e.g. the temporal extent of a purely spatial partitioner).  Finite so
#: boxes stay JSON-serializable and index-safe.
UNBOUNDED = 1.0e18


class STPartitioner(ABC):
    """Learns boundaries from a sample, then assigns instances to partitions.

    Lifecycle::

        p = TSTRPartitioner(gt=8, gs=16)
        partitioned = p.partition(rdd)          # fit on a sample + shuffle

    or, when the caller manages sampling itself::

        p.fit(sample_instances)
        partitioned = rdd.shuffle_by(p.num_partitions, p.assign)

    After fitting, ``boundaries()`` exposes one ST box per partition; the
    on-disk metadata writer (Section 4.1) persists these next to the data.
    """

    def __init__(self) -> None:
        self._fitted = False

    # -- fitting ------------------------------------------------------------------

    @abstractmethod
    def fit(self, sample: Sequence[Instance]) -> None:
        """Compute partition boundaries from a sample of instances."""

    @property
    def is_fitted(self) -> bool:
        """True once fit() has run."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before assigning"
            )

    # -- assignment -----------------------------------------------------------------

    @property
    @abstractmethod
    def num_partitions(self) -> int:
        """Partition count; valid after :meth:`fit`."""

    @abstractmethod
    def assign(self, instance: Instance) -> int:
        """Partition id for an instance, by its representative ST center.

        Total: any instance maps to exactly one partition, including
        instances outside the fitted sample's extent.
        """

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions whose region overlaps the instance's ST MBR.

        Used when ``duplicate=True``: cross-boundary instances are copied
        into every overlapping partition so local-only computations (e.g.
        companion search) stay correct.  Always contains
        ``assign(instance)``.
        """
        self._require_fitted()
        box = instance.st_box()
        primary = self.assign(instance)
        hits = {
            pid
            for pid, bound in enumerate(self.boundaries())
            if bound.intersects(box)
        }
        hits.add(primary)
        return sorted(hits)

    @abstractmethod
    def boundaries(self) -> list[STBox]:
        """One 3-d (x, y, t) box per partition, jointly covering all space."""

    # -- execution ---------------------------------------------------------------------

    def partition(
        self,
        rdd: "RDD[Instance]",
        sample_fraction: float = 0.1,
        duplicate: bool = False,
        seed: int = 17,
    ) -> "RDD[Instance]":
        """Fit on a sample of ``rdd`` and shuffle it into balanced partitions.

        The sampling-then-assigning flow follows Section 3.1: boundaries are
        computed from a fraction of the data ("takes much shorter time and
        only induces minor degradation in load balance"), then every record
        is routed in parallel.
        """
        sample = [x for p in rdd.sample(sample_fraction, seed)._collect_partitions() for x in p]
        if not sample:
            sample = rdd.take(1000)
        self.fit(sample)
        if getattr(rdd.ctx, "strict", False):
            from repro.engine.sanitizer import validate_partitioner

            validate_partitioner(self, sample)
        assigner = self.assign_all if duplicate else self.assign
        return rdd.shuffle_by(self.num_partitions, assigner)

    def partition_with_info(
        self,
        rdd: "RDD[Instance]",
        sample_fraction: float = 0.1,
        duplicate: bool = False,
        seed: int = 17,
    ) -> tuple["RDD[Instance]", list[STBox]]:
        """Like :meth:`partition` but also return the partition boundaries —
        the ``stPartitionWithInfo`` of Section 4.1's code example."""
        partitioned = self.partition(rdd, sample_fraction, duplicate, seed)
        return partitioned, self.boundaries()
