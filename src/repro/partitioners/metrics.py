"""Partitioning quality metrics — Table 5's CV and OV.

* **CV** (coefficient of variation) = stddev / mean of partition record
  counts.  Smaller is better balanced.
* **OV** (overlap) = sum of per-partition ST MBR volumes over the volume of
  the global ST MBR.  An ST-aware partitioner produces tight, disjoint
  partitions whose volumes sum to ~1; a random partitioner's partitions
  each span (almost) the whole space, pushing OV toward the partition
  count.

Volumes are computed on *normalized* dimensions (each axis rescaled by the
global extent) so degrees and seconds combine meaningfully.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.metrics import coefficient_of_variation
from repro.index.boxes import STBox
from repro.instances.base import Instance


def load_cv(partition_sizes: Sequence[int]) -> float:
    """Coefficient of variation of partition record counts."""
    return coefficient_of_variation(list(partition_sizes))


def partition_mbr(instances: Sequence[Instance]) -> STBox | None:
    """The ST MBR of a partition's actual contents (None when empty)."""
    boxes = [inst.st_box() for inst in instances]
    if not boxes:
        return None
    return STBox.merge_all(boxes)


def _normalized_volume(box: STBox, global_box: STBox) -> float:
    """Product of per-axis lengths rescaled by the global lengths.

    Zero-length global axes (e.g. all data at one instant) are skipped, so
    the metric degrades gracefully instead of dividing by zero.
    """
    vol = 1.0
    for lo, hi, glo, ghi in zip(box.mins, box.maxs, global_box.mins, global_box.maxs):
        span = ghi - glo
        if span <= 0:
            continue
        vol *= (hi - lo) / span
    return vol


def load_ov(partitions: Sequence[Sequence[Instance]]) -> float:
    """Overlap metric over the actual contents of each partition.

    Measured on the data's own MBRs (not the theoretical partitioner
    boundaries), matching how the paper evaluates the layouts produced by
    systems that have no explicit boundary concept (native Spark).
    """
    mbrs = [partition_mbr(p) for p in partitions]
    mbrs = [m for m in mbrs if m is not None]
    if not mbrs:
        return 0.0
    global_box = STBox.merge_all(mbrs)
    return sum(_normalized_volume(m, global_box) for m in mbrs)


def evaluate_partitioning(partitions: Sequence[Sequence[Instance]]) -> dict:
    """CV + OV + size digest for one partition layout."""
    sizes = [len(p) for p in partitions]
    return {
        "partitions": len(partitions),
        "cv": load_cv(sizes),
        "ov": load_ov(partitions),
        "min_size": min(sizes) if sizes else 0,
        "max_size": max(sizes) if sizes else 0,
        "records": sum(sizes),
    }
