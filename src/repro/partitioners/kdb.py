"""K-D-B style partitioner (GeoSpark baseline).

GeoSpark's default spatial partitioning recursively splits space at the
median of alternating dimensions.  It balances record counts over *space*
but, like STR and quadtree, is blind to time — the property the paper's
Table 5 comparison isolates.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED


class _KDNode:
    __slots__ = ("dim", "cut", "left", "right", "pid")

    def __init__(self, dim=None, cut=None, left=None, right=None, pid=None):
        self.dim = dim
        self.cut = cut
        self.left = left
        self.right = right
        self.pid = pid

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (holding a partition id)."""
        return self.pid is not None


class KDBPartitioner(STPartitioner):
    """Median splits alternating x / y until ~``num_partitions`` leaves."""

    def __init__(self, num_partitions: int):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        self._target = num_partitions
        self._root: _KDNode | None = None
        self._bounds: list[tuple[float, float, float, float]] | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        centers = [
            (c.x, c.y) for c in (inst.spatial_extent.centroid() for inst in sample)
        ]
        depth = max(0, math.ceil(math.log2(self._target)))
        self._bounds = []
        self._root = self._build(centers, 0, depth)
        self._fitted = True

    def _build(
        self,
        points: list[tuple[float, float]],
        depth: int,
        max_depth: int,
        region: tuple[float, float, float, float] = (
            -UNBOUNDED,
            -UNBOUNDED,
            UNBOUNDED,
            UNBOUNDED,
        ),
    ) -> _KDNode:
        if depth >= max_depth or len(points) <= 1:
            pid = len(self._bounds)
            self._bounds.append(region)
            return _KDNode(pid=pid)
        dim = depth % 2
        ordered = sorted(points, key=lambda p: p[dim])
        cut = ordered[len(ordered) // 2][dim]
        left_pts = [p for p in points if p[dim] < cut]
        right_pts = [p for p in points if p[dim] >= cut]
        if not left_pts or not right_pts:
            # All sample points identical along this dim; stop splitting.
            pid = len(self._bounds)
            self._bounds.append(region)
            return _KDNode(pid=pid)
        min_x, min_y, max_x, max_y = region
        if dim == 0:
            left_region = (min_x, min_y, cut, max_y)
            right_region = (cut, min_y, max_x, max_y)
        else:
            left_region = (min_x, min_y, max_x, cut)
            right_region = (min_x, cut, max_x, max_y)
        return _KDNode(
            dim=dim,
            cut=cut,
            left=self._build(left_pts, depth + 1, max_depth, left_region),
            right=self._build(right_pts, depth + 1, max_depth, right_region),
        )

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return len(self._bounds)

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        center = instance.spatial_extent.centroid()
        coords = (center.x, center.y)
        node = self._root
        while not node.is_leaf:
            node = node.left if coords[node.dim] < node.cut else node.right
        return node.pid

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        return [
            STBox((min_x, min_y, -UNBOUNDED), (max_x, max_y, UNBOUNDED))
            for min_x, min_y, max_x, max_y in self._bounds
        ]
