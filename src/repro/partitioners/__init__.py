"""ST-aware data partitioners (paper Sections 3.1 and 4.1).

A partitioner learns partition boundaries from a data sample, then assigns
every instance to one partition (or several, when boundary duplication is
required for correctness — Algorithm 1's ``duplicate`` flag).  The
assignment runs inside the engine's ``shuffle_by`` primitive.

Provided partitioners:

* :class:`HashPartitioner` — record-level randomness, pure load balance,
  no ST locality (for applications that don't need proximity);
* :class:`STRPartitioner` — classic 2-d sort-tile-recursive, spatial
  locality only;
* :class:`QuadTreePartitioner` — quadtree leaves as partitions;
* :class:`TBalancePartitioner` — temporal percentile slicing;
* :class:`TSTRPartitioner` — the paper's novel temporal-then-spatial STR
  (Algorithm 1), partitioning time into equal-count slices first and
  applying 2-d STR within each slice;
* :class:`KDBPartitioner` — alternating-dimension median splits, standing
  in for GeoSpark's K-D-B partitioning in the baselines.
"""

from repro.partitioners.base import STPartitioner
from repro.partitioners.hash import HashPartitioner
from repro.partitioners.str2d import STRPartitioner
from repro.partitioners.tstr import TSTRPartitioner
from repro.partitioners.quadtree import QuadTreePartitioner
from repro.partitioners.tbalance import TBalancePartitioner
from repro.partitioners.kdb import KDBPartitioner
from repro.partitioners.keyed import KeyedSTRPartitioner
from repro.partitioners.metrics import load_cv, load_ov, evaluate_partitioning

__all__ = [
    "STPartitioner",
    "HashPartitioner",
    "STRPartitioner",
    "TSTRPartitioner",
    "QuadTreePartitioner",
    "TBalancePartitioner",
    "KDBPartitioner",
    "KeyedSTRPartitioner",
    "load_cv",
    "load_ov",
    "evaluate_partitioning",
]
