"""Classic 2-d sort-tile-recursive partitioner."""

from __future__ import annotations

from typing import Sequence

from repro._deps import has_numpy
from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED
from repro.partitioners.tiling import Str2D


class STRPartitioner(STPartitioner):
    """Spatial-only STR tiling [Leutenegger et al. 1997].

    Preserves spatial proximity and balances load over space, but ignores
    time entirely — the weakness the T-STR partitioner fixes (Table 6
    compares them head-to-head).
    """

    def __init__(self, num_partitions: int):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        self._target = num_partitions
        self._tiling: Str2D | None = None

    def fit(self, sample: Sequence[Instance]) -> None:
        """Learn partition boundaries from a sample (see STPartitioner)."""
        if not sample:
            raise ValueError("cannot fit on an empty sample")
        centers = [
            (c.x, c.y)
            for c in (inst.spatial_extent.centroid() for inst in sample)
        ]
        self._tiling = Str2D(centers, self._target)
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        self._require_fitted()
        return self._tiling.cell_count

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        center = instance.spatial_extent.centroid()
        return self._tiling.cell_of(center.x, center.y)

    def assign_batch(self, instances: Sequence[Instance]) -> list[int]:
        """Vectorized :meth:`assign` (see STPartitioner for the contract)."""
        self._require_fitted()
        if not has_numpy() or not instances:
            return super().assign_batch(instances)
        import numpy as np

        xs = np.empty(len(instances), dtype=np.float64)
        ys = np.empty(len(instances), dtype=np.float64)
        for i, inst in enumerate(instances):
            bx0, by0, _bt0, bx1, by1, _bt1 = inst.st_bounds()
            xs[i] = (bx0 + bx1) / 2.0
            ys[i] = (by0 + by1) / 2.0
        return self._tiling.cells_of_batch(xs, ys).tolist()

    def assign_all(self, instance: Instance) -> list[int]:
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        self._require_fitted()
        return sorted(self._tiling.cells_overlapping(instance.spatial_extent))

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        boxes = []
        for cell in range(self._tiling.cell_count):
            env = self._tiling.cell_envelope(cell)
            boxes.append(
                STBox(
                    (env.min_x, env.min_y, -UNBOUNDED),
                    (env.max_x, env.max_y, UNBOUNDED),
                )
            )
        return boxes
