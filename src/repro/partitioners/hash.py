"""Record-level hash partitioner."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.engine.shuffle import stable_hash
from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.partitioners.base import STPartitioner, UNBOUNDED


def _canonical_key(instance: Instance) -> tuple:
    """A deterministic per-record key: data field + ST extent."""
    env = instance.spatial_extent
    dur = instance.temporal_extent
    return (
        repr(instance.data),
        env.min_x,
        env.min_y,
        env.max_x,
        env.max_y,
        dur.start,
        dur.end,
    )


class HashPartitioner(STPartitioner):
    """Random, balanced, ST-oblivious partitioning (paper Section 3.1).

    "Uses the hash value of each data entry as the partition key to ensure
    randomness and load balance at the data record level" — the right
    choice when the extraction logic needs no ST proximity.  Every
    partition's boundary is the full ST space, so the OV metric (Table 5)
    is maximal by construction.
    """

    def __init__(
        self,
        num_partitions: int,
        key_func: Callable[[Instance], object] | None = None,
    ):
        super().__init__()
        if num_partitions < 1:
            raise ValueError("partition count must be positive")
        self._n = num_partitions
        self._key_func = key_func or _canonical_key

    def fit(self, sample: Sequence[Instance]) -> None:
        # Nothing to learn; fitting exists to satisfy the uniform lifecycle.
        """Learn partition boundaries from a sample (see STPartitioner)."""
        self._fitted = True

    @property
    def num_partitions(self) -> int:
        """Partition count; valid after fit()."""
        return self._n

    def assign(self, instance: Instance) -> int:
        """Partition id for an instance (see STPartitioner)."""
        self._require_fitted()
        return stable_hash(self._key_func(instance)) % self._n

    def assign_batch(self, instances: Sequence[Instance]) -> list[int]:
        """Batched :meth:`assign` — intentionally the scalar loop.

        ``stable_hash`` digests a pickled canonical key per record; there
        is no array form of that, and inventing one would silently change
        every record's placement.  The override exists to document the
        choice: hash routing gains nothing from the columnar path but must
        stay bit-identical to the scalar one.
        """
        self._require_fitted()
        key_func = self._key_func
        n = self._n
        return [stable_hash(key_func(inst)) % n for inst in instances]

    def assign_all(self, instance: Instance) -> list[int]:
        # Hash placement has no spatial boundaries to straddle.
        """All partitions overlapping the instance MBR (see STPartitioner)."""
        return [self.assign(instance)]

    def boundaries(self) -> list[STBox]:
        """One ST box per partition (see STPartitioner)."""
        self._require_fitted()
        full = STBox(
            (-UNBOUNDED, -UNBOUNDED, -UNBOUNDED),
            (UNBOUNDED, UNBOUNDED, UNBOUNDED),
        )
        return [full] * self._n
