"""Regular-grid index with the analytic cell-range shortcut.

This implements the paper's "conversion with regular structures"
optimization (Section 4.2): when a collective structure's cells all have
the same size and densely tile the space, the cells an instance's MBR can
intersect are computed arithmetically —

    [max(0, (q_min - d_min) / d_interval), min(n-1, (q_max - d_min) / d_interval)]

per dimension — so no per-cell iteration is needed.  ``GridIndex``
generalizes this to 1-d (time series), 2-d (spatial map), and 3-d (raster)
regular structures.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Sequence

from repro.index.boxes import STBox


class GridIndex:
    """Analytic index over a dense regular grid of cells.

    Parameters
    ----------
    extent:
        The N-d box the grid tiles.
    shape:
        Cells per dimension, e.g. ``(24,)`` for hourly slots, ``(32, 32)``
        for a spatial grid, ``(10, 10, 24)`` for a raster.

    Cell ids are flattened C-order (last dimension fastest), matching
    :func:`numpy.ravel_multi_index` conventions so callers can cross-check.
    """

    def __init__(self, extent: STBox, shape: Sequence[int]):
        if len(shape) != extent.ndim:
            raise ValueError("shape must match extent dimensionality")
        if any(n <= 0 for n in shape):
            raise ValueError("grid shape entries must be positive")
        self.extent = extent
        self.shape = tuple(int(n) for n in shape)
        self._steps = tuple(
            (hi - lo) / n for lo, hi, n in zip(extent.mins, extent.maxs, self.shape)
        )
        if any(step <= 0 for step in self._steps):
            raise ValueError("extent must have positive length in every dimension")

    @property
    def n_cells(self) -> int:
        """Number of structure cells."""
        return math.prod(self.shape)

    def cell_box(self, cell_id: int) -> STBox:
        """Return the box of a flattened cell id."""
        idx = self.unflatten(cell_id)
        mins = tuple(
            lo + i * step
            for lo, i, step in zip(self.extent.mins, idx, self._steps)
        )
        maxs = tuple(m + step for m, step in zip(mins, self._steps))
        return STBox(mins, maxs)

    def all_cell_boxes(self) -> list[STBox]:
        """Every cell's box, in flattened-id order."""
        return [self.cell_box(i) for i in range(self.n_cells)]

    def flatten(self, idx: Sequence[int]) -> int:
        """Multi-index to flattened C-order cell id."""
        flat = 0
        for i, n in zip(idx, self.shape):
            flat = flat * n + i
        return flat

    def unflatten(self, cell_id: int) -> tuple[int, ...]:
        """Flattened cell id to multi-index."""
        if not 0 <= cell_id < self.n_cells:
            raise IndexError(f"cell id {cell_id} out of range")
        idx = []
        for n in reversed(self.shape):
            idx.append(cell_id % n)
            cell_id //= n
        return tuple(reversed(idx))

    def _dim_range(self, dim: int, q_min: float, q_max: float) -> range:
        """Indices along one dimension whose cells may intersect [q_min, q_max].

        This is the paper's formula with closed-boundary care: a query value
        exactly on a cell boundary matches both neighboring cells, mirroring
        the closed-interval semantics of ``Envelope`` and ``Duration``.
        """
        lo = self.extent.mins[dim]
        step = self._steps[dim]
        n = self.shape[dim]
        first = math.floor((q_min - lo) / step)
        last = math.floor((q_max - lo) / step)
        # Boundary-touching queries include the cell below the boundary.
        if q_min > lo and (q_min - lo) / step == float(first):
            first -= 1
        first = max(0, first)
        last = min(n - 1, last)
        if first > last:
            return range(0)
        return range(first, last + 1)

    def candidate_cells(self, box: STBox) -> list[int]:
        """Flattened ids of cells whose boxes intersect the query box.

        For MBR-equals-shape instances (points, rectangles, durations) this
        is exact; for general shapes it is a superset the caller refines
        with exact intersection tests — exactly the two-phase plan of
        Section 4.2.
        """
        if box.ndim != self.extent.ndim:
            raise ValueError("query box dimensionality mismatch")
        if not box.intersects(self.extent):
            return []
        ranges = [
            self._dim_range(d, box.mins[d], box.maxs[d])
            for d in range(self.extent.ndim)
        ]
        return [self.flatten(idx) for idx in product(*ranges)]

    def candidate_ranges_batch(self, mins, maxs):
        """Vectorized :meth:`_dim_range` over ``(n, ndim)`` query arrays.

        Returns ``(firsts, lasts)`` int64 arrays of shape ``(n, ndim)``:
        per row and dimension, the inclusive index range of cells the query
        box may intersect.  An empty result (non-intersecting query, or an
        inverted per-dimension range) is signaled by ``first > last`` in at
        least one dimension — callers must check before enumerating.

        The arithmetic replicates :meth:`_dim_range` exactly in float64 —
        same floor, same boundary-touch decrement, same clamps — so
        enumerating ``product(range(f, l+1)...)`` yields the identical cell
        list to :meth:`candidate_cells`.
        """
        from repro._deps import require_numpy

        np = require_numpy("GridIndex.candidate_ranges_batch")
        mins = np.asarray(mins, dtype=np.float64)
        maxs = np.asarray(maxs, dtype=np.float64)
        ndim = self.extent.ndim
        if mins.ndim != 2 or mins.shape[1] != ndim or mins.shape != maxs.shape:
            raise ValueError("query arrays must be matching (n, ndim) arrays")
        n_rows = mins.shape[0]
        firsts = np.empty((n_rows, ndim), dtype=np.int64)
        lasts = np.empty((n_rows, ndim), dtype=np.int64)
        # candidate_cells() returns [] for queries missing the extent before
        # running _dim_range at all; mirror that with a mask applied last.
        alive = np.ones(n_rows, dtype=bool)
        for d in range(ndim):
            lo = self.extent.mins[d]
            hi = self.extent.maxs[d]
            step = self._steps[d]
            n = self.shape[d]
            alive &= (mins[:, d] <= hi) & (maxs[:, d] >= lo)
            dmin = (mins[:, d] - lo) / step
            first = np.floor(dmin)
            first -= (mins[:, d] > lo) & (dmin == first)
            last = np.floor((maxs[:, d] - lo) / step)
            # Clamp in float64 before the int cast: query coordinates reach
            # the +-1e18 unbounded-query sentinels, which overflow int64
            # after division by small steps.
            firsts[:, d] = np.clip(first, 0.0, float(n)).astype(np.int64)
            lasts[:, d] = np.clip(last, -1.0, float(n - 1)).astype(np.int64)
        firsts[~alive, 0] = 1
        lasts[~alive, 0] = 0
        return firsts, lasts

    def cell_of_point(self, coords: Sequence[float]) -> int | None:
        """The single cell containing a point, or ``None`` when outside.

        Boundary points are assigned to the higher cell except at the
        extent's own max boundary, where they fall back to the last cell —
        so the mapping is total over the extent.
        """
        if len(coords) != self.extent.ndim:
            raise ValueError("coordinate dimensionality mismatch")
        idx = []
        for d, c in enumerate(coords):
            lo = self.extent.mins[d]
            hi = self.extent.maxs[d]
            if c < lo or c > hi:
                return None
            i = int((c - lo) / self._steps[d])
            idx.append(min(i, self.shape[d] - 1))
        return self.flatten(idx)
