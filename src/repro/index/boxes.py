"""N-dimensional boxes shared by the index structures.

The 3-d (x, y, t) box is the common currency between the spatial
:class:`~repro.geometry.Envelope` and the temporal
:class:`~repro.temporal.Duration`: selection queries, partition boundaries,
and R-tree nodes all reduce to it.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration


#: Sentinel magnitude for unconstrained query dimensions; matches the
#: partitioners' UNBOUNDED so query boxes and partition boundaries live on
#: the same (finite, JSON-safe) scale.
QUERY_UNBOUNDED = 1.0e18


def st_query_box(
    spatial: "Envelope | None", temporal: "Duration | None"
) -> "STBox":
    """The canonical 3-d (x, y, t) box of an ST range query.

    ``None`` for either dimension means "unconstrained" and widens that
    axis to ±:data:`QUERY_UNBOUNDED`.  Every layer that tests a query
    against stored extents — the Selector's per-partition R-tree probe and
    the metadata index's partition pruning — builds its box here, so the
    pruning predicate and the in-memory filter agree *by construction*: a
    metadata-pruned load and a full-scan load of the same query return
    identical results, including on boundary-touching queries (all boxes
    are closed on every side).
    """
    env = spatial or Envelope(
        -QUERY_UNBOUNDED, -QUERY_UNBOUNDED, QUERY_UNBOUNDED, QUERY_UNBOUNDED
    )
    dur = temporal or Duration(-QUERY_UNBOUNDED, QUERY_UNBOUNDED)
    return STBox.from_st(env, dur)


class STBox:
    """An axis-aligned box in N dimensions (closed on every side)."""

    __slots__ = ("mins", "maxs")

    def __init__(self, mins: Sequence[float], maxs: Sequence[float]):
        if len(mins) != len(maxs):
            raise ValueError("mins and maxs must have the same dimensionality")
        if not mins:
            raise ValueError("a box needs at least one dimension")
        for lo, hi in zip(mins, maxs):
            if lo > hi:
                raise ValueError(f"invalid box: min {lo} > max {hi}")
        object.__setattr__(self, "mins", tuple(float(v) for v in mins))
        object.__setattr__(self, "maxs", tuple(float(v) for v in maxs))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("STBox is immutable")

    # -- construction from domain objects ------------------------------------

    @classmethod
    def from_envelope(cls, env: Envelope) -> "STBox":
        """2-d box from a spatial envelope."""
        return cls((env.min_x, env.min_y), (env.max_x, env.max_y))

    @classmethod
    def from_duration(cls, duration: Duration) -> "STBox":
        """1-d box from a time interval."""
        return cls((duration.start,), (duration.end,))

    @classmethod
    def from_st(cls, env: Envelope, duration: Duration) -> "STBox":
        """3-d (x, y, t) box from envelope + duration."""
        return cls(
            (env.min_x, env.min_y, duration.start),
            (env.max_x, env.max_y, duration.end),
        )

    # -- conversion back -------------------------------------------------------

    def to_envelope(self) -> Envelope:
        """The first two dimensions as an Envelope."""
        if self.ndim < 2:
            raise ValueError("need at least 2 dimensions for an envelope")
        return Envelope(self.mins[0], self.mins[1], self.maxs[0], self.maxs[1])

    def to_duration(self) -> Duration:
        """Interpret the *last* dimension as time.

        For 1-d boxes this is the only dimension; for 3-d ST boxes it is the
        ``t`` axis by construction of :meth:`from_st`.
        """
        return Duration(self.mins[-1], self.maxs[-1])

    # -- geometry ----------------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.mins)

    def center(self) -> tuple[float, ...]:
        """Per-dimension midpoint."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.mins, self.maxs))

    def volume(self) -> float:
        """Product of per-dimension lengths."""
        vol = 1.0
        for lo, hi in zip(self.mins, self.maxs):
            vol *= hi - lo
        return vol

    def intersects(self, other: "STBox") -> bool:
        """True when the two geometries share any point."""
        if self.ndim != other.ndim:
            raise ValueError("dimensionality mismatch")
        for lo, hi, olo, ohi in zip(self.mins, self.maxs, other.mins, other.maxs):
            if olo > hi or ohi < lo:
                return False
        return True

    def contains(self, other: "STBox") -> bool:
        """True when the other box lies fully inside."""
        if self.ndim != other.ndim:
            raise ValueError("dimensionality mismatch")
        for lo, hi, olo, ohi in zip(self.mins, self.maxs, other.mins, other.maxs):
            if olo < lo or ohi > hi:
                return False
        return True

    def merge(self, other: "STBox") -> "STBox":
        """Smallest object covering both operands."""
        if self.ndim != other.ndim:
            raise ValueError("dimensionality mismatch")
        return STBox(
            tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    @classmethod
    def merge_all(cls, boxes: Sequence["STBox"]) -> "STBox":
        """Smallest box covering every input."""
        if not boxes:
            raise ValueError("cannot merge zero boxes")
        merged = boxes[0]
        for box in boxes[1:]:
            merged = merged.merge(box)
        return merged

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STBox):
            return NotImplemented
        return self.mins == other.mins and self.maxs == other.maxs

    def __hash__(self) -> int:
        return hash((self.mins, self.maxs))

    def __repr__(self) -> str:
        return f"STBox(mins={self.mins}, maxs={self.maxs})"

    def __getstate__(self):
        return (self.mins, self.maxs)

    def __setstate__(self, state):
        object.__setattr__(self, "mins", state[0])
        object.__setattr__(self, "maxs", state[1])
