"""Point-region quadtree.

Backs the quad-tree partitioner of Section 3.1: the tree is built over a
sample of record centroids, its leaves become partition regions, and lookup
maps a coordinate to the leaf that contains it.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.envelope import Envelope


class _QuadNode:
    __slots__ = ("bounds", "points", "children", "depth")

    def __init__(self, bounds: Envelope, depth: int):
        self.bounds = bounds
        self.points: list[tuple[float, float]] | None = []
        self.children: list["_QuadNode"] | None = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (holding points)."""
        return self.children is None


class QuadTree:
    """A quadtree over 2-d points with leaf splitting.

    ``capacity`` is the number of points a leaf may hold before it splits;
    ``max_depth`` caps recursion for degenerate inputs (all points equal).
    """

    def __init__(self, bounds: Envelope, capacity: int = 32, max_depth: int = 16):
        if capacity < 1:
            raise ValueError("leaf capacity must be positive")
        self.bounds = bounds
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _QuadNode(bounds, 0)
        self._size = 0

    @classmethod
    def build(
        cls,
        points: Iterable[tuple[float, float]],
        capacity: int = 32,
        max_depth: int = 16,
        bounds: Envelope | None = None,
    ) -> "QuadTree":
        """Build a tree over points, inferring bounds if needed."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a quadtree from zero points")
        if bounds is None:
            bounds = Envelope.of_points(pts)
        tree = cls(bounds, capacity, max_depth)
        for x, y in pts:
            tree.insert(x, y)
        return tree

    def __len__(self) -> int:
        return self._size

    def insert(self, x: float, y: float) -> None:
        """Insert a point; points outside the root bounds are clamped in.

        Clamping (rather than raising) matches the partitioner contract:
        every record must map to *some* partition even if the sample used
        to build the tree missed the extremes.
        """
        x = min(max(x, self.bounds.min_x), self.bounds.max_x)
        y = min(max(y, self.bounds.min_y), self.bounds.max_y)
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, x, y)
        node.points.append((x, y))
        self._size += 1
        if len(node.points) > self.capacity and node.depth < self.max_depth:
            self._split(node)

    def _split(self, node: _QuadNode) -> None:
        b = node.bounds
        mid_x = (b.min_x + b.max_x) / 2.0
        mid_y = (b.min_y + b.max_y) / 2.0
        node.children = [
            _QuadNode(Envelope(b.min_x, b.min_y, mid_x, mid_y), node.depth + 1),
            _QuadNode(Envelope(mid_x, b.min_y, b.max_x, mid_y), node.depth + 1),
            _QuadNode(Envelope(b.min_x, mid_y, mid_x, b.max_y), node.depth + 1),
            _QuadNode(Envelope(mid_x, mid_y, b.max_x, b.max_y), node.depth + 1),
        ]
        points = node.points
        node.points = None
        for x, y in points:
            child = self._child_for(node, x, y)
            child.points.append((x, y))

    @staticmethod
    def _child_for(node: _QuadNode, x: float, y: float) -> _QuadNode:
        b = node.bounds
        mid_x = (b.min_x + b.max_x) / 2.0
        mid_y = (b.min_y + b.max_y) / 2.0
        index = (1 if x >= mid_x else 0) + (2 if y >= mid_y else 0)
        return node.children[index]

    def leaves(self) -> list[Envelope]:
        """Leaf regions in deterministic (depth-first) order."""
        result = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node.bounds)
            else:
                stack.extend(reversed(node.children))
        return result

    def leaf_for(self, x: float, y: float) -> Envelope:
        """Region of the leaf containing (a clamped copy of) the point."""
        x = min(max(x, self.bounds.min_x), self.bounds.max_x)
        y = min(max(y, self.bounds.min_y), self.bounds.max_y)
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, x, y)
        return node.bounds
