"""Spatial and spatio-temporal indexes.

Three index families back the system, mirroring the paper:

* :class:`RTree` — STR-bulk-loaded R-tree over N-dimensional boxes.  Used
  per-partition during selection (3-d over x, y, t), and broadcast over
  *structure cells* during optimized conversion (1-d for time series, 2-d
  for spatial maps, 3-d for rasters; Section 4.2).
* :class:`QuadTree` — recursive spatial subdivision, backing the quad-tree
  partitioner of Section 3.1.
* :class:`GridIndex` — regular-grid index implementing the analytic
  index-range shortcut for *regular* structures (Section 4.2).
* :func:`xz2_index` — a simplified XZ2 space-filling-curve key, used by the
  GeoMesa-like baseline's entry-level on-disk index.
"""

from repro.index.boxes import STBox
from repro.index.rtree import RTree
from repro.index.quadtree import QuadTree
from repro.index.grid import GridIndex
from repro.index.xz2 import xz2_key, xz2_query_ranges

__all__ = [
    "STBox",
    "RTree",
    "QuadTree",
    "GridIndex",
    "xz2_key",
    "xz2_query_ranges",
]
