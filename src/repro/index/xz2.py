"""Simplified XZ2 space-filling-curve keys.

GeoMesa indexes non-point geometries with XZ2, an extension of the Z-order
curve that assigns each geometry a single curve key based on the smallest
"enlarged quadrant" that fully contains it.  The GeoMesa-like baseline in
this repo uses the implementation below for its entry-level on-disk index:
each record gets one key at ingestion, and a range query is answered by
enumerating the quadrants that intersect the query window.

This is a faithful *functional* reduction of XZ2 — it preserves the
properties the paper's comparison exercises (entry-level keys, per-record
index storage, coarse spatial pruning, no temporal awareness in the spatial
key) without reproducing GeoMesa's exact key encoding.
"""

from __future__ import annotations

from repro.geometry.envelope import Envelope

#: Default curve resolution, mirroring the paper's "XZ2-8bit" configuration:
#: 8 levels of quadrant refinement.
DEFAULT_LEVELS = 8


def _quadrant_sequence(env: Envelope, space: Envelope, levels: int) -> list[int]:
    """Quadrant digits (0-3) of the deepest enlarged quadrant covering env."""
    digits: list[int] = []
    lo_x, lo_y = space.min_x, space.min_y
    hi_x, hi_y = space.max_x, space.max_y
    for _ in range(levels):
        mid_x = (lo_x + hi_x) / 2.0
        mid_y = (lo_y + hi_y) / 2.0
        if env.max_x <= mid_x:
            right = False
        elif env.min_x >= mid_x:
            right = True
        else:
            break  # straddles the x split: stop refining
        if env.max_y <= mid_y:
            upper = False
        elif env.min_y >= mid_y:
            upper = True
        else:
            break  # straddles the y split
        digits.append((1 if right else 0) + (2 if upper else 0))
        lo_x, hi_x = (mid_x, hi_x) if right else (lo_x, mid_x)
        lo_y, hi_y = (mid_y, hi_y) if upper else (lo_y, mid_y)
    return digits


def _sequence_to_key(digits: list[int], levels: int) -> int:
    """Map a quadrant digit sequence to an integer key.

    Keys enumerate the quadtree in pre-order: a node's key is strictly less
    than all of its descendants', so the set of records inside any quadrant
    occupies a contiguous key range — the property GeoMesa range scans
    exploit.
    """
    # Number of nodes in a subtree rooted at depth d (inclusive of the root):
    # 1 + 4 + ... + 4^(levels-d) — precomputable, but levels is tiny.
    key = 0
    depth = 0
    for digit in digits:
        subtree = (4 ** (levels - depth) - 1) // 3  # nodes per child subtree
        key += 1 + digit * subtree
        depth += 1
    return key


def xz2_key(env: Envelope, space: Envelope, levels: int = DEFAULT_LEVELS) -> int:
    """XZ2 key of a geometry MBR within the indexed ``space``."""
    digits = _quadrant_sequence(env, space, levels)
    return _sequence_to_key(digits, levels)


def xz2_query_ranges(
    query: Envelope, space: Envelope, levels: int = DEFAULT_LEVELS
) -> list[tuple[int, int]]:
    """Key ranges (inclusive) that may contain geometries intersecting query.

    Walks the quadtree: a quadrant fully inside the query contributes its
    whole contiguous subtree range; a partially-overlapping quadrant
    contributes its own node key and recurses.  Ranges are merged when
    adjacent.
    """
    ranges: list[tuple[int, int]] = []

    def visit(node_key: int, depth: int, bounds: Envelope) -> None:
        if not bounds.intersects_envelope(query):
            return
        subtree = (4 ** (levels - depth + 1) - 1) // 3  # incl. this node
        if query.contains_envelope(bounds):
            ranges.append((node_key, node_key + subtree - 1))
            return
        ranges.append((node_key, node_key))
        if depth >= levels:
            return
        mid_x = (bounds.min_x + bounds.max_x) / 2.0
        mid_y = (bounds.min_y + bounds.max_y) / 2.0
        quads = [
            Envelope(bounds.min_x, bounds.min_y, mid_x, mid_y),
            Envelope(mid_x, bounds.min_y, bounds.max_x, mid_y),
            Envelope(bounds.min_x, mid_y, mid_x, bounds.max_y),
            Envelope(mid_x, mid_y, bounds.max_x, bounds.max_y),
        ]
        child_subtree = (4 ** (levels - depth) - 1) // 3
        for digit, quad in enumerate(quads):
            child_key = node_key + 1 + digit * child_subtree
            visit(child_key, depth + 1, quad)

    visit(0, 0, space)
    ranges.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in ranges:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
