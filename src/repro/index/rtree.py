"""STR-bulk-loaded R-tree over N-dimensional boxes.

The paper uses R-trees in three places and this one implementation serves
all of them:

* per-partition 3-d indexes built on the fly during selection (§3.1);
* 1/2/3-d indexes over *structure cells* broadcast to every executor for
  the optimized singular→collective conversion (§4.2);
* road-segment indexes accelerating candidate search in HMM map matching
  (§3.2.2).

Bulk loading uses the Sort-Tile-Recursive packing of Leutenegger et al.
(the same STR the paper's partitioner is named after): items are sorted by
center coordinate and recursively tiled into slabs so every leaf holds
roughly ``capacity`` entries.  The tree also counts intersection tests via
``stats`` so benchmarks can report the pruning factor, not just wall-clock.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from repro.index.boxes import STBox

T = TypeVar("T")


class _Node:
    __slots__ = ("box", "children", "entries")

    def __init__(
        self,
        box: STBox,
        children: list["_Node"] | None = None,
        entries: list[tuple[STBox, Any]] | None = None,
    ):
        self.box = box
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (holding entries)."""
        return self.entries is not None


class RTreeStats:
    """Counters updated by every query; cheap enough to always keep on."""

    __slots__ = ("queries", "node_tests", "entry_tests", "candidates")

    def __init__(self) -> None:
        self.queries = 0
        self.node_tests = 0
        self.entry_tests = 0
        # Entries returned across all queries.  Unlike node/entry test
        # counts, this is a pure function of the data and the queries (not
        # of tree shape), so scalar and packed-columnar indexes report
        # identical values — the parity suites compare it directly.
        self.candidates = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.node_tests = 0
        self.entry_tests = 0
        self.candidates = 0

    def __repr__(self) -> str:
        return (
            f"RTreeStats(queries={self.queries}, node_tests={self.node_tests}, "
            f"entry_tests={self.entry_tests}, candidates={self.candidates})"
        )


class RTree(Generic[T]):
    """A static (bulk-loaded) R-tree.

    Construction is via :meth:`build`; the tree is immutable afterwards,
    matching the paper's usage where indexes are built once per partition
    or broadcast once per conversion and never updated.
    """

    def __init__(self, root: _Node | None, ndim: int, size: int, capacity: int):
        self._root = root
        self._ndim = ndim
        self._size = size
        self._capacity = capacity
        self.stats = RTreeStats()
        # Lazily-built packed array mirror for query_batch: (PackedRTree,
        # payload list) aligned with all_entries() order, or None.
        self._packed_mirror: tuple[Any, list[T]] | None = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        items: Iterable[tuple[STBox, T]],
        capacity: int = 16,
    ) -> "RTree[T]":
        """Bulk-load an R-tree from ``(box, payload)`` pairs.

        ``capacity`` bounds both leaf fan-out and internal fan-out.  An
        empty input yields an empty tree whose queries return nothing.
        """
        if capacity < 2:
            raise ValueError("node capacity must be at least 2")
        entries = list(items)
        if not entries:
            return cls(None, 0, 0, capacity)
        ndim = entries[0][0].ndim
        for box, _ in entries:
            if box.ndim != ndim:
                raise ValueError("all boxes must share the same dimensionality")
        leaves = cls._pack_leaves(entries, capacity, ndim)
        root = cls._build_upward(leaves, capacity, ndim)
        return cls(root, ndim, len(entries), capacity)

    @staticmethod
    def _str_tile(
        items: list,
        capacity: int,
        ndim: int,
        key_center: Callable[[Any], tuple[float, ...]],
        dim: int,
    ) -> list[list]:
        """Recursively sort-tile ``items`` into groups of <= ``capacity``."""
        if len(items) <= capacity:
            return [items]
        if dim >= ndim:
            # All dimensions consumed; chop sequentially.
            return [items[i : i + capacity] for i in range(0, len(items), capacity)]
        n_groups = math.ceil(len(items) / capacity)
        # Number of slabs along this dimension: the (ndim-dim)-th root of the
        # total group count, the classic STR slab calculation.
        n_slabs = max(1, math.ceil(n_groups ** (1.0 / (ndim - dim))))
        slab_size = math.ceil(len(items) / n_slabs)
        items = sorted(items, key=lambda item: key_center(item)[dim])
        groups: list[list] = []
        for i in range(0, len(items), slab_size):
            slab = items[i : i + slab_size]
            groups.extend(RTree._str_tile(slab, capacity, ndim, key_center, dim + 1))
        return groups

    @classmethod
    def _pack_leaves(
        cls,
        entries: list[tuple[STBox, T]],
        capacity: int,
        ndim: int,
    ) -> list[_Node]:
        groups = cls._str_tile(
            entries, capacity, ndim, lambda item: item[0].center(), 0
        )
        leaves = []
        for group in groups:
            box = STBox.merge_all([b for b, _ in group])
            leaves.append(_Node(box, entries=list(group)))
        return leaves

    @classmethod
    def _build_upward(
        cls, nodes: list[_Node], capacity: int, ndim: int
    ) -> _Node:
        while len(nodes) > 1:
            groups = cls._str_tile(
                nodes, capacity, ndim, lambda node: node.box.center(), 0
            )
            parents = []
            for group in groups:
                box = STBox.merge_all([n.box for n in group])
                parents.append(_Node(box, children=list(group)))
            nodes = parents
        return nodes[0]

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._ndim

    @property
    def height(self) -> int:
        """Number of levels; 0 for an empty tree."""
        h = 0
        node = self._root
        while node is not None:
            h += 1
            node = None if node.is_leaf else node.children[0]
        return h

    #: Estimated per-node / per-entry heap cost used by :attr:`nbytes`.
    #: A ``_Node`` carries an ``STBox`` (two float tuples) plus slot
    #: pointers ≈ 200 bytes; an entry is an ``(STBox, payload)`` tuple
    #: whose box dominates ≈ 150 bytes (payloads belong to the caller and
    #: are not charged).
    _NODE_COST = 200
    _ENTRY_COST = 150

    @property
    def nbytes(self) -> int:
        """Estimated memory footprint of the tree's own storage, in bytes.

        Object trees have no exact byte count short of a heap walk; this
        counts nodes and entries once at documented per-item costs, which
        is stable, cheap, and accurate enough for cache byte budgets (the
        columnar structures report exact array sizes through the same
        attribute).
        """
        nodes = 0
        entries = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            nodes += 1
            if node.is_leaf:
                entries += len(node.entries)
            else:
                stack.extend(node.children)
        return nodes * self._NODE_COST + entries * self._ENTRY_COST

    def query(self, box: STBox) -> list[T]:
        """Return payloads whose boxes intersect ``box``."""
        return [payload for _, payload in self.query_entries(box)]

    def query_entries(self, box: STBox) -> list[tuple[STBox, T]]:
        """Return ``(box, payload)`` pairs intersecting the query box."""
        self.stats.queries += 1
        if self._root is None:
            return []
        if box.ndim != self._ndim:
            raise ValueError(
                f"query box has {box.ndim} dimensions, index has {self._ndim}"
            )
        results: list[tuple[STBox, T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_tests += 1
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                for entry_box, payload in node.entries:
                    self.stats.entry_tests += 1
                    if entry_box.intersects(box):
                        results.append((entry_box, payload))
            else:
                stack.extend(node.children)
        self.stats.candidates += len(results)
        return results

    def query_batch(self, boxes: Sequence[STBox]) -> list[list[T]]:
        """``query`` for many boxes at once, vectorized when numpy is up.

        With numpy available the tree lazily builds (and caches) a packed
        array mirror of its leaf entries and answers every box with
        level-at-a-time array intersections; probe counts are folded back
        into ``self.stats`` (``candidates`` matches the scalar path
        exactly; node/entry test counts reflect the packed tree's shape).
        Without numpy this is a plain loop over :meth:`query`.
        """
        from repro._deps import has_numpy

        if self._root is None or not has_numpy():
            return [self.query(box) for box in boxes]
        packed = self._packed_mirror
        if packed is None:
            from repro.columnar.packed_rtree import packed_tree_from_boxes

            entries = self.all_entries()
            packed = (
                packed_tree_from_boxes([b for b, _ in entries], self._capacity),
                [payload for _, payload in entries],
            )
            self._packed_mirror = packed
        tree, payloads = packed
        before = (tree.stats.node_tests, tree.stats.entry_tests)
        results = [
            [payloads[row] for row in tree.query_rows(box)] for box in boxes
        ]
        self.stats.queries += len(boxes)
        self.stats.node_tests += tree.stats.node_tests - before[0]
        self.stats.entry_tests += tree.stats.entry_tests - before[1]
        self.stats.candidates += sum(len(r) for r in results)
        return results

    def nearest(self, center: Sequence[float], k: int = 1) -> list[tuple[float, T]]:
        """Return the ``k`` entries nearest to a coordinate.

        Distance is Euclidean from the coordinate to each entry box (zero
        inside the box).  Used by map matching to shortlist candidate road
        segments; exactness is then re-established on the shortlist.
        """
        if self._root is None or k <= 0:
            return []
        if len(center) != self._ndim:
            raise ValueError("coordinate dimensionality mismatch")

        def box_distance(box: STBox) -> float:
            acc = 0.0
            for c, lo, hi in zip(center, box.mins, box.maxs):
                d = max(lo - c, c - hi, 0.0)
                acc += d * d
            return math.sqrt(acc)

        import heapq

        # Best-first search over (distance, tiebreak, node-or-entry).
        counter = 0
        heap: list[tuple[float, int, bool, Any]] = []
        heapq.heappush(heap, (box_distance(self._root.box), counter, False, self._root))
        results: list[tuple[float, T]] = []
        while heap and len(results) < k:
            dist, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                results.append((dist, item[1]))
                continue
            node = item
            if node.is_leaf:
                for entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap, (box_distance(entry[0]), counter, True, entry)
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap, (box_distance(child.box), counter, False, child)
                    )
        return results

    def all_entries(self) -> list[tuple[STBox, T]]:
        """Every (box, payload) pair in the tree, in leaf order."""
        if self._root is None:
            return []
        results = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                results.extend(node.entries)
            else:
                stack.extend(node.children)
        return results
