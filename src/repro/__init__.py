"""repro — a Python reproduction of ST4ML (SIGMOD 2023).

ST4ML is a machine-learning-oriented distributed spatio-temporal data
processing system built on Apache Spark.  This package reproduces the full
system — the Selection-Conversion-Extraction pipeline, the five ST
instances, the ST-aware partitioners (including the novel T-STR), the
on-disk metadata index, the conversion optimizations, HMM map matching —
plus every substrate it needs (a Spark-like dataflow engine, geometry,
indexes, storage) and the GeoSpark/GeoMesa-style baselines the paper
compares against.

Quickstart::

    from repro import EngineContext, Selector, TSTRPartitioner
    from repro.core.converters import Traj2RasterConverter
    from repro.core.extractors import RasterSpeedExtractor

    ctx = EngineContext(default_parallelism=8)
    selector = Selector(city_area, month, partitioner=TSTRPartitioner(4, 8))
    traj_rdd = selector.select(ctx, data_dir)
    raster_rdd = Traj2RasterConverter(raster_structure).convert(traj_rdd)
    speeds = RasterSpeedExtractor(unit="kmh").extract(raster_rdd)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.engine import EngineContext, RDD
from repro.geometry import Envelope, LineString, Point, Polygon
from repro.temporal import Duration
from repro.instances import (
    Entry,
    Event,
    Instance,
    Raster,
    SpatialMap,
    TimeSeries,
    Trajectory,
    TrajectoryPoint,
)
from repro.core import (
    InstanceRDD,
    Pipeline,
    RasterStructure,
    Selector,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.partitioners import (
    HashPartitioner,
    KDBPartitioner,
    QuadTreePartitioner,
    STRPartitioner,
    TBalancePartitioner,
    TSTRPartitioner,
)
from repro.obs import Tracer, profiled
from repro.stio import StDataset, load_dataset, save_dataset
from repro.stream import (
    IngestReport,
    StreamState,
    WindowedFlowExtractor,
    WindowedSpeedExtractor,
)

__version__ = "1.0.0"

__all__ = [
    "EngineContext",
    "RDD",
    "Envelope",
    "Point",
    "LineString",
    "Polygon",
    "Duration",
    "Entry",
    "Instance",
    "Event",
    "Trajectory",
    "TrajectoryPoint",
    "TimeSeries",
    "SpatialMap",
    "Raster",
    "Selector",
    "InstanceRDD",
    "Pipeline",
    "TimeSeriesStructure",
    "SpatialMapStructure",
    "RasterStructure",
    "HashPartitioner",
    "STRPartitioner",
    "TSTRPartitioner",
    "QuadTreePartitioner",
    "TBalancePartitioner",
    "KDBPartitioner",
    "StDataset",
    "save_dataset",
    "load_dataset",
    "IngestReport",
    "StreamState",
    "WindowedFlowExtractor",
    "WindowedSpeedExtractor",
    "Tracer",
    "profiled",
    "__version__",
]
