"""On-disk storage with partition-level ST metadata (paper Section 4.1).

The Scala original persists T-STR-partitioned data as Parquet files in
HDFS and keeps a metadata file of per-partition ST boundaries on the
master; selection then reads only the partitions whose boundary overlaps
the query.  This package reproduces those mechanics on a local
filesystem:

* :class:`StDataset` — a directory of partition block files plus a
  ``metadata.json`` sidecar recording each partition's record count and ST
  MBR;
* :func:`save_dataset` / :func:`load_dataset` — the write / pruned-read
  pair, with I/O counters (partitions read, records deserialized) that
  back the Figure 5 benchmarks;
* :mod:`repro.stio.formats` — record-level codecs between instances and
  plain tuples (the "ST4ML data standard" of the preprocessing step), plus
  CSV helpers including the ``ReadRaster`` structure reader of Section 3.4.
"""

from repro.stio.blockv2 import V2Block, encode_v2_block, open_v2_block, scan_v2_block
from repro.stio.metadata import BLOCK_FORMATS, DatasetMetadata, PartitionMeta
from repro.stio.dataset import StDataset, load_dataset, save_dataset
from repro.stio.formats import (
    decode_record,
    encode_record,
    read_raster_csv,
    write_raster_csv,
)

__all__ = [
    "BLOCK_FORMATS",
    "DatasetMetadata",
    "PartitionMeta",
    "StDataset",
    "save_dataset",
    "load_dataset",
    "encode_record",
    "decode_record",
    "read_raster_csv",
    "write_raster_csv",
    "V2Block",
    "encode_v2_block",
    "open_v2_block",
    "scan_v2_block",
]
