"""Record codecs and CSV helpers.

Instances are persisted as plain tuples (the "ST4ML-compatible data
standard" the preprocessing step of Section 3.1 converts raw datasets
into).  Tuples pickle an order of magnitude smaller and faster than the
object graphs, which is this layer's stand-in for Parquet's columnar
compactness.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.instances.base import Instance
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory
from repro.temporal.duration import Duration

#: Record type tags in on-disk tuples.
_EVENT = "E"
_TRAJ = "T"


def _encode_geometry(geom) -> tuple:
    if isinstance(geom, Point):
        return ("pt", geom.x, geom.y)
    if isinstance(geom, Envelope):
        return ("env", geom.min_x, geom.min_y, geom.max_x, geom.max_y)
    if isinstance(geom, LineString):
        return ("ls", geom.coords)
    if isinstance(geom, Polygon):
        return ("pg", geom.ring)
    raise TypeError(f"cannot encode geometry type {type(geom).__name__}")


def _decode_geometry(data: tuple):
    tag = data[0]
    if tag == "pt":
        return Point(data[1], data[2])
    if tag == "env":
        return Envelope(data[1], data[2], data[3], data[4])
    if tag == "ls":
        return LineString(data[1])
    if tag == "pg":
        return Polygon(data[1])
    raise ValueError(f"unknown geometry tag {tag!r}")


def encode_record(instance: Instance) -> tuple:
    """Flatten an Event or Trajectory into a plain on-disk tuple."""
    if isinstance(instance, Event):
        e = instance.entry
        return (
            _EVENT,
            _encode_geometry(e.spatial),
            e.temporal.start,
            e.temporal.end,
            e.value,
            instance.data,
        )
    if isinstance(instance, Trajectory):
        points = tuple(
            (e.spatial.x, e.spatial.y, e.temporal.start, e.value)
            for e in instance.entries
        )
        return (_TRAJ, points, instance.data)
    raise TypeError(
        f"on-disk format supports singular instances, got {type(instance).__name__}"
    )


def decode_record(record: tuple) -> Instance:
    """Inverse of :func:`encode_record`."""
    tag = record[0]
    if tag == _EVENT:
        _, geom, start, end, value, data = record
        return Event(_decode_geometry(geom), Duration(start, end), value, data)
    if tag == _TRAJ:
        _, points, data = record
        return Trajectory.of_points([tuple(p) for p in points], data)
    raise ValueError(f"unknown record tag {tag!r}")


# -- raster structure CSV (the ReadRaster helper of Section 3.4) ----------------


def read_raster_csv(path: str | Path) -> list[tuple[Polygon, Duration]]:
    """Read a raster structure file: rows of ``shape ; t_min ; t_max``.

    ``shape`` is a ``|``-separated list of ``x,y`` vertices (a polygon
    ring), mirroring the paper's per-line (shape, t_min, t_max) format.
    """
    cells = []
    with open(path, newline="") as f:
        reader = csv.reader(f, delimiter=";")
        for line_no, row in enumerate(reader, start=1):
            if not row or row[0].startswith("#"):
                continue
            if len(row) != 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 'shape;t_min;t_max', got {row!r}"
                )
            ring = []
            for pair in row[0].split("|"):
                x_str, y_str = pair.split(",")
                ring.append((float(x_str), float(y_str)))
            cells.append((Polygon(ring), Duration(float(row[1]), float(row[2]))))
    if not cells:
        raise ValueError(f"raster file {path} has no cells")
    return cells


def write_raster_csv(path: str | Path, cells: list[tuple[Polygon, Duration]]) -> None:
    """Inverse of :func:`read_raster_csv`."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, delimiter=";")
        for polygon, duration in cells:
            shape = "|".join(f"{x},{y}" for x, y in polygon.ring)
            writer.writerow([shape, duration.start, duration.end])


def write_features_csv(path: str | Path, rows: list[dict], columns: list[str]) -> None:
    """Save extracted features as CSV — the pipeline's terminal step."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c) for c in columns})
