"""The stio v2 block format: mmap-able columnar extents + row payloads.

A v1 block is one pickle of the whole partition, so even a
metadata-pruned load pays a full deserialization before the columnar
BoxTable can be built.  A v2 block splits the partition into two regions
so the selection hot path never touches bytes it does not need:

* **extent columns** — the six structure-of-arrays BoxTable columns
  (``xmin/ymin/tmin/xmax/ymax/tmax`` as float64) plus the ``box_exact``
  mask, laid out so a reader can ``mmap`` them directly and run the
  vectorized ``intersects_box`` kernel straight off disk;
* **payload region** — each record pickled *individually*, with an
  ``int64`` offset index, so only the rows surviving the extent mask are
  ever unpickled.

Layout (all little-endian, section offsets recorded in the header)::

    [ header 64B ][ 6 × n float64 columns ][ n × u8 box_exact ]
    [ (n+1) × i64 payload offsets ][ concatenated row pickles ]

The ``filterable`` header flag is cleared when any record refuses
``st_bounds()`` (pickle-codec checkpoint payloads): such blocks decode
whole, exactly like v1 — pushdown is an optimization, never a semantics
change.  :class:`V2Block` pickles as its *path* and re-opens (re-mmaps)
on the other side, so shipping a block handle to a process worker moves a
filename, not megabytes; ndarray views taken from it ride pickle
protocol 5's out-of-band buffers when they are captured by stage
closures.
"""

from __future__ import annotations

import pickle
import struct
from pathlib import Path
from typing import Sequence

from repro._deps import require_numpy
from repro.index.boxes import STBox
from repro.stio.formats import decode_record, encode_record

MAGIC = b"STB2"
BLOCK_VERSION = 1
HEADER_SIZE = 64
FLAG_FILTERABLE = 1

#: magic, version, flags, n_rows, columns_off, exact_off, index_off, payload_off
_HEADER = struct.Struct("<4sHHQQQQQ")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _row_extent(record) -> tuple[float, float, float, float, float, float, bool]:
    """One record's ``(xmin, ymin, tmin, xmax, ymax, tmax, box_exact)``."""
    from repro.geometry.envelope import Envelope
    from repro.geometry.point import Point

    bounds = record.st_bounds()
    entries = record.entries
    exact = len(entries) == 1 and isinstance(entries[0].spatial, (Point, Envelope))
    return (*bounds, exact)


def encode_v2_block(records: Sequence, codec: str) -> bytes:
    """Serialize one partition into the v2 on-disk layout."""
    np = require_numpy("stio v2 block format")
    n = len(records)
    xmin = np.zeros(n, dtype=np.float64)
    ymin = np.zeros(n, dtype=np.float64)
    tmin = np.zeros(n, dtype=np.float64)
    xmax = np.zeros(n, dtype=np.float64)
    ymax = np.zeros(n, dtype=np.float64)
    tmax = np.zeros(n, dtype=np.float64)
    box_exact = np.zeros(n, dtype=np.uint8)
    offsets = np.zeros(n + 1, dtype=np.int64)
    payloads = []
    filterable = True
    for i, record in enumerate(records):
        row = encode_record(record) if codec == "tuple" else record
        data = pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)
        payloads.append(data)
        offsets[i + 1] = offsets[i] + len(data)
        if filterable:
            try:
                (
                    xmin[i], ymin[i], tmin[i],
                    xmax[i], ymax[i], tmax[i],
                    box_exact[i],
                ) = _row_extent(record)
            except Exception:
                # A payload without an ST extent (partial collective
                # checkpoint state) poisons pushdown for the whole block:
                # a zeroed row would be wrongly masked out.
                filterable = False
    if not filterable:
        for column in (xmin, ymin, tmin, xmax, ymax, tmax):
            column.fill(0.0)
        box_exact.fill(0)

    columns_off = HEADER_SIZE
    exact_off = columns_off + 6 * n * 8
    index_off = _align8(exact_off + n)
    payload_off = index_off + (n + 1) * 8
    header = _HEADER.pack(
        MAGIC,
        BLOCK_VERSION,
        FLAG_FILTERABLE if filterable else 0,
        n,
        columns_off,
        exact_off,
        index_off,
        payload_off,
    )
    parts = [header, b"\x00" * (HEADER_SIZE - len(header))]
    for column in (xmin, ymin, tmin, xmax, ymax, tmax):
        parts.append(column.tobytes())
    parts.append(box_exact.tobytes())
    parts.append(b"\x00" * (index_off - exact_off - n))
    parts.append(offsets.tobytes())
    parts.extend(payloads)
    return b"".join(parts)


class V2Block:
    """A zero-copy read handle over one v2 block file.

    The whole file is mapped once (``mmap=True``, the default) and every
    column is an 8-aligned ndarray view into that single map — opening a
    block reads 64 header bytes and touches nothing else until a kernel
    or a row decode faults the pages it actually needs.  ``mmap=False``
    reads the file into memory instead (used for in-memory round-trip
    checks).  Pickling a block ships only its path; the receiving process
    re-opens (re-maps) it locally.
    """

    __slots__ = (
        "path", "n", "filterable",
        "xmin", "ymin", "tmin", "xmax", "ymax", "tmax",
        "box_exact", "_buf", "_offsets", "_payload_off",
    )

    def __init__(self, path: str | Path, mmap: bool = True):
        np = require_numpy("stio v2 block format")
        self.path = Path(path)
        with open(self.path, "rb") as f:
            raw_header = f.read(HEADER_SIZE)
        if len(raw_header) < _HEADER.size:
            raise ValueError(f"{self.path.name}: truncated v2 block header")
        magic, version, flags, n, columns_off, exact_off, index_off, payload_off = (
            _HEADER.unpack(raw_header[: _HEADER.size])
        )
        if magic != MAGIC:
            raise ValueError(f"{self.path.name}: not a v2 block (bad magic {magic!r})")
        if version > BLOCK_VERSION:
            raise ValueError(
                f"{self.path.name}: v2 block version {version} is newer than "
                f"supported ({BLOCK_VERSION})"
            )
        if mmap:
            buf = np.memmap(self.path, dtype=np.uint8, mode="r")
        else:
            buf = np.frombuffer(self.path.read_bytes(), dtype=np.uint8)
        if payload_off > len(buf):
            raise ValueError(f"{self.path.name}: truncated v2 block body")
        self.n = int(n)
        self.filterable = bool(flags & FLAG_FILTERABLE)
        self._buf = buf

        # type=np.ndarray drops the memmap subclass from each view (same
        # mapped memory, zero copy): plain ndarrays are what numpy ships
        # through pickle protocol 5's out-of-band buffers when a stage
        # closure captures a BoxTable built over these columns — a memmap
        # subclass would serialize in-band instead.
        def f64(offset: int):
            return buf[offset : offset + self.n * 8].view(
                dtype=np.float64, type=np.ndarray
            )

        self.xmin = f64(columns_off)
        self.ymin = f64(columns_off + self.n * 8)
        self.tmin = f64(columns_off + 2 * self.n * 8)
        self.xmax = f64(columns_off + 3 * self.n * 8)
        self.ymax = f64(columns_off + 4 * self.n * 8)
        self.tmax = f64(columns_off + 5 * self.n * 8)
        self.box_exact = buf[exact_off : exact_off + self.n].view(
            dtype=np.bool_, type=np.ndarray
        )
        self._offsets = buf[index_off : index_off + (self.n + 1) * 8].view(
            dtype=np.int64, type=np.ndarray
        )
        self._payload_off = int(payload_off)
        if self.n and (
            len(self._offsets) != self.n + 1
            or self._payload_off + int(self._offsets[-1]) > len(buf)
        ):
            raise ValueError(f"{self.path.name}: truncated v2 block payload region")

    def __len__(self) -> int:
        return self.n

    def __reduce__(self):
        # Zero-copy shipping: only the path travels; the worker re-mmaps.
        return (V2Block, (str(self.path),))

    # -- extent kernels (straight off the mmap) ------------------------------------

    def intersects_box(self, box: STBox):
        """Vectorized closed-interval ST-range mask, one bool per row."""
        (qx0, qy0, qt0), (qx1, qy1, qt1) = box.mins, box.maxs
        return (
            (self.xmin <= qx1)
            & (self.xmax >= qx0)
            & (self.ymin <= qy1)
            & (self.ymax >= qy0)
            & (self.tmin <= qt1)
            & (self.tmax >= qt0)
        )

    def candidate_rows(self, box: STBox):
        """Sorted row indices whose extents intersect ``box``."""
        np = require_numpy("stio v2 block format")
        return np.nonzero(self.intersects_box(box))[0]

    def boxtable(self, records: list):
        """A :class:`~repro.columnar.boxtable.BoxTable` over the mmapped
        columns, with ``records`` (the fully decoded partition) as the
        row indirection — ``None`` when the block is not filterable."""
        if not self.filterable:
            return None
        from repro.columnar.boxtable import BoxTable

        return BoxTable(
            self.xmin, self.ymin, self.tmin,
            self.xmax, self.ymax, self.tmax,
            records, self.box_exact,
        )

    # -- payload decode -------------------------------------------------------------

    def _decode_row(self, row: int, codec: str):
        start = self._payload_off + int(self._offsets[row])
        end = self._payload_off + int(self._offsets[row + 1])
        value = pickle.loads(memoryview(self._buf[start:end]))
        return decode_record(value) if codec == "tuple" else value

    def decode_rows(self, rows, codec: str) -> list:
        """Unpickle only the given rows (the pruned-load payload path)."""
        return [self._decode_row(int(r), codec) for r in rows]

    def decode_all(self, codec: str) -> list:
        """Unpickle every row (full scan / residency load)."""
        return self.decode_rows(range(self.n), codec)

    # -- byte accounting (LoadStats currency) ---------------------------------------

    @property
    def index_nbytes(self) -> int:
        """Bytes before the payload region: header + columns + offsets."""
        return self._payload_off

    def payload_nbytes(self, rows=None) -> int:
        """Payload bytes of ``rows`` (all rows when ``None``)."""
        if self.n == 0:
            return 0
        if rows is None:
            return int(self._offsets[-1])
        starts = self._offsets[:-1]
        ends = self._offsets[1:]
        return int((ends[rows] - starts[rows]).sum())


def open_v2_block(path: str | Path, mmap: bool = True) -> V2Block:
    """Open one v2 block file for zero-copy reading."""
    return V2Block(path, mmap=mmap)


def scan_v2_block(path: str | Path, query_box: STBox | None) -> tuple[int, int]:
    """``(records, bytes)`` a pushdown read of ``path`` would load.

    Runs the extent mask off the mmap without decoding any payload — this
    is how the disk RDD accounts a read *before* shipping itself to
    process workers, where driver-side stats are unreachable; the numbers
    match what the worker-side compute observes, on every backend.
    """
    block = open_v2_block(path)
    if query_box is None or not block.filterable:
        return block.n, block.index_nbytes + block.payload_nbytes()
    rows = block.candidate_rows(query_box)
    return len(rows), block.index_nbytes + block.payload_nbytes(rows)
