"""Partitioned on-disk datasets with metadata-pruned loading."""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox
from repro.instances.base import Instance
from repro.stio.formats import decode_record, encode_record
from repro.stio.metadata import METADATA_FILENAME, DatasetMetadata, PartitionMeta
from repro.temporal.duration import Duration

if TYPE_CHECKING:  # pragma: no cover
    from repro.partitioners.base import STPartitioner


@dataclass
class LoadStats:
    """I/O accounting for one load — the currency of Figure 5.

    ``partitions_total`` vs ``partitions_read`` is the pruning ratio;
    ``records_loaded`` is what Figure 5c/d plot as "memory loaded".
    ``partitions_selected`` is known at :meth:`StDataset.read` time (how
    many partitions survived metadata pruning), while ``partitions_read``
    counts the *distinct* block files deserialized so far — they converge
    once every partition has been computed, and lineage recomputation
    (retries, a second shuffle pass, post-demotion re-evaluation) never
    double-counts a block.  ``partitions_quarantined``
    counts corrupt block files skipped under ``on_corrupt="quarantine"``
    (the graceful-degradation alternative to aborting the load).
    """

    partitions_total: int = 0
    partitions_selected: int = 0
    partitions_read: int = 0
    records_loaded: int = 0
    bytes_read: int = 0
    files: list[str] = field(default_factory=list)
    partitions_quarantined: int = 0
    quarantined_files: list[str] = field(default_factory=list)


class _DiskPartitionRDD(RDD):
    """Source RDD whose partitions deserialize lazily from block files.

    ``on_corrupt`` decides what an undecodable block does: ``"raise"``
    (the default) surfaces :class:`~repro.engine.errors.CorruptPartitionError`
    through the retry loop, ``"quarantine"`` skips the block — an empty
    partition — and counts it in ``LoadStats.partitions_quarantined``.
    An active fault plan's ``corrupt_read`` rules mangle the bytes *in
    memory* after a clean read, so injected corruption is transient: the
    retry's re-read recovers, and quarantine stays reserved for genuinely
    bad on-disk blocks.
    """

    def __init__(
        self,
        ctx: EngineContext,
        directory: Path,
        metas: list[PartitionMeta],
        stats: LoadStats,
        codec: str = "tuple",
        on_corrupt: str = "raise",
    ):
        super().__init__(ctx, max(1, len(metas)))
        self._directory = directory
        self._metas = metas
        self._stats = stats
        self._codec = codec
        self._on_corrupt = on_corrupt

    def _compute(self, split: int) -> list:
        if not self._metas:
            return []
        meta = self._metas[split]
        path = self._directory / meta.filename
        raw = path.read_bytes()
        plan = getattr(self.ctx, "fault_plan", None)
        if plan is not None:
            mangled = plan.corrupt_read(path, raw)
            if mangled is not raw:
                from repro.engine.errors import InjectedFault

                # Raise instead of decoding garbage: the retry loop's
                # re-read sees the (clean) on-disk bytes and recovers.
                raise InjectedFault(
                    f"injected corrupt read of {meta.filename}",
                    site=meta.filename,
                )
        try:
            records = pickle.loads(raw)
        except Exception as exc:
            from repro.engine.errors import CorruptPartitionError

            if self._on_corrupt == "quarantine":
                self._stats.partitions_quarantined += 1
                self._stats.quarantined_files.append(meta.filename)
                return []
            raise CorruptPartitionError(meta.filename, repr(exc)) from exc
        if meta.filename not in self._stats.files:
            # Dedupe on filename: lineage recomputation (a second shuffle
            # pass, a retry, a post-demotion re-evaluation) re-reads the
            # same block, but "memory loaded" — the Figure 5 currency —
            # counts each block once, identically on every backend.
            self._stats.partitions_read += 1
            self._stats.records_loaded += len(records)
            self._stats.bytes_read += len(raw)
            self._stats.files.append(meta.filename)
        if self._codec == "pickle":
            return list(records)
        return [decode_record(r) for r in records]

    def __getstate__(self):
        # Shipping this source to process workers means the blocks are read
        # worker-side, where mutations of the driver's LoadStats are
        # invisible.  Account for the whole read now, from metadata — exact,
        # since block count and file size equal what _compute observes.
        # Per-file dedupe (not an all-or-nothing guard): after a backend
        # demotion mid-job, some blocks may already have been read — and
        # accounted — driver-side.
        for meta in self._metas:
            if meta.filename in self._stats.files:
                continue
            self._stats.partitions_read += 1
            self._stats.records_loaded += meta.count
            self._stats.bytes_read += (self._directory / meta.filename).stat().st_size
            self._stats.files.append(meta.filename)
        return dict(self.__dict__)


class StDataset:
    """A directory holding one block file per partition + ``metadata.json``.

    This is the engine-facing face of Section 4.1: :meth:`write` persists a
    partitioned layout with its boundaries, :meth:`read` returns a lazy RDD
    over only the partitions surviving metadata pruning.
    """

    BLOCK_PATTERN = "part-{:05d}.pkl"

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    # -- writing ------------------------------------------------------------------

    @staticmethod
    def _encode_block(records: Sequence, codec: str) -> bytes:
        """One partition's on-disk bytes under ``codec``.

        ``"tuple"`` routes through :func:`~repro.stio.formats.encode_record`
        (compact, schema-checked); ``"pickle"`` stores records verbatim —
        lossless for anything picklable, which is what checkpoints need
        (replica flags, partial collective instances).
        """
        if codec == "pickle":
            encoded: list = list(records)
        elif codec == "tuple":
            encoded = [encode_record(r) for r in records]
        else:
            raise ValueError(f"unknown block codec {codec!r}")
        return pickle.dumps(encoded, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _block_bounds(
        records: Sequence,
        boundaries: Sequence[STBox] | None,
        index: int,
        codec: str,
    ) -> STBox:
        if records:
            if codec == "pickle":
                # Checkpoint payloads may not expose st_box (partial
                # collective instances); pruning is off for them anyway.
                try:
                    return STBox.merge_all([r.st_box() for r in records])
                except Exception:
                    return STBox((0.0, 0.0, 0.0), (0.0, 0.0, 0.0))
            return STBox.merge_all([r.st_box() for r in records])
        if boundaries is not None and index < len(boundaries):
            return boundaries[index]
        return STBox((0.0, 0.0, 0.0), (0.0, 0.0, 0.0))

    @classmethod
    def write(
        cls,
        directory: str | Path,
        partitions: Sequence[Sequence[Instance]],
        instance_type: str,
        boundaries: Sequence[STBox] | None = None,
        codec: str = "tuple",
    ) -> "StDataset":
        """Persist partition lists and build the metadata index.

        Per-partition bounds recorded in the metadata are the MBRs of the
        *actual* records (tight pruning); ``boundaries`` — the theoretical
        partitioner cells — are accepted for API parity but only used for
        partitions that hold no records.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Rewriting an existing dataset in place (re-index / repartition)
        # is an edit like any other: continue its generation counter so
        # long-lived readers keyed on it (the serve result cache) miss.
        generation = 0
        if (directory / METADATA_FILENAME).exists():
            try:
                generation = DatasetMetadata.load(directory).generation + 1
            except (ValueError, FileNotFoundError):
                generation = 1
        metas = []
        for i, records in enumerate(partitions):
            filename = cls.BLOCK_PATTERN.format(i)
            (directory / filename).write_bytes(cls._encode_block(records, codec))
            bounds = cls._block_bounds(records, boundaries, i, codec)
            metas.append(PartitionMeta(filename=filename, count=len(records), bounds=bounds))
        DatasetMetadata(
            instance_type=instance_type,
            partitions=metas,
            codec=codec,
            generation=generation,
        ).save(directory)
        return cls(directory)

    @classmethod
    def write_rdd(
        cls,
        directory: str | Path,
        rdd: RDD,
        instance_type: str,
        partitioner: "STPartitioner | None" = None,
        sample_fraction: float = 0.1,
    ) -> "StDataset":
        """Optionally ST-partition an RDD, then persist it.

        This is the offline index-generation step: ``TSTRPartitioner`` +
        ``write_rdd`` together implement the ``stPartitionWithInfo`` /
        ``toDisk`` code of Section 4.1.
        """
        boundaries = None
        if partitioner is not None:
            rdd, boundaries = partitioner.partition_with_info(
                rdd, sample_fraction=sample_fraction
            )
        return cls.write(
            directory, rdd._collect_partitions(), instance_type, boundaries
        )

    def append(
        self,
        partitions: Sequence[Sequence[Instance]],
        boundaries: Sequence[STBox] | None = None,
    ) -> "StDataset":
        """Add a newly indexed batch to an existing dataset.

        The periodic-indexing workflow of Section 4.1's discussion:
        "application programmers may periodically index the new group of
        data and merge the metadata file with the existing ones."  New
        block files continue the existing numbering; the metadata files
        are merged.
        """
        existing = self.metadata()
        offset = len(existing.partitions)
        new_metas = []
        for i, records in enumerate(partitions):
            filename = self.BLOCK_PATTERN.format(offset + i)
            (self.directory / filename).write_bytes(
                self._encode_block(records, existing.codec)
            )
            bounds = self._block_bounds(records, boundaries, i, existing.codec)
            new_metas.append(
                PartitionMeta(filename=filename, count=len(records), bounds=bounds)
            )
        merged = existing.merged_with(
            DatasetMetadata(
                instance_type=existing.instance_type,
                partitions=new_metas,
                codec=existing.codec,
            )
        )
        merged.save(self.directory)
        return self

    def append_rdd(
        self,
        rdd: RDD,
        partitioner: "STPartitioner | None" = None,
        sample_fraction: float = 0.1,
    ) -> "StDataset":
        """Partition (optionally) and append an RDD batch; see :meth:`append`."""
        boundaries = None
        if partitioner is not None:
            rdd, boundaries = partitioner.partition_with_info(
                rdd, sample_fraction=sample_fraction
            )
        return self.append(rdd._collect_partitions(), boundaries)

    # -- reading -------------------------------------------------------------------

    def metadata(self) -> DatasetMetadata:
        """Load the dataset's metadata file."""
        return DatasetMetadata.load(self.directory)

    def read_block(self, meta: PartitionMeta, codec: str | None = None) -> list:
        """Eagerly read and decode one partition's block file.

        The resident-block path of the ``repro serve`` daemon: unlike
        :meth:`read` (a lazy RDD that re-reads and re-decodes per
        evaluation), this returns a plain list the caller can keep — the
        stable list identity is what lets the per-partition
        selection-index cache hit across queries.  ``codec`` defaults to
        the dataset's metadata codec.
        """
        if codec is None:
            codec = self.metadata().codec
        records = pickle.loads((self.directory / meta.filename).read_bytes())
        if codec == "pickle":
            return list(records)
        return [decode_record(r) for r in records]

    def read(
        self,
        ctx: EngineContext,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
        use_metadata: bool = True,
        on_corrupt: str = "raise",
    ) -> tuple[RDD, LoadStats]:
        """A lazy RDD over the partitions that may contain matching data.

        ``use_metadata=False`` loads everything — the "native Spark" mode
        Figure 5 compares against.  The returned RDD still needs in-memory
        fine-grained filtering (step (3) of Figure 4); the Selector does
        that with per-partition R-trees.  ``on_corrupt="quarantine"``
        degrades gracefully on undecodable block files: the partition
        loads empty and ``LoadStats.partitions_quarantined`` counts it,
        instead of the default :class:`~repro.engine.errors.CorruptPartitionError`.
        """
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError("on_corrupt must be 'raise' or 'quarantine'")
        meta = self.metadata()
        if use_metadata:
            selected = meta.select_partitions(spatial, temporal)
        else:
            selected = list(meta.partitions)
        stats = LoadStats(
            partitions_total=len(meta.partitions),
            partitions_selected=len(selected),
        )
        rdd = _DiskPartitionRDD(
            ctx, self.directory, selected, stats, codec=meta.codec, on_corrupt=on_corrupt
        )
        return rdd, stats


def save_dataset(
    directory: str | Path,
    instances: Sequence[Instance],
    instance_type: str,
    partitioner: "STPartitioner | None" = None,
    num_partitions: int = 8,
    ctx: EngineContext | None = None,
) -> StDataset:
    """Convenience writer from a plain instance list."""
    own_ctx = ctx or EngineContext(default_parallelism=num_partitions)
    rdd = own_ctx.parallelize(instances, num_partitions)
    return StDataset.write_rdd(directory, rdd, instance_type, partitioner)


def load_dataset(
    ctx: EngineContext,
    directory: str | Path,
    spatial: Envelope | None = None,
    temporal: Duration | None = None,
    use_metadata: bool = True,
    on_corrupt: str = "raise",
) -> tuple[RDD, LoadStats]:
    """Convenience reader; see :meth:`StDataset.read`."""
    return StDataset(directory).read(ctx, spatial, temporal, use_metadata, on_corrupt)
