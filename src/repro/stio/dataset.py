"""Partitioned on-disk datasets with metadata-pruned loading."""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox, st_query_box
from repro.instances.base import Instance
from repro.stio.blockv2 import encode_v2_block, open_v2_block, scan_v2_block
from repro.stio.formats import decode_record, encode_record
from repro.stio.metadata import (
    BLOCK_FORMATS,
    METADATA_FILENAME,
    DatasetMetadata,
    PartitionMeta,
)
from repro.temporal.duration import Duration

if TYPE_CHECKING:  # pragma: no cover
    from repro.partitioners.base import STPartitioner
    from repro.stream.ingest import IngestReport


@dataclass
class LoadStats:
    """I/O accounting for one load — the currency of Figure 5.

    ``partitions_total`` vs ``partitions_read`` is the pruning ratio;
    ``records_loaded`` is what Figure 5c/d plot as "memory loaded" — for
    v2 blocks under query pushdown that is the rows whose payloads were
    actually unpickled, which is the whole point of the format.
    ``partitions_selected`` is known at :meth:`StDataset.read` time (how
    many partitions survived metadata pruning), while ``partitions_read``
    counts the *distinct* block files deserialized so far — they converge
    once every partition has been computed, and lineage recomputation
    (retries, a second shuffle pass, post-demotion re-evaluation) never
    double-counts a block.  ``partitions_quarantined``
    counts corrupt block files skipped under ``on_corrupt="quarantine"``
    (the graceful-degradation alternative to aborting the load).

    All mutation goes through the ``note_*`` methods, which serialize on
    an internal lock: the thread backend evaluates partitions of one load
    concurrently, and unlocked ``+=`` on shared counters drops updates.
    """

    partitions_total: int = 0
    partitions_selected: int = 0
    partitions_read: int = 0
    records_loaded: int = 0
    bytes_read: int = 0
    files: set[str] = field(default_factory=set)
    partitions_quarantined: int = 0
    quarantined_files: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def seen(self, filename: str) -> bool:
        """Has this block already been accounted?"""
        with self._lock:
            return filename in self.files

    def note_block(self, filename: str, records: int, nbytes: int) -> bool:
        """Account one decoded block exactly once; True when newly counted.

        Dedupe on filename (an O(1) set probe, not a list scan): lineage
        recomputation — a second shuffle pass, a retry, a post-demotion
        re-evaluation — re-reads the same block, but "memory loaded"
        counts each block once, identically on every backend.
        """
        with self._lock:
            if filename in self.files:
                return False
            self.files.add(filename)
            self.partitions_read += 1
            self.records_loaded += records
            self.bytes_read += nbytes
            return True

    def note_quarantined(self, filename: str) -> None:
        """Count one undecodable block skipped under ``on_corrupt="quarantine"``."""
        with self._lock:
            if filename not in self.quarantined_files:
                self.partitions_quarantined += 1
                self.quarantined_files.append(filename)

    def __getstate__(self) -> dict:
        # Ships inside stage closures to process workers; the lock stays
        # behind (worker-side stats are a throwaway copy anyway — see
        # _DiskPartitionRDD.__getstate__).
        state = {k: getattr(self, k) for k in self.__dataclass_fields__}
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._lock = threading.Lock()


class _DiskPartitionRDD(RDD):
    """Source RDD whose partitions deserialize lazily from block files.

    ``on_corrupt`` decides what an undecodable block does: ``"raise"``
    (the default) surfaces :class:`~repro.engine.errors.CorruptPartitionError`
    through the retry loop, ``"quarantine"`` skips the block — an empty
    partition — and counts it in ``LoadStats.partitions_quarantined``.
    An active fault plan's ``corrupt_read`` rules mangle the bytes *in
    memory* after a clean read, so injected corruption is transient: the
    retry's re-read recovers, and quarantine stays reserved for genuinely
    bad on-disk blocks.

    For ``block_format="v2"`` with a ``query_box``, the compute is the
    pruned-load fast path: mmap the extent columns, run the vectorized
    mask straight off disk, and unpickle payload bytes only for surviving
    rows.  Shipping this RDD to a process worker moves the directory path
    and partition metadata — never block bytes; each worker mmaps its own
    blocks locally.
    """

    def __init__(
        self,
        ctx: EngineContext,
        directory: Path,
        metas: list[PartitionMeta],
        stats: LoadStats,
        codec: str = "tuple",
        on_corrupt: str = "raise",
        block_format: str = "v1",
        query_box: STBox | None = None,
    ):
        super().__init__(ctx, max(1, len(metas)))
        self._directory = directory
        self._metas = metas
        self._stats = stats
        self._codec = codec
        self._on_corrupt = on_corrupt
        self._block_format = block_format
        self._query_box = query_box

    def _inject_corrupt_read(self, path: Path) -> None:
        """Honor an active fault plan's ``corrupt_read`` rules.

        v1 mangles the actually-read bytes; v2 never reads the whole file,
        so the plan decides on a small probe instead — the decision (and
        its per-file read counter) depends only on the path, keeping chaos
        runs format-agnostic.  Raising instead of decoding garbage means
        the retry loop's re-read sees the (clean) on-disk bytes and
        recovers.
        """
        plan = getattr(self.ctx, "fault_plan", None)
        if plan is None:
            return
        probe = b"stb2"
        if plan.corrupt_read(path, probe) is not probe:
            from repro.engine.errors import InjectedFault

            raise InjectedFault(
                f"injected corrupt read of {path.name}", site=path.name
            )

    def _compute(self, split: int) -> list:
        if not self._metas:
            return []
        meta = self._metas[split]
        path = self._directory / meta.filename
        if self._block_format == "v2":
            return self._compute_v2(meta, path)
        raw = path.read_bytes()
        plan = getattr(self.ctx, "fault_plan", None)
        if plan is not None:
            mangled = plan.corrupt_read(path, raw)
            if mangled is not raw:
                from repro.engine.errors import InjectedFault

                # Raise instead of decoding garbage: the retry loop's
                # re-read sees the (clean) on-disk bytes and recovers.
                raise InjectedFault(
                    f"injected corrupt read of {meta.filename}",
                    site=meta.filename,
                )
        try:
            records = pickle.loads(raw)
        except Exception as exc:
            from repro.engine.errors import CorruptPartitionError

            if self._on_corrupt == "quarantine":
                self._stats.note_quarantined(meta.filename)
                return []
            raise CorruptPartitionError(meta.filename, repr(exc)) from exc
        self._stats.note_block(meta.filename, len(records), len(raw))
        if self._codec == "pickle":
            return list(records)
        return [decode_record(r) for r in records]

    def _compute_v2(self, meta: PartitionMeta, path: Path) -> list:
        self._inject_corrupt_read(path)
        try:
            block = open_v2_block(path)
            if self._query_box is not None and block.filterable:
                rows = block.candidate_rows(self._query_box)
                records = block.decode_rows(rows, self._codec)
                nbytes = block.index_nbytes + block.payload_nbytes(rows)
            else:
                records = block.decode_all(self._codec)
                nbytes = block.index_nbytes + block.payload_nbytes()
        except Exception as exc:
            from repro.engine.errors import CorruptPartitionError

            if self._on_corrupt == "quarantine":
                self._stats.note_quarantined(meta.filename)
                return []
            raise CorruptPartitionError(meta.filename, repr(exc)) from exc
        self._stats.note_block(meta.filename, len(records), nbytes)
        return records

    def __getstate__(self):
        # Shipping this source to process workers means the blocks are read
        # worker-side, where mutations of the driver's LoadStats are
        # invisible.  Account for the whole read now — exact: v1 from
        # metadata (block count and file size equal what _compute
        # observes), v2 by running the extent mask off the mmap without
        # decoding any payload (scan_v2_block matches the worker's
        # pushdown arithmetic).  Per-file dedupe (not an all-or-nothing
        # guard): after a backend demotion mid-job, some blocks may
        # already have been read — and accounted — driver-side.
        for meta in self._metas:
            if self._stats.seen(meta.filename):
                continue
            path = self._directory / meta.filename
            try:
                if self._block_format == "v2":
                    records, nbytes = scan_v2_block(path, self._query_box)
                else:
                    records, nbytes = meta.count, path.stat().st_size
            except Exception:
                # An unreadable block is the worker's problem to surface
                # (CorruptPartitionError / quarantine); don't let stats
                # accounting break stage serialization.
                continue
            self._stats.note_block(meta.filename, records, nbytes)
        return dict(self.__dict__)


class StDataset:
    """A directory holding one block file per partition + ``metadata.json``.

    This is the engine-facing face of Section 4.1: :meth:`write` persists a
    partitioned layout with its boundaries, :meth:`read` returns a lazy RDD
    over only the partitions surviving metadata pruning.

    Two block formats coexist (autodetected from the metadata on read):
    ``"v1"`` pickles each partition whole (``part-*.pkl``), ``"v2"``
    persists mmap-able extent columns plus per-row payload offsets
    (``part-*.stb``, :mod:`repro.stio.blockv2`) so pruned loads decode
    only matching rows.  :meth:`convert` rewrites between them.
    """

    BLOCK_PATTERNS = {"v1": "part-{:05d}.pkl", "v2": "part-{:05d}.stb"}
    #: Legacy alias (v1); prefer ``BLOCK_PATTERNS``.
    BLOCK_PATTERN = BLOCK_PATTERNS["v1"]

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._meta_cache: tuple[tuple[int, int], DatasetMetadata] | None = None

    # -- writing ------------------------------------------------------------------

    @staticmethod
    def _encode_block(records: Sequence, codec: str, block_format: str = "v1") -> bytes:
        """One partition's on-disk bytes under ``codec`` + ``block_format``.

        ``"tuple"`` routes records through
        :func:`~repro.stio.formats.encode_record` (compact,
        schema-checked); ``"pickle"`` stores records verbatim — lossless
        for anything picklable, which is what checkpoints need (replica
        flags, partial collective instances).
        """
        if codec not in ("pickle", "tuple"):
            raise ValueError(f"unknown block codec {codec!r}")
        if block_format == "v2":
            return encode_v2_block(records, codec)
        if codec == "pickle":
            encoded: list = list(records)
        else:
            encoded = [encode_record(r) for r in records]
        return pickle.dumps(encoded, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _block_bounds(
        records: Sequence,
        boundaries: Sequence[STBox] | None,
        index: int,
        codec: str,
    ) -> STBox:
        if records:
            if codec == "pickle":
                # Checkpoint payloads may not expose st_box (partial
                # collective instances); pruning is off for them anyway.
                try:
                    return STBox.merge_all([r.st_box() for r in records])
                except Exception:
                    return STBox((0.0, 0.0, 0.0), (0.0, 0.0, 0.0))
            return STBox.merge_all([r.st_box() for r in records])
        if boundaries is not None and index < len(boundaries):
            return boundaries[index]
        return STBox((0.0, 0.0, 0.0), (0.0, 0.0, 0.0))

    @staticmethod
    def _remove_orphan_blocks(directory: Path, keep: set[str]) -> None:
        """Delete ``part-*`` block files the new metadata doesn't name.

        An in-place rewrite with fewer partitions (or a format conversion,
        which changes the extension) must not leave stale blocks behind:
        they waste disk and poison glob-based tooling that enumerates
        ``part-*`` files instead of reading the metadata.
        """
        for pattern in StDataset.BLOCK_PATTERNS.values():
            for stale in directory.glob(pattern.replace("{:05d}", "*")):
                if stale.name not in keep:
                    stale.unlink()

    @classmethod
    def write(
        cls,
        directory: str | Path,
        partitions: Sequence[Sequence[Instance]],
        instance_type: str,
        boundaries: Sequence[STBox] | None = None,
        codec: str = "tuple",
        block_format: str = "v1",
        watermark: float | None = None,
    ) -> "StDataset":
        """Persist partition lists and build the metadata index.

        Per-partition bounds recorded in the metadata are the MBRs of the
        *actual* records (tight pruning); ``boundaries`` — the theoretical
        partitioner cells — are accepted for API parity but only used for
        partitions that hold no records.
        """
        if block_format not in BLOCK_FORMATS:
            raise ValueError(
                f"unknown block format {block_format!r} "
                f"(supported: {', '.join(BLOCK_FORMATS)})"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Rewriting an existing dataset in place (re-index / repartition /
        # format conversion) is an edit like any other: continue its
        # generation counter so long-lived readers keyed on it (the serve
        # result cache) miss.  The streaming watermark survives rewrites
        # the same way — compaction reshuffles blocks, it does not change
        # what has been ingested.
        generation = 0
        if (directory / METADATA_FILENAME).exists():
            try:
                existing = DatasetMetadata.load(directory)
                generation = existing.generation + 1
                if watermark is None:
                    watermark = existing.watermark
            except (ValueError, FileNotFoundError):
                generation = 1
        pattern = cls.BLOCK_PATTERNS[block_format]
        metas = []
        for i, records in enumerate(partitions):
            filename = pattern.format(i)
            (directory / filename).write_bytes(
                cls._encode_block(records, codec, block_format)
            )
            bounds = cls._block_bounds(records, boundaries, i, codec)
            metas.append(PartitionMeta(filename=filename, count=len(records), bounds=bounds))
        DatasetMetadata(
            instance_type=instance_type,
            partitions=metas,
            codec=codec,
            generation=generation,
            block_format=block_format,
            watermark=watermark,
        ).save(directory)
        cls._remove_orphan_blocks(directory, {m.filename for m in metas})
        return cls(directory)

    @classmethod
    def write_rdd(
        cls,
        directory: str | Path,
        rdd: RDD,
        instance_type: str,
        partitioner: "STPartitioner | None" = None,
        sample_fraction: float = 0.1,
        block_format: str = "v1",
    ) -> "StDataset":
        """Optionally ST-partition an RDD, then persist it.

        This is the offline index-generation step: ``TSTRPartitioner`` +
        ``write_rdd`` together implement the ``stPartitionWithInfo`` /
        ``toDisk`` code of Section 4.1.
        """
        boundaries = None
        if partitioner is not None:
            rdd, boundaries = partitioner.partition_with_info(
                rdd, sample_fraction=sample_fraction
            )
        return cls.write(
            directory,
            rdd._collect_partitions(),
            instance_type,
            boundaries,
            block_format=block_format,
        )

    def append(
        self,
        partitions: Sequence[Sequence[Instance]],
        boundaries: Sequence[STBox] | None = None,
        watermark: float | None = None,
    ) -> "StDataset":
        """Add a newly indexed batch to an existing dataset.

        The periodic-indexing workflow of Section 4.1's discussion:
        "application programmers may periodically index the new group of
        data and merge the metadata file with the existing ones."  New
        block files continue the existing numbering and block format; the
        metadata files are merged — incrementally: existing partition
        entries are reused as-is, only the new blocks' entries are
        computed.  ``watermark``, when given, is the batch's high-water
        mark; the merge keeps the max of it and the dataset's existing
        mark, and the whole commit (partitions + generation + watermark)
        is one atomic metadata replace.
        """
        existing = self.metadata()
        offset = len(existing.partitions)
        pattern = self.BLOCK_PATTERNS[existing.block_format]
        new_metas = []
        for i, records in enumerate(partitions):
            filename = pattern.format(offset + i)
            (self.directory / filename).write_bytes(
                self._encode_block(records, existing.codec, existing.block_format)
            )
            bounds = self._block_bounds(records, boundaries, i, existing.codec)
            new_metas.append(
                PartitionMeta(filename=filename, count=len(records), bounds=bounds)
            )
        merged = existing.merged_with(
            DatasetMetadata(
                instance_type=existing.instance_type,
                partitions=new_metas,
                codec=existing.codec,
                block_format=existing.block_format,
                watermark=watermark,
            )
        )
        merged.save(self.directory)
        return self

    def append_rdd(
        self,
        rdd: RDD,
        partitioner: "STPartitioner | None" = None,
        sample_fraction: float = 0.1,
    ) -> "StDataset":
        """Partition (optionally) and append an RDD batch; see :meth:`append`."""
        boundaries = None
        if partitioner is not None:
            rdd, boundaries = partitioner.partition_with_info(
                rdd, sample_fraction=sample_fraction
            )
        return self.append(rdd._collect_partitions(), boundaries)

    def convert(
        self, block_format: str, out: str | Path | None = None
    ) -> "StDataset":
        """Rewrite every block into ``block_format``; returns the result.

        Partition layout, record order, codec, and per-partition bounds
        are preserved exactly, so selections over the converted dataset
        answer byte-for-byte identically.  With ``out=None`` the dataset
        is converted in place (generation bumps, old-format blocks are
        removed); otherwise a sibling copy is written and the source is
        untouched.  Surfaced on the CLI as ``repro convert-format``.
        """
        meta = self.metadata()
        partitions = [
            self.read_block(m, codec=meta.codec, block_format=meta.block_format)
            for m in meta.partitions
        ]
        return StDataset.write(
            out if out is not None else self.directory,
            partitions,
            meta.instance_type,
            boundaries=[m.bounds for m in meta.partitions],
            codec=meta.codec,
            block_format=block_format,
            watermark=meta.watermark,
        )

    # -- streaming ----------------------------------------------------------------

    def ingest(
        self,
        batch: Sequence[Instance],
        partitioner: "STPartitioner | None" = None,
        rebalance_threshold: int | None = None,
        instance_type: str | None = None,
        block_format: str = "v1",
    ) -> "IngestReport":
        """Append one micro-batch and advance the persisted watermark.

        The streaming front door: incremental metadata + T-STR maintenance
        (new temporal slices get new cells — no repartition of resident
        data), one atomic metadata commit advancing partitions +
        generation + watermark together, and an optional compaction when
        the block count crosses ``rebalance_threshold``.  Creates the
        dataset on first call (``instance_type`` required then).  See
        :func:`repro.stream.ingest_batch` for the full contract; returns
        its :class:`~repro.stream.IngestReport`.
        """
        from repro.stream.ingest import ingest_batch

        return ingest_batch(
            self,
            batch,
            partitioner=partitioner,
            rebalance_threshold=rebalance_threshold,
            instance_type=instance_type,
            block_format=block_format,
        )

    def compact(self, partitioner: "STPartitioner | None" = None) -> int:
        """Rewrite the whole dataset under a fresh partition fit.

        See :func:`repro.stream.compact_dataset`; returns the number of
        blocks the rewrite replaced.
        """
        from repro.stream.ingest import compact_dataset

        return compact_dataset(self, partitioner=partitioner)

    # -- reading -------------------------------------------------------------------

    def metadata(self) -> DatasetMetadata:
        """Load the dataset's metadata file (always re-read from disk)."""
        return DatasetMetadata.load(self.directory)

    def cached_metadata(self) -> DatasetMetadata:
        """The parsed metadata, memoized on the file's stat signature.

        One ``os.stat`` per call instead of a full read + JSON parse: the
        hot paths (``read_block`` per block, the serve daemon per query)
        re-validate cheaply and re-parse only when an append or rewrite
        actually changed the file.  Handing out the same object on a hit
        is safe — ``DatasetMetadata`` is treated as immutable everywhere.
        """
        stat = (self.directory / METADATA_FILENAME).stat()
        signature = (stat.st_mtime_ns, stat.st_size)
        cached = self._meta_cache
        if cached is None or cached[0] != signature:
            cached = (signature, DatasetMetadata.load(self.directory))
            self._meta_cache = cached
        return cached[1]

    def read_block(
        self,
        meta: PartitionMeta,
        codec: str | None = None,
        block_format: str | None = None,
        on_corrupt: str = "raise",
    ) -> list:
        """Eagerly read and decode one partition's block file.

        The resident-block path of the ``repro serve`` daemon: unlike
        :meth:`read` (a lazy RDD that re-reads and re-decodes per
        evaluation), this returns a plain list the caller can keep — the
        stable list identity is what lets the per-partition
        selection-index cache hit across queries.  ``codec`` and
        ``block_format`` default to the dataset's metadata values via
        :meth:`cached_metadata` (a stat, not a re-parse, per call);
        callers holding the metadata should pass both.  An undecodable
        block honors the same corruption contract as the lazy reader:
        :class:`~repro.engine.errors.CorruptPartitionError` naming the
        file, or an empty list under ``on_corrupt="quarantine"``.
        """
        records, _ = self.read_block_indexed(
            meta, codec=codec, block_format=block_format, on_corrupt=on_corrupt
        )
        return records

    def read_block_indexed(
        self,
        meta: PartitionMeta,
        codec: str | None = None,
        block_format: str | None = None,
        on_corrupt: str = "raise",
    ) -> tuple[list, object | None]:
        """:meth:`read_block`, plus the block's columnar selection index.

        For v2 blocks the second element is a
        :class:`~repro.columnar.boxtable.BoxTable` whose extent columns
        are *views into the mmapped file* — the serve daemon seeds the
        selection-index cache with it, so resident partitions never
        re-extract bounds instance-by-instance.  ``None`` for v1 blocks
        and non-filterable v2 blocks.
        """
        if codec is None or block_format is None:
            cached = self.cached_metadata()
            codec = codec if codec is not None else cached.codec
            block_format = (
                block_format if block_format is not None else cached.block_format
            )
        path = self.directory / meta.filename
        from repro.engine.errors import CorruptPartitionError

        try:
            if block_format == "v2":
                block = open_v2_block(path)
                records = block.decode_all(codec)
                return records, block.boxtable(records)
            records = pickle.loads(path.read_bytes())
            if codec == "pickle":
                return list(records), None
            return [decode_record(r) for r in records], None
        except Exception as exc:
            if on_corrupt == "quarantine":
                return [], None
            raise CorruptPartitionError(meta.filename, repr(exc)) from exc

    def read(
        self,
        ctx: EngineContext,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
        use_metadata: bool = True,
        on_corrupt: str = "raise",
        offset: int = 0,
    ) -> tuple[RDD, LoadStats]:
        """A lazy RDD over the partitions that may contain matching data.

        ``offset`` skips the first ``offset`` partitions *before* pruning
        — the incremental-read primitive: appends only ever add blocks at
        the end, so "everything since the last run" is exactly
        ``partitions[offset:]``.  Skipped partitions do not count toward
        ``partitions_total``.

        ``use_metadata=False`` loads everything — the "native Spark" mode
        Figure 5 compares against.  The returned RDD still needs in-memory
        fine-grained filtering (step (3) of Figure 4); the Selector does
        that with per-partition R-trees.  For v2 datasets a metadata-pruned
        read additionally pushes the query box down to the block reader:
        extent columns are mmapped, masked off disk, and only matching
        rows' payloads are unpickled — the coarse mask is a superset of
        the fine filter, so downstream results are unchanged.
        ``on_corrupt="quarantine"`` degrades gracefully on undecodable
        block files: the partition loads empty and
        ``LoadStats.partitions_quarantined`` counts it, instead of the
        default :class:`~repro.engine.errors.CorruptPartitionError`.
        """
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError("on_corrupt must be 'raise' or 'quarantine'")
        meta = self.cached_metadata()
        candidates = meta.partitions[offset:] if offset else meta.partitions
        if use_metadata:
            selected = [p for p in candidates if p.overlaps(spatial, temporal)]
        else:
            selected = list(candidates)
        stats = LoadStats(
            partitions_total=len(candidates),
            partitions_selected=len(selected),
        )
        query_box = None
        if (
            use_metadata
            and meta.block_format == "v2"
            and (spatial is not None or temporal is not None)
        ):
            query_box = st_query_box(spatial, temporal)
        rdd = _DiskPartitionRDD(
            ctx,
            self.directory,
            selected,
            stats,
            codec=meta.codec,
            on_corrupt=on_corrupt,
            block_format=meta.block_format,
            query_box=query_box,
        )
        return rdd, stats


def save_dataset(
    directory: str | Path,
    instances: Sequence[Instance],
    instance_type: str,
    partitioner: "STPartitioner | None" = None,
    num_partitions: int = 8,
    ctx: EngineContext | None = None,
    block_format: str = "v1",
) -> StDataset:
    """Convenience writer from a plain instance list."""
    own_ctx = ctx or EngineContext(default_parallelism=num_partitions)
    rdd = own_ctx.parallelize(instances, num_partitions)
    return StDataset.write_rdd(
        directory, rdd, instance_type, partitioner, block_format=block_format
    )


def load_dataset(
    ctx: EngineContext,
    directory: str | Path,
    spatial: Envelope | None = None,
    temporal: Duration | None = None,
    use_metadata: bool = True,
    on_corrupt: str = "raise",
) -> tuple[RDD, LoadStats]:
    """Convenience reader; see :meth:`StDataset.read`."""
    return StDataset(directory).read(ctx, spatial, temporal, use_metadata, on_corrupt)
