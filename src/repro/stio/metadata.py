"""The persistent metadata index over partition files."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox, st_query_box
from repro.temporal.duration import Duration

METADATA_FILENAME = "metadata.json"
FORMAT_VERSION = 1
#: Known per-partition block encodings; see :mod:`repro.stio.blockv2`.
BLOCK_FORMATS = ("v1", "v2")


@dataclass(frozen=True)
class PartitionMeta:
    """One partition's entry in the metadata file.

    ``bounds`` is the ST MBR of the partition's *actual contents* (not the
    partitioner's theoretical cell): tight MBRs prune better, and they are
    what the paper's Figure 4 depicts being compared against the query
    range.
    """

    filename: str
    count: int
    bounds: STBox

    def overlaps(self, spatial: Envelope | None, temporal: Duration | None) -> bool:
        """Does this partition possibly contain data in the query range?

        ``None`` for either dimension means "unconstrained".  The test is
        the *same* closed-interval box intersection the Selector's
        in-memory filter probes with (:func:`~repro.index.boxes.st_query_box`
        against the stored 3-d MBR) — not a parallel re-implementation —
        so pruning can never disagree with the fine-grained filter, even
        for queries that merely touch a partition MBR edge: a touching
        query *can* match a record sitting exactly on that edge, and must
        keep the partition.
        """
        if self.count == 0:
            return False
        return self.bounds.intersects(st_query_box(spatial, temporal))

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return {
            "filename": self.filename,
            "count": self.count,
            "mins": list(self.bounds.mins),
            "maxs": list(self.bounds.maxs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PartitionMeta":
        """Inverse of to_dict."""
        return cls(
            filename=d["filename"],
            count=int(d["count"]),
            bounds=STBox(d["mins"], d["maxs"]),
        )


@dataclass
class DatasetMetadata:
    """The whole metadata file: format info + per-partition boundaries.

    ``codec`` names how block files encode records: ``"tuple"`` (the
    compact format of :mod:`repro.stio.formats`, the default) or
    ``"pickle"`` (records pickled as-is — used by pipeline checkpoints,
    whose phase outputs include replica-flagged and partial collective
    instances the tuple format cannot round-trip).  Absent in older
    metadata files, which are all tuple-encoded.

    ``block_format`` names how partitions are laid out *as files*:
    ``"v1"`` (one pickle per block, ``part-*.pkl``) or ``"v2"`` (the
    mmap-able columnar layout of :mod:`repro.stio.blockv2`,
    ``part-*.stb``).  Orthogonal to ``codec``, which names how individual
    records encode *within* a block.  Absent in older metadata files,
    which are all v1.

    ``generation`` is a monotonically increasing edit counter for the
    dataset *as a whole*: every append bumps it (see :meth:`merged_with`)
    and so does rewriting an existing directory in place (a re-index /
    repartition).  Long-lived readers — the ``repro serve`` daemon's
    result cache above all — key cached answers on it, so an answer
    computed against generation N can never be served once the data moved
    to N+1.  Absent in older metadata files, which read as generation 0.

    ``watermark`` is the streaming high-water mark: the maximum event end
    time ever ingested (epoch seconds), or ``None`` for datasets never
    touched by :meth:`~repro.stio.dataset.StDataset.ingest`.  It advances
    transactionally with the partition list — blocks land on disk first,
    then one atomic metadata replace publishes partitions + generation +
    watermark together, so a crashed ingest leaves at worst orphan block
    files the metadata never names (invisible to readers, reclaimed by
    the next compaction).  Incremental pipelines use it to name "what
    has been processed" (:meth:`~repro.core.pipeline.Pipeline.run_incremental`);
    records arriving with end times at or below it are *late* and are
    counted by the ingest path rather than dropped.
    """

    instance_type: str
    partitions: list[PartitionMeta]
    version: int = FORMAT_VERSION
    codec: str = "tuple"
    generation: int = 0
    block_format: str = "v1"
    watermark: float | None = None

    @property
    def total_records(self) -> int:
        """Sum of all partition record counts."""
        return sum(p.count for p in self.partitions)

    def select_partitions(
        self,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
    ) -> list[PartitionMeta]:
        """Step (1) of Figure 4: shortlist partitions overlapping the query."""
        return [p for p in self.partitions if p.overlaps(spatial, temporal)]

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write to the dataset directory; returns the file path.

        The write is atomic (temp file + ``os.replace`` in the same
        directory): readers racing an ingest see either the old metadata
        or the new one, never a torn file.  This is what makes the
        watermark advance *transactional* — partitions, generation, and
        watermark publish in one rename.
        """
        path = Path(directory) / METADATA_FILENAME
        payload = {
            "version": self.version,
            "instance_type": self.instance_type,
            "codec": self.codec,
            "block_format": self.block_format,
            "generation": self.generation,
            "partitions": [p.to_dict() for p in self.partitions],
        }
        if self.watermark is not None:
            payload["watermark"] = self.watermark
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "DatasetMetadata":
        """Read and validate from the dataset directory."""
        path = Path(directory) / METADATA_FILENAME
        if not path.exists():
            raise FileNotFoundError(f"no metadata file at {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupted metadata file {path}: {exc}") from exc
        for key in ("version", "instance_type", "partitions"):
            if key not in payload:
                raise ValueError(f"metadata file {path} is missing key {key!r}")
        if payload["version"] > FORMAT_VERSION:
            raise ValueError(
                f"metadata format {payload['version']} is newer than supported "
                f"({FORMAT_VERSION})"
            )
        block_format = payload.get("block_format", "v1")
        if block_format not in BLOCK_FORMATS:
            raise ValueError(
                f"metadata file {path} names unsupported block format "
                f"{block_format!r} (supported: {', '.join(BLOCK_FORMATS)})"
            )
        watermark = payload.get("watermark")
        return cls(
            instance_type=payload["instance_type"],
            partitions=[PartitionMeta.from_dict(d) for d in payload["partitions"]],
            version=payload["version"],
            codec=payload.get("codec", "tuple"),
            generation=int(payload.get("generation", 0)),
            block_format=block_format,
            watermark=float(watermark) if watermark is not None else None,
        )

    def merged_with(self, other: "DatasetMetadata") -> "DatasetMetadata":
        """Merge metadata of a newly indexed batch into an existing file —
        the periodic-append workflow of Section 4.1's discussion point (2)."""
        if other.instance_type != self.instance_type:
            raise ValueError("cannot merge metadata of different instance types")
        if other.codec != self.codec:
            raise ValueError("cannot merge metadata of different block codecs")
        if other.block_format != self.block_format:
            raise ValueError("cannot merge metadata of different block formats")
        if self.watermark is None:
            watermark = other.watermark
        elif other.watermark is None:
            watermark = self.watermark
        else:
            # The high-water mark is monotone: a late batch (all event
            # times below the current mark) merges without regressing it.
            watermark = max(self.watermark, other.watermark)
        return DatasetMetadata(
            instance_type=self.instance_type,
            partitions=self.partitions + other.partitions,
            codec=self.codec,
            # An append is an edit: cached answers against the old
            # generation must stop hitting.
            generation=self.generation + 1,
            block_format=self.block_format,
            watermark=watermark,
        )
