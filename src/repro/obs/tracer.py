"""Hierarchical spans and counters for pipeline profiling.

The span tree mirrors the execution hierarchy of the paper's three-stage
pipeline::

    pipeline
    └── phase (Selection | Conversion | Extraction)
        └── stage (one engine stage = one ``run_stage`` call)
            └── task (one partition of one stage)

Driver-side code opens spans with :meth:`Tracer.span`; task spans are
*reconstructed* driver-side from the per-task outcomes every backend ships
back (the process backend cannot call into a driver tracer from a worker,
and wall-clock timestamps are the only cross-process-consistent currency).

A tracer is installed either explicitly (``EngineContext(tracer=...)``) or
globally via :func:`set_tracer` / :func:`installed`; instrumentation sites
check :func:`current_tracer` and do nothing when it is ``None``, so the
untraced hot path stays free of overhead.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "installed",
]


@dataclass
class Span:
    """One timed node of the trace tree.

    ``start``/``end`` are wall-clock epoch seconds (``time.time()``), not
    monotonic time, because task spans on the process backend are stamped
    in other processes — epoch time is the clock all of them share.
    """

    span_id: int
    name: str
    category: str = ""
    start: float = 0.0
    end: float | None = None
    parent_id: int | None = None
    track: str = "driver"
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)


class Tracer:
    """Collects spans and counters for one profiled run.

    Thread-safe: driver threads, pool threads, and the metrics-merging path
    may all emit concurrently.  Span nesting is tracked per thread; spans
    opened with ``default_scope=True`` (the pipeline/phase spans) also act
    as the fallback parent for threads with an empty local stack, so stages
    triggered from pool threads still nest under the right phase.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._default_parents: list[int] = []
        self._counters: dict[str, float] = {}
        self._counter_sources: list[tuple[str, Callable[[], float]]] = []
        #: Trace epoch: exporters emit timestamps relative to this.
        self.t0 = clock()

    # -- span stack ---------------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> int | None:
        """Innermost open span on this thread (or the default-scope span)."""
        stack = self._stack()
        if stack:
            return stack[-1]
        with self._lock:
            return self._default_parents[-1] if self._default_parents else None

    def current_span(self) -> Span | None:
        """The :class:`Span` for :meth:`current_span_id`, if any."""
        sid = self.current_span_id()
        if sid is None:
            return None
        with self._lock:
            for span in self._spans:
                if span.span_id == sid:
                    return span
        return None

    # -- emitting -----------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str = "",
        *,
        track: str = "driver",
        default_scope: bool = False,
        **args: Any,
    ) -> Span:
        """Open a span as a child of the thread's current span."""
        parent_id = self.current_span_id()
        with self._lock:
            span = Span(
                span_id=next(self._ids),
                name=name,
                category=category,
                start=self._clock(),
                parent_id=parent_id,
                track=track,
                args=dict(args),
            )
            self._spans.append(span)
            if default_scope:
                self._default_parents.append(span.span_id)
        self._stack().append(span.span_id)
        return span

    def finish(self, span: Span, **args: Any) -> Span:
        """Close a span, optionally attaching final args."""
        if args:
            span.args.update(args)
        span.end = self._clock()
        stack = self._stack()
        if span.span_id in stack:
            stack.remove(span.span_id)
        with self._lock:
            if span.span_id in self._default_parents:
                self._default_parents.remove(span.span_id)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        *,
        track: str = "driver",
        default_scope: bool = False,
        **args: Any,
    ) -> Iterator[Span]:
        """Context-managed :meth:`begin`/:meth:`finish` pair."""
        span = self.begin(
            name, category, track=track, default_scope=default_scope, **args
        )
        try:
            yield span
        finally:
            self.finish(span)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent: "Span | int | None" = None,
        track: str = "driver",
        **args: Any,
    ) -> Span:
        """Record an already-finished span with explicit timestamps.

        This is how task spans enter the tree: the driver replays each
        backend's :class:`~repro.engine.exec.TaskOutcome` wall-clock
        window after the stage completes.
        """
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        with self._lock:
            span = Span(
                span_id=next(self._ids),
                name=name,
                category=category,
                start=start,
                end=max(start, end),
                parent_id=parent_id,
                track=track,
                args=dict(args),
            )
            self._spans.append(span)
        return span

    # -- counters -----------------------------------------------------------------

    def counter(self, name: str, value: float) -> None:
        """Add ``value`` to a named counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def register_counter_source(
        self, name: str, source: Callable[[], float]
    ) -> None:
        """Register a lazily-read counter (e.g. an accumulator's value).

        Sources are sampled at :attr:`counters` read time; several sources
        with the same name sum.  The indirection matters for counters fed
        by task-side accumulators, whose totals settle only after actions
        run.
        """
        with self._lock:
            self._counter_sources.append((name, source))

    @property
    def counters(self) -> dict[str, float]:
        """Merged view of direct counters and registered sources."""
        with self._lock:
            merged = dict(self._counters)
            sources = list(self._counter_sources)
        for name, source in sources:
            merged[name] = merged.get(name, 0) + source()
        return merged

    # -- reading ------------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """All spans in creation order."""
        with self._lock:
            return list(self._spans)

    def roots(self) -> list[Span]:
        """Spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: "Span | int") -> list[Span]:
        """Direct children of a span, in creation order."""
        sid = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == sid]

    def find(self, name: str | None = None, category: str | None = None) -> list[Span]:
        """Spans matching a name and/or category."""
        return [
            s
            for s in self.spans
            if (name is None or s.name == name)
            and (category is None or s.category == category)
        ]

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, counters={len(self.counters)})"


# -- global installation ---------------------------------------------------------
#
# A module-level slot rather than a thread-local: stages may hop between the
# driver thread and pool threads, and all of them must see the same tracer.
_active: Tracer | None = None
_active_lock = threading.Lock()


def current_tracer() -> Tracer | None:
    """The globally installed tracer, or ``None`` when tracing is off."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the global tracer; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer
    return previous


@contextmanager
def installed(tracer: Tracer) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def phase(name: str, tracer: Tracer | None = None) -> Iterator[Span | None]:
    """Open a phase span on the active tracer, idempotently.

    Operators (Selector / converters / extractors) and ``Pipeline.run``
    both wrap their work in phase spans; when an operator runs *inside* a
    pipeline-level span of the same name, the inner call yields the
    enclosing span instead of stacking ``Selection → Selection``.  Yields
    ``None`` only when no tracer is installed — so callers can use
    "span is not None" as the "am I being profiled" test regardless of
    which layer opened the phase.  ``tracer`` lets call sites prefer a
    context-level tracer (``EngineContext(tracer=...)``) over the global
    one.
    """
    tracer = tracer if tracer is not None else current_tracer()
    if tracer is None:
        yield None
        return
    current = tracer.current_span()
    if current is not None and current.category == "phase" and current.name == name:
        yield current
        return
    with tracer.span(name, "phase", default_scope=True) as span:
        yield span
