"""Observability: hierarchical tracing and profiling for the pipeline.

The span tree (pipeline → phase → stage → task) plus a counter catalogue
covering metadata pruning, R-tree probing, broadcast volume, and shuffle
traffic.  See ``docs/architecture.md`` ("Observability") for the span
model and how to open a trace in Perfetto.
"""

from repro.obs.export import chrome_trace, text_tree, to_jsonl, write_trace_files
from repro.obs.profile import profiled
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    installed,
    phase,
    set_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "installed",
    "phase",
    "profiled",
    "set_tracer",
    "text_tree",
    "to_jsonl",
    "write_trace_files",
]
