"""Trace exporters: Chrome trace-event JSON, text summary tree, JSONL.

The Chrome format is the `trace-event`_ JSON that Perfetto and
``chrome://tracing`` load directly: one ``"X"`` (complete) event per span
with microsecond timestamps relative to the trace epoch, one track (tid)
per worker, and ``"C"`` counter events for the tracer's counters.

.. _trace-event:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import Span, Tracer

__all__ = ["chrome_trace", "text_tree", "to_jsonl", "write_trace_files"]

_PID = 1


def _micros(tracer: Tracer, wall: float) -> int:
    """Wall-clock seconds → µs offset from the trace epoch (clamped ≥ 0).

    Task spans are stamped by worker processes whose clocks may disagree
    with the driver's by a hair; clamping keeps the trace loadable.
    """
    return max(0, int(round((wall - tracer.t0) * 1_000_000)))


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's spans + counters as a Chrome trace-event document."""
    tracks: dict[str, int] = {}
    events: list[dict] = []

    def tid_for(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tracks[track],
                    "args": {"name": track},
                }
            )
        return tracks[track]

    tid_for("driver")  # track 0 is always the driver
    last_ts = 0
    for span in tracer.spans:
        ts = _micros(tracer, span.start)
        end = span.end if span.end is not None else span.start
        dur = max(0, _micros(tracer, end) - ts)
        last_ts = max(last_ts, ts + dur)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "span",
                "ts": ts,
                "dur": dur,
                "pid": _PID,
                "tid": tid_for(span.track),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.args,
                },
            }
        )
    for name, value in sorted(tracer.counters.items()):
        events.append(
            {
                "ph": "C",
                "name": name,
                "ts": last_ts,
                "pid": _PID,
                "tid": 0,
                "args": {name: value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "counters": tracer.counters},
    }


def _render_span(span: Span, tracer: Tracer, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    ms = span.duration * 1000.0
    detail = ""
    if span.args:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(span.args.items()))
        detail = f"  {{{pairs}}}"
    category = f" [{span.category}]" if span.category else ""
    lines.append(f"{pad}{span.name}{category}  {ms:.1f}ms{detail}")
    for child in tracer.children(span):
        _render_span(child, tracer, indent + 1, lines)


def text_tree(tracer: Tracer) -> str:
    """Human-readable span tree + counter table."""
    lines: list[str] = []
    for root in tracer.roots():
        _render_span(root, tracer, 0, lines)
    counters = tracer.counters
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            rendered = f"{value:,.0f}" if float(value).is_integer() else f"{value:,}"
            lines.append(f"  {name:<{width}}  {rendered}")
    return "\n".join(lines)


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per line: every span, then every counter."""
    lines = []
    for span in tracer.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "category": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                    "duration": span.duration,
                    "args": span.args,
                },
                sort_keys=True,
            )
        )
    for name, value in sorted(tracer.counters.items()):
        lines.append(json.dumps({"type": "counter", "name": name, "value": value}))
    return "\n".join(lines) + "\n"


def write_trace_files(tracer: Tracer, base: str | Path) -> dict[str, Path]:
    """Write all three export formats next to each other.

    ``base`` is a path prefix: ``<base>.trace.json`` (Chrome),
    ``<base>.summary.txt`` (text tree), ``<base>.jsonl``.  Returns the
    written paths keyed by format.
    """
    base = Path(base)
    base.parent.mkdir(parents=True, exist_ok=True)
    paths = {
        "chrome": base.with_name(base.name + ".trace.json"),
        "summary": base.with_name(base.name + ".summary.txt"),
        "jsonl": base.with_name(base.name + ".jsonl"),
    }
    paths["chrome"].write_text(json.dumps(chrome_trace(tracer), indent=1))
    paths["summary"].write_text(text_tree(tracer) + "\n")
    paths["jsonl"].write_text(to_jsonl(tracer))
    return paths
