"""Convenience entry points for profiling a block of pipeline code."""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.export import write_trace_files
from repro.obs.tracer import Tracer, installed

__all__ = ["profiled"]


@contextmanager
def profiled(out: str | Path | None = None) -> Iterator[Tracer]:
    """Run a block with a fresh tracer installed globally.

    ::

        with profiled("results/run1") as tracer:
            pipeline.run(ctx, data_dir)
        print(tracer.counters)

    When ``out`` is given, all three export formats are written on exit
    (even if the block raises — a partial trace of a failed run is exactly
    when you want one).
    """
    tracer = Tracer()
    try:
        with installed(tracer):
            yield tracer
    finally:
        if out is not None:
            write_trace_files(tracer, out)
