"""Collective structure descriptors.

A *structure* is the empty shell a singular→collective conversion
allocates instances into: a list of time slots, spatial cells, or
(geometry, duration) raster cells.  The descriptor knows

* how to enumerate candidate cells for an instance's ST MBR — via the
  regular-grid arithmetic shortcut when the structure is regular, or via
  an R-tree over its cells otherwise (both from Section 4.2), with a
  naive full-scan mode retained as the benchmark baseline;
* how to materialize an empty collective instance for an executor to fill.

Structures are immutable and cheap to broadcast, matching the paper's
design choice of shipping the (empty) structure to every executor rather
than shuffling the data to structure-owning executors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.instances.raster import Raster
from repro.instances.spatialmap import SpatialMap
from repro.instances.timeseries import TimeSeries
from repro.temporal.duration import Duration
from repro.temporal.windows import tumbling_windows


class Structure(ABC):
    """Common candidate-cell interface for the three collective shapes."""

    def __init__(self) -> None:
        self._rtree: RTree | None = None
        # Columnar mirrors, built lazily: cell min/max coordinate arrays
        # and a packed R-tree over them (both picklable, so a structure
        # broadcast after prebuilding ships them to every executor).
        self._packed = None
        self._cell_arrays = None

    @property
    @abstractmethod
    def n_cells(self) -> int:
        """Number of cells."""

    @property
    @abstractmethod
    def is_regular(self) -> bool:
        """True when cells are equal-sized and densely tile the extent."""

    @abstractmethod
    def cell_box(self, cell: int) -> STBox:
        """The index box of one cell (1-d, 2-d, or 3-d by structure kind)."""

    @abstractmethod
    def query_box(self, spatial: Envelope, temporal: Duration) -> STBox:
        """Project an instance's ST MBR onto this structure's dimensions."""

    @abstractmethod
    def empty_instance(self, value_factory: Callable[[], list] = list):
        """An empty collective instance over this structure's cells."""

    @abstractmethod
    def _regular_candidates(self, box: STBox) -> list[int]:
        """Grid-arithmetic candidates; only valid when ``is_regular``."""

    # -- candidate enumeration ---------------------------------------------------

    def rtree(self) -> RTree[int]:
        """Lazily built R-tree over the structure cells (Section 4.2)."""
        if self._rtree is None:
            self._rtree = RTree.build(
                ((self.cell_box(i), i) for i in range(self.n_cells))
            )
        return self._rtree

    def _cell_box_arrays(self):
        """Lazily built ``(mins, maxs)`` arrays of every cell box, id order."""
        if self._cell_arrays is None:
            from repro._deps import require_numpy

            np = require_numpy("Structure._cell_box_arrays")
            boxes = [self.cell_box(i) for i in range(self.n_cells)]
            self._cell_arrays = (
                np.array([b.mins for b in boxes], dtype=np.float64),
                np.array([b.maxs for b in boxes], dtype=np.float64),
            )
        return self._cell_arrays

    def packed_rtree(self):
        """Lazily built packed (columnar) R-tree over the structure cells.

        The columnar counterpart of :meth:`rtree`: same cells, same
        candidate sets, but queried with array kernels and returning cell
        ids directly (rows coincide with cell ids by construction).
        """
        if self._packed is None:
            from repro.columnar.packed_rtree import PackedRTree

            self._packed = PackedRTree(*self._cell_box_arrays())
        return self._packed

    def _batch_query_arrays(self, np, x0, y0, t0, x1, y1, t1):
        """Per-instance query boxes as (mins, maxs) arrays, cell-box order.

        The vectorized counterpart of :meth:`query_box` over extent columns
        (projects onto this structure's dimensions, in the order
        :meth:`cell_box` uses).
        """
        raise NotImplementedError

    def _batch_grid_arrays(self, np, x0, y0, t0, x1, y1, t1):
        """Like :meth:`_batch_query_arrays` but in ``_grid`` dimension order
        (the regular structures swap x/y; see their ``regular()`` docs)."""
        raise NotImplementedError

    def candidate_cells(
        self,
        spatial: Envelope,
        temporal: Duration,
        method: str = "auto",
    ) -> list[int]:
        """Cells whose boxes intersect the instance MBR.

        ``method``:

        * ``"naive"`` — scan every cell (the Cartesian baseline of Fig. 6);
        * ``"rtree"`` — query the broadcast R-tree over cells;
        * ``"regular"`` — the arithmetic shortcut (regular structures only);
        * ``"auto"`` — regular shortcut when available, else R-tree.
        """
        box = self.query_box(spatial, temporal)
        if method == "auto":
            method = "regular" if self.is_regular else "rtree"
        if method == "naive":
            return [
                i for i in range(self.n_cells) if self.cell_box(i).intersects(box)
            ]
        if method == "rtree":
            return self.rtree().query(box)
        if method == "regular":
            if not self.is_regular:
                raise ValueError("regular method requires a regular structure")
            return self._regular_candidates(box)
        raise ValueError(f"unknown allocation method {method!r}")


class TimeSeriesStructure(Structure):
    """A sequence of time slots (1-d)."""

    def __init__(self, slots: Sequence[Duration], _grid: GridIndex | None = None):
        super().__init__()
        if not slots:
            raise ValueError("a time-series structure needs at least one slot")
        self.slots = list(slots)
        self._grid = _grid

    @classmethod
    def regular(cls, extent: Duration, n_slots: int) -> "TimeSeriesStructure":
        """Dense equal-cell structure (enables the §4.2 shortcut)."""
        slots = extent.split(n_slots)
        grid = GridIndex(STBox.from_duration(extent), (n_slots,))
        return cls(slots, grid)

    @classmethod
    def of_interval(cls, extent: Duration, slot_seconds: float) -> "TimeSeriesStructure":
        """Regular slots of roughly ``slot_seconds`` each.

        The extent is divided into ``ceil(length / slot_seconds)`` *equal*
        slots, so the structure stays dense and regular (the §4.2 shortcut
        precondition).  When ``slot_seconds`` divides the extent exactly —
        the common case, e.g. hourly slots over whole days — each slot is
        exactly ``slot_seconds`` long.
        """
        slots = tumbling_windows(extent, slot_seconds)
        return cls.regular(extent, len(slots)) if slots else cls(slots)

    @property
    def n_cells(self) -> int:
        """Number of structure cells."""
        return len(self.slots)

    @property
    def is_regular(self) -> bool:
        """True when cells are equal-sized and densely tiling."""
        return self._grid is not None

    def cell_box(self, cell: int) -> STBox:
        """The index box of one cell."""
        return STBox.from_duration(self.slots[cell])

    def query_box(self, spatial: Envelope, temporal: Duration) -> STBox:
        """Project an instance MBR onto this structure's dimensions."""
        return STBox.from_duration(temporal)

    def _regular_candidates(self, box: STBox) -> list[int]:
        return self._grid.candidate_cells(box)

    def _batch_query_arrays(self, np, x0, y0, t0, x1, y1, t1):
        return t0.reshape(-1, 1), t1.reshape(-1, 1)

    def _batch_grid_arrays(self, np, x0, y0, t0, x1, y1, t1):
        return t0.reshape(-1, 1), t1.reshape(-1, 1)

    def empty_instance(self, value_factory: Callable[[], list] = list) -> TimeSeries:
        """An empty collective instance over these cells."""
        return TimeSeries.of_slots(self.slots, value_factory)


class SpatialMapStructure(Structure):
    """A set of spatial cells (2-d)."""

    def __init__(self, geometries: Sequence[Geometry], _grid: GridIndex | None = None):
        super().__init__()
        if not geometries:
            raise ValueError("a spatial-map structure needs at least one cell")
        self.geometries = list(geometries)
        self._grid = _grid

    @classmethod
    def regular(cls, extent: Envelope, nx: int, ny: int) -> "SpatialMapStructure":
        """Dense equal-cell structure (enables the §4.2 shortcut)."""
        cells = extent.split(nx, ny)
        # Envelope.split is row-major (y-outer, x-inner); GridIndex flattens
        # C-order (last dim fastest), so declare dims as (y, x).
        grid = GridIndex(
            STBox((extent.min_y, extent.min_x), (extent.max_y, extent.max_x)),
            (ny, nx),
        )
        return cls(cells, grid)

    @property
    def n_cells(self) -> int:
        """Number of structure cells."""
        return len(self.geometries)

    @property
    def is_regular(self) -> bool:
        """True when cells are equal-sized and densely tiling."""
        return self._grid is not None

    def cell_box(self, cell: int) -> STBox:
        """The index box of one cell."""
        return STBox.from_envelope(self.geometries[cell].envelope)

    def query_box(self, spatial: Envelope, temporal: Duration) -> STBox:
        """Project an instance MBR onto this structure's dimensions."""
        return STBox.from_envelope(spatial)

    def _regular_candidates(self, box: STBox) -> list[int]:
        # Swap (x, y) -> (y, x) to match the grid's dimension order.
        swapped = STBox((box.mins[1], box.mins[0]), (box.maxs[1], box.maxs[0]))
        return self._grid.candidate_cells(swapped)

    def _batch_query_arrays(self, np, x0, y0, t0, x1, y1, t1):
        return np.stack((x0, y0), axis=1), np.stack((x1, y1), axis=1)

    def _batch_grid_arrays(self, np, x0, y0, t0, x1, y1, t1):
        # Same (y, x) swap as _regular_candidates.
        return np.stack((y0, x0), axis=1), np.stack((y1, x1), axis=1)

    def exact_cells(
        self, geometry: Geometry, candidates: Sequence[int]
    ) -> list[int]:
        """Refine MBR candidates with exact geometry intersection."""
        return [i for i in candidates if self.geometries[i].intersects(geometry)]

    def empty_instance(self, value_factory: Callable[[], list] = list) -> SpatialMap:
        """An empty collective instance over these cells."""
        return SpatialMap.of_geometries(self.geometries, value_factory)


class RasterStructure(Structure):
    """A set of (geometry, duration) cells (3-d)."""

    def __init__(
        self,
        cells: Sequence[tuple[Geometry, Duration]],
        _grid: GridIndex | None = None,
    ):
        super().__init__()
        if not cells:
            raise ValueError("a raster structure needs at least one cell")
        self.cells = list(cells)
        self._grid = _grid

    @classmethod
    def regular(
        cls,
        extent: Envelope,
        duration: Duration,
        nx: int,
        ny: int,
        nt: int,
    ) -> "RasterStructure":
        """Dense equal-cell structure (enables the §4.2 shortcut)."""
        spatial_cells = extent.split(nx, ny)
        slots = duration.split(nt)
        cells = [(g, d) for g in spatial_cells for d in slots]
        # Cell order: spatial row-major (y-outer, x-inner) then time inner —
        # so grid dims are (y, x, t) in C-order.
        grid = GridIndex(
            STBox(
                (extent.min_y, extent.min_x, duration.start),
                (extent.max_y, extent.max_x, duration.end),
            ),
            (ny, nx, nt),
        )
        return cls(cells, grid)

    @classmethod
    def of_product(
        cls,
        geometries: Sequence[Geometry],
        durations: Sequence[Duration],
    ) -> "RasterStructure":
        """Irregular raster from explicit spatial cells × temporal slots."""
        return cls([(g, d) for g in geometries for d in durations])

    @classmethod
    def from_road_network(
        cls,
        network,
        durations: Sequence[Duration],
        buffer_degrees: float = 0.0,
    ) -> "RasterStructure":
        """Raster of (road segment × time slot) cells.

        The spatial cell of each segment is its linestring, or its
        envelope expanded by ``buffer_degrees`` when a catchment area is
        wanted (e.g. air-quality stations near but not on the road).  This
        is the structure of the paper's road-network applications (air
        over road, Table 9's flow raster).
        """
        cells = []
        for seg in network.segments:
            shape = seg.linestring()
            geom: Geometry = (
                shape.envelope.expanded(buffer_degrees) if buffer_degrees > 0 else shape
            )
            cells.append(geom)
        return cls.of_product(cells, durations)

    @property
    def n_cells(self) -> int:
        """Number of structure cells."""
        return len(self.cells)

    @property
    def is_regular(self) -> bool:
        """True when cells are equal-sized and densely tiling."""
        return self._grid is not None

    def cell_box(self, cell: int) -> STBox:
        """The index box of one cell."""
        geom, dur = self.cells[cell]
        env = geom.envelope
        return STBox(
            (env.min_x, env.min_y, dur.start), (env.max_x, env.max_y, dur.end)
        )

    def query_box(self, spatial: Envelope, temporal: Duration) -> STBox:
        """Project an instance MBR onto this structure's dimensions."""
        return STBox.from_st(spatial, temporal)

    def _regular_candidates(self, box: STBox) -> list[int]:
        swapped = STBox(
            (box.mins[1], box.mins[0], box.mins[2]),
            (box.maxs[1], box.maxs[0], box.maxs[2]),
        )
        return self._grid.candidate_cells(swapped)

    def _batch_query_arrays(self, np, x0, y0, t0, x1, y1, t1):
        return np.stack((x0, y0, t0), axis=1), np.stack((x1, y1, t1), axis=1)

    def _batch_grid_arrays(self, np, x0, y0, t0, x1, y1, t1):
        # Same (y, x, t) swap as _regular_candidates.
        return np.stack((y0, x0, t0), axis=1), np.stack((y1, x1, t1), axis=1)

    def exact_cells(
        self, geometry: Geometry, duration: Duration, candidates: Sequence[int]
    ) -> list[int]:
        """Refine MBR candidates with exact geometry + duration tests."""
        out = []
        for i in candidates:
            cell_geom, cell_dur = self.cells[i]
            if cell_dur.intersects(duration) and cell_geom.intersects(geometry):
                out.append(i)
        return out

    def empty_instance(self, value_factory: Callable[[], list] = list) -> Raster:
        """An empty collective instance over these cells."""
        return Raster.of_cells(self.cells, value_factory)
