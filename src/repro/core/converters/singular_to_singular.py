"""Singular→singular conversions (paper Section 3.2.2).

* trajectory→event: take the sojourn points out — a pure ``flatMap``;
* event→trajectory: group events by an identity key and time-order them.
  The implementation uses the engine's map-side combine (``reduceByKey``
  on list concatenation) — the paper's "map-side join mechanism to reduce
  data shuffling": events are merged locally per partition before the
  cross-machine shuffle.

The calibration conversions (trajectory→trajectory map matching and
event→event road snapping) live in :mod:`repro.mapmatching.converters`
because they need the road-network substrate.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.rdd import RDD
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory


class Traj2EventConverter:
    """Explode each trajectory into its sojourn-point events.

    Each emitted event carries the entry value, and ``data`` is the source
    trajectory's data (so events stay traceable to their trip).
    """

    def __init__(self, keep_index: bool = False):
        #: When set, each event's value becomes ``(index, original value)``
        #: so downstream logic can recover point order.
        self.keep_index = keep_index

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        keep_index = self.keep_index

        def explode(traj: Trajectory) -> list[Event]:
            events = []
            for i, e in enumerate(traj.entries):
                value = (i, e.value) if keep_index else e.value
                events.append(Event(e.spatial, e.temporal, value, traj.data))
            return events

        return rdd.flat_map(explode)


class Event2TrajConverter:
    """Stitch events into trajectories, grouped by an identity key.

    ``key_func`` defaults to the event's ``data`` field (e.g. the vehicle
    plate id of the Section 6 case study).  Events are combined locally on
    each partition first (map-side), shuffled once, and time-sorted on the
    reduce side.
    """

    def __init__(
        self,
        key_func: Callable[[Event], Any] | None = None,
        num_partitions: int | None = None,
        min_points: int = 1,
    ):
        self.key_func = key_func or (lambda ev: ev.data)
        self.num_partitions = num_partitions
        self.min_points = min_points

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        key_func = self.key_func
        min_points = self.min_points

        def to_pair(ev: Event) -> tuple:
            return (key_func(ev), (ev.spatial.x, ev.spatial.y, ev.temporal.start, ev.value))

        # In-place combiners: ``create`` always allocates a fresh list and
        # combined values flow linearly through the shuffle, so mutation is
        # safe — the standard Spark combiner idiom, linear instead of the
        # quadratic cost of repeated list concatenation.
        def create(point: tuple) -> list:
            return [point]

        def merge_value(acc: list, point: tuple) -> list:
            acc.append(point)
            return acc

        def merge_combiners(a: list, b: list) -> list:
            a.extend(b)
            return a

        def build(kv: tuple) -> list[Trajectory]:
            key, points = kv
            if len(points) < min_points:
                return []
            return [Trajectory.of_points(points, data=key, sort=True)]

        return (
            rdd.map(to_pair)
            .combine_by_key(create, merge_value, merge_combiners, self.num_partitions)
            .flat_map(build)
        )
