"""Collective→singular and collective→collective conversions.

All of these run per partition with no shuffle (paper Section 3.2.2): each
executor's partial collective instance is transformed independently.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.instances.collective import CollectiveInstance
from repro.instances.raster import Raster
from repro.instances.spatialmap import SpatialMap
from repro.instances.timeseries import TimeSeries
from repro.temporal.duration import Duration


class CollectiveToSingularConverter:
    """Flatten cell arrays back into singular instances.

    Requires cell values of type ``Array[SingularInstance]`` (the paper's
    precondition).  When the upstream conversion duplicated an instance
    into several cells, ``distinct_key`` deduplicates by that key.
    """

    def __init__(self, distinct_key: Callable[[Any], Any] | None = None):
        self.distinct_key = distinct_key

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        distinct_key = self.distinct_key

        def flatten(instance: CollectiveInstance) -> list:
            out = []
            seen = set()
            for entry in instance.entries:
                if not isinstance(entry.value, (list, tuple)):
                    raise TypeError(
                        "collective→singular conversion needs Array-typed cell "
                        f"values, got {type(entry.value).__name__}"
                    )
                for singular in entry.value:
                    if distinct_key is not None:
                        key = distinct_key(singular)
                        if key in seen:
                            continue
                        seen.add(key)
                    out.append(singular)
            return out

        return rdd.flat_map(flatten)


class Raster2SmConverter:
    """Group raster cells by their spatial attribute (paper Section 3.2.2).

    ``combine`` folds the values of cells sharing a geometry; the result's
    cell order follows first appearance in the raster.
    """

    def __init__(self, combine: Callable[[Any, Any], Any]):
        self.combine = combine

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        combine = self.combine

        def regroup(raster: Raster) -> SpatialMap:
            order: list[Geometry] = []
            values: dict[Geometry, Any] = {}
            durations: dict[Geometry, Duration] = {}
            for entry in raster.entries:
                geom = entry.spatial
                if geom in values:
                    values[geom] = combine(values[geom], entry.value)
                    durations[geom] = durations[geom].merge(entry.temporal)
                else:
                    order.append(geom)
                    values[geom] = entry.value
                    durations[geom] = entry.temporal
            from repro.instances.base import Entry

            return SpatialMap(
                [Entry(g, durations[g], values[g]) for g in order], raster.data
            )

        return rdd.map(regroup)


class Raster2TsConverter:
    """Group raster cells by their temporal attribute."""

    def __init__(self, combine: Callable[[Any, Any], Any]):
        self.combine = combine

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        combine = self.combine

        def regroup(raster: Raster) -> TimeSeries:
            order: list[Duration] = []
            values: dict[Duration, Any] = {}
            for entry in raster.entries:
                dur = entry.temporal
                if dur in values:
                    values[dur] = combine(values[dur], entry.value)
                else:
                    order.append(dur)
                    values[dur] = entry.value
            order.sort(key=lambda d: (d.start, d.end))
            return TimeSeries.of_slots(order, data=raster.data).with_cell_values(
                [values[d] for d in order]
            )

        return rdd.map(regroup)


class Sm2RasterConverter:
    """Spatial map → single-slot raster (paper: "a general spatial map can
    only be converted to ... a raster with one cell" per spatial cell; the
    temporal range is the union of the cell durations)."""

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        def lift(sm: SpatialMap) -> Raster:
            extent = Duration.merge_all(e.temporal for e in sm.entries)
            return Raster.of_cells(
                [(e.spatial, extent) for e in sm.entries], data=sm.data
            ).with_cell_values([e.value for e in sm.entries])

        return rdd.map(lift)


class Ts2RasterConverter:
    """Time series → raster whose single spatial cell covers everything."""

    def __init__(self, spatial: Geometry):
        self.spatial = spatial

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        spatial = self.spatial

        def lift(ts: TimeSeries) -> Raster:
            return Raster.of_cells(
                [(spatial, e.temporal) for e in ts.entries], data=ts.data
            ).with_cell_values([e.value for e in ts.entries])

        return rdd.map(lift)


class Sm2TsConverter:
    """Spatial map → time series *with one slot* (paper Section 3.2.2).

    "A general spatial map can only be converted to a time series with one
    slot ... the temporal range of the converted instance is the union of
    the durations of the original spatial map cells.  The rules of
    combining the value and data fields have to be explicitly defined."
    """

    def __init__(self, combine: Callable[[Any, Any], Any]):
        self.combine = combine

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        combine = self.combine

        def collapse(sm: SpatialMap) -> TimeSeries:
            extent = Duration.merge_all(e.temporal for e in sm.entries)
            value = sm.entries[0].value
            for entry in sm.entries[1:]:
                value = combine(value, entry.value)
            return TimeSeries.of_slots([extent], data=sm.data).with_cell_values([value])

        return rdd.map(collapse)


class Ts2SmConverter:
    """Time series → spatial map *with one cell* (the symmetric collapse).

    The single cell's geometry is the union MBR of the slot geometries
    (or an explicit ``spatial`` when the series' placeholder geometry
    carries no information, the common case).
    """

    def __init__(self, combine: Callable[[Any, Any], Any], spatial: Geometry | None = None):
        self.combine = combine
        self.spatial = spatial

    def convert(self, rdd: RDD) -> RDD:
        """Apply this conversion to the RDD (see class docstring)."""
        combine = self.combine
        spatial = self.spatial

        def collapse(ts: TimeSeries) -> SpatialMap:
            from repro.geometry.envelope import Envelope

            geom = spatial or Envelope.merge_all(
                e.spatial.envelope for e in ts.entries
            )
            value = ts.entries[0].value
            for entry in ts.entries[1:]:
                value = combine(value, entry.value)
            extent = Duration.merge_all(e.temporal for e in ts.entries)
            return SpatialMap.of_geometries(
                [geom], temporal=extent, data=ts.data
            ).with_cell_values([value])

        return rdd.map(collapse)
