"""The six singular→collective converters.

Each is a thin, explicitly-named wrapper over
:class:`~repro.core.converters.base.ToCollectiveConverter`, matching the
paper's API surface (``Event2SmConverter(polygonArr)`` etc.) and giving
each conversion a natural constructor for its structure kind.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.converters.base import ToCollectiveConverter
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)
from repro.geometry.base import Geometry
from repro.temporal.duration import Duration


class Event2TsConverter(ToCollectiveConverter):
    """Events → time series (e.g. hourly flow extraction)."""

    def __init__(
        self,
        slots: Sequence[Duration] | TimeSeriesStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            slots
            if isinstance(slots, TimeSeriesStructure)
            else TimeSeriesStructure(list(slots))
        )
        super().__init__(structure, method, use_columnar)


class Event2SmConverter(ToCollectiveConverter):
    """Events → spatial map (e.g. POI counts per postal area)."""

    def __init__(
        self,
        geometries: Sequence[Geometry] | SpatialMapStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            geometries
            if isinstance(geometries, SpatialMapStructure)
            else SpatialMapStructure(list(geometries))
        )
        super().__init__(structure, method, use_columnar)


class Event2RasterConverter(ToCollectiveConverter):
    """Events → raster (e.g. air quality over road segments per day)."""

    def __init__(
        self,
        cells: Sequence[tuple[Geometry, Duration]] | RasterStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            cells if isinstance(cells, RasterStructure) else RasterStructure(list(cells))
        )
        super().__init__(structure, method, use_columnar)


class Traj2TsConverter(ToCollectiveConverter):
    """Trajectories → time series."""

    def __init__(
        self,
        slots: Sequence[Duration] | TimeSeriesStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            slots
            if isinstance(slots, TimeSeriesStructure)
            else TimeSeriesStructure(list(slots))
        )
        super().__init__(structure, method, use_columnar)


class Traj2SmConverter(ToCollectiveConverter):
    """Trajectories → spatial map (e.g. grid speed extraction)."""

    def __init__(
        self,
        geometries: Sequence[Geometry] | SpatialMapStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            geometries
            if isinstance(geometries, SpatialMapStructure)
            else SpatialMapStructure(list(geometries))
        )
        super().__init__(structure, method, use_columnar)


class Traj2RasterConverter(ToCollectiveConverter):
    """Trajectories → raster (the running example of Section 3.4)."""

    def __init__(
        self,
        cells: Sequence[tuple[Geometry, Duration]] | RasterStructure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        structure = (
            cells if isinstance(cells, RasterStructure) else RasterStructure(list(cells))
        )
        super().__init__(structure, method, use_columnar)
