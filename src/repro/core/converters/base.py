"""Shared allocation machinery for singular→collective conversions."""

from __future__ import annotations

from threading import Lock
from typing import Any, Callable, Sequence

from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.obs.tracer import phase as _phase_span
from repro.geometry.linestring import LineString
from repro.instances.base import Instance
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    Structure,
    TimeSeriesStructure,
)
from repro.temporal.duration import Duration


class AllocationStats:
    """Counts the work a conversion performed.

    ``candidate_tests`` is the number of instance↔cell pairings examined
    (for the naive strategy this is m*n; the Section 4.2 optimizations
    shrink it), ``exact_tests`` the number that needed a full geometric
    intersection.  These counters are what the Figure 6 benchmark reports
    next to wall-clock.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self.instances = 0
        self.candidate_tests = 0
        self.exact_tests = 0
        self.allocations = 0

    def add(self, instances: int, candidates: int, exact: int, allocations: int) -> None:
        """Accumulate one allocation batch's counters (thread-safe)."""
        with self._lock:
            self.instances += instances
            self.candidate_tests += candidates
            self.exact_tests += exact
            self.allocations += allocations

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.instances = 0
            self.candidate_tests = 0
            self.exact_tests = 0
            self.allocations = 0

    def snapshot(self) -> dict:
        """Counters as a plain dict."""
        return {
            "instances": self.instances,
            "candidate_tests": self.candidate_tests,
            "exact_tests": self.exact_tests,
            "allocations": self.allocations,
        }

    # Converter closures capture the stats object, so the process backend
    # pickles it into every task; the lock must not travel (and a worker's
    # copy starts its own).  Flagged by ``repro lint`` / strict mode as a
    # REPRO105 hazard before this existed.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = Lock()


def _is_primary(instance: Instance) -> bool:
    """False only for the tagged replicas of duplicate-mode partitioning."""
    return getattr(instance, "dup_primary", True)


def _matches_cell(instance: Instance, geom: Geometry | None, dur: Duration | None) -> bool:
    """Exact instance↔cell intersection.

    * events: one entry test;
    * trajectories: any point entry matches, or any consecutive segment
      (whose time span overlaps the cell duration) crosses the geometry —
      so a fast-moving vehicle that crosses a cell between two samples is
      still allocated to it;
    * other instances: any entry matches.
    """
    if isinstance(instance, Trajectory):
        entries = instance.entries
        for e in entries:
            if (dur is None or dur.intersects(e.temporal)) and (
                geom is None or geom.intersects(e.spatial)
            ):
                return True
        for a, b in zip(entries, entries[1:]):
            span = Duration(a.temporal.start, max(a.temporal.start, b.temporal.end))
            if dur is not None and not dur.intersects(span):
                continue
            if geom is None:
                return True
            if (a.spatial.x, a.spatial.y) == (b.spatial.x, b.spatial.y):
                continue  # point entries already checked
            segment = LineString(
                [(a.spatial.x, a.spatial.y), (b.spatial.x, b.spatial.y)]
            )
            if geom.intersects(segment):
                return True
        return False
    for e in instance.entries:
        if (dur is None or dur.intersects(e.temporal)) and (
            geom is None or geom.intersects(e.spatial)
        ):
            return True
    return False


def _needs_exact(instance: Instance, structure: Structure) -> bool:
    """Can the MBR candidate set be trusted without an exact pass?

    Following Section 4.2: the exact pass is skippable when the instance's
    MBR equals its shape (points, envelopes) *and* the structure cells are
    themselves boxes — always true for time series (pure intervals) and for
    regular spatial/raster structures with box cells.
    """
    if isinstance(structure, TimeSeriesStructure):
        # Durations are exactly their 1-d boxes; trajectories' entry
        # timestamps densely cover their extent at entry level, but an MBR
        # candidate may fall between samples — keep exactness for them.
        return isinstance(instance, Trajectory)
    cell_shapes_are_boxes = structure.is_regular
    if isinstance(instance, Event) and instance.spatial.is_point and cell_shapes_are_boxes:
        return False
    return True


def allocate(
    instances: Sequence[Instance],
    structure: Structure,
    method: str = "auto",
    stats: AllocationStats | None = None,
    use_columnar: bool = True,
) -> list[list[Instance]]:
    """Assign each instance to every structure cell it intersects.

    Returns ``cells`` with ``cells[i]`` the list of instances allocated to
    cell ``i``.  The candidate enumeration strategy is Section 4.2's
    knob; exact refinement runs only when required (see
    :func:`_needs_exact`).

    With ``use_columnar`` (and numpy importable) candidate enumeration is
    batched through the :mod:`repro.columnar` kernels — identical cells,
    identical :class:`AllocationStats`, one vectorized pass instead of a
    per-instance ``candidate_cells`` call.
    """
    if use_columnar and instances:
        from repro._deps import has_numpy

        if has_numpy():
            return _allocate_columnar(instances, structure, method, stats)
    cells: list[list[Instance]] = [[] for _ in range(structure.n_cells)]
    total_candidates = 0
    total_exact = 0
    total_alloc = 0
    for inst in instances:
        spatial = inst.spatial_extent
        temporal = inst.temporal_extent
        candidates = structure.candidate_cells(spatial, temporal, method)
        if method == "naive":
            total_candidates += structure.n_cells
        else:
            total_candidates += len(candidates)
        if _needs_exact(inst, structure):
            for cell in candidates:
                total_exact += 1
                geom, dur = _cell_bounds(structure, cell)
                if _matches_cell(inst, geom, dur):
                    cells[cell].append(inst)
                    total_alloc += 1
        else:
            for cell in candidates:
                cells[cell].append(inst)
            total_alloc += len(candidates)
    if stats is not None:
        stats.add(len(instances), total_candidates, total_exact, total_alloc)
    return cells


def _allocate_columnar(
    instances: Sequence[Instance],
    structure: Structure,
    method: str,
    stats: AllocationStats | None,
) -> list[list[Instance]]:
    """Batched candidate enumeration behind :func:`allocate`.

    Extent extraction is one Python pass; candidates then come from the
    grid range kernel (regular), the packed R-tree (rtree), or a
    vectorized full scan (naive).  The per-instance allocation loop —
    appends and, where :func:`_needs_exact` demands it, scalar geometry
    refinement — is unchanged, so cell contents and stats match the
    scalar path row for row.
    """
    import numpy as np

    n = len(instances)
    x0 = np.empty(n, dtype=np.float64)
    y0 = np.empty(n, dtype=np.float64)
    t0 = np.empty(n, dtype=np.float64)
    x1 = np.empty(n, dtype=np.float64)
    y1 = np.empty(n, dtype=np.float64)
    t1 = np.empty(n, dtype=np.float64)
    for i, inst in enumerate(instances):
        x0[i], y0[i], t0[i], x1[i], y1[i], t1[i] = inst.st_bounds()

    resolved = method
    if resolved == "auto":
        resolved = "regular" if structure.is_regular else "rtree"
    cells: list[list[Instance]] = [[] for _ in range(structure.n_cells)]
    total_candidates = 0
    total_exact = 0
    total_alloc = 0

    if resolved == "regular":
        if not structure.is_regular:
            raise ValueError("regular method requires a regular structure")
        qmins, qmaxs = structure._batch_grid_arrays(np, x0, y0, t0, x1, y1, t1)
        firsts, lasts = structure._grid.candidate_ranges_batch(qmins, qmaxs)
        shape = structure._grid.shape
        # Candidate totals come straight off the range arrays (the
        # candidate count of a range query is the product of its per-dim
        # widths; an empty dim zeroes it) — the loops below never build a
        # candidate list for the no-exact-pass fast case.
        total_candidates = int(
            np.clip(lasts - firsts + 1, 0, None).prod(axis=1).sum()
        )
        firsts = firsts.tolist()
        lasts = lasts.tolist()
        if len(shape) == 1:
            for i, inst in enumerate(instances):
                f0 = firsts[i][0]
                l0 = lasts[i][0]
                if f0 > l0:
                    continue
                if _needs_exact(inst, structure):
                    for cell in range(f0, l0 + 1):
                        total_exact += 1
                        geom, dur = _cell_bounds(structure, cell)
                        if _matches_cell(inst, geom, dur):
                            cells[cell].append(inst)
                            total_alloc += 1
                elif f0 == l0:
                    cells[f0].append(inst)
                    total_alloc += 1
                else:
                    for cell in range(f0, l0 + 1):
                        cells[cell].append(inst)
                    total_alloc += l0 - f0 + 1
        elif len(shape) == 2:
            n1 = shape[1]
            for i, inst in enumerate(instances):
                (f0, f1), (l0, l1) = firsts[i], lasts[i]
                if f0 > l0 or f1 > l1:
                    continue
                if _needs_exact(inst, structure):
                    for a in range(f0, l0 + 1):
                        base = a * n1
                        for cell in range(base + f1, base + l1 + 1):
                            total_exact += 1
                            geom, dur = _cell_bounds(structure, cell)
                            if _matches_cell(inst, geom, dur):
                                cells[cell].append(inst)
                                total_alloc += 1
                else:
                    for a in range(f0, l0 + 1):
                        base = a * n1
                        for cell in range(base + f1, base + l1 + 1):
                            cells[cell].append(inst)
                    total_alloc += (l0 - f0 + 1) * (l1 - f1 + 1)
        else:
            n1, n2 = shape[1], shape[2]
            for i, inst in enumerate(instances):
                (f0, f1, f2), (l0, l1, l2) = firsts[i], lasts[i]
                if f0 > l0 or f1 > l1 or f2 > l2:
                    continue
                if _needs_exact(inst, structure):
                    for a in range(f0, l0 + 1):
                        for b in range(f1, l1 + 1):
                            base = (a * n1 + b) * n2
                            for cell in range(base + f2, base + l2 + 1):
                                total_exact += 1
                                geom, dur = _cell_bounds(structure, cell)
                                if _matches_cell(inst, geom, dur):
                                    cells[cell].append(inst)
                                    total_alloc += 1
                else:
                    for a in range(f0, l0 + 1):
                        for b in range(f1, l1 + 1):
                            base = (a * n1 + b) * n2
                            for cell in range(base + f2, base + l2 + 1):
                                cells[cell].append(inst)
                    total_alloc += (
                        (l0 - f0 + 1) * (l1 - f1 + 1) * (l2 - f2 + 1)
                    )
        if stats is not None:
            stats.add(n, total_candidates, total_exact, total_alloc)
        return cells
    if resolved == "rtree":
        tree = structure.packed_rtree()
        qmins, qmaxs = structure._batch_query_arrays(np, x0, y0, t0, x1, y1, t1)

        def candidates_of(i: int) -> list[int]:
            return tree.query_coords(qmins[i], qmaxs[i]).tolist()
    elif resolved == "naive":
        cmins, cmaxs = structure._cell_box_arrays()
        qmins, qmaxs = structure._batch_query_arrays(np, x0, y0, t0, x1, y1, t1)

        def candidates_of(i: int) -> list[int]:
            mask = np.all((cmins <= qmaxs[i]) & (cmaxs >= qmins[i]), axis=1)
            return np.nonzero(mask)[0].tolist()
    else:
        raise ValueError(f"unknown allocation method {method!r}")

    naive = resolved == "naive"
    n_cells = structure.n_cells
    for i, inst in enumerate(instances):
        candidates = candidates_of(i)
        total_candidates += n_cells if naive else len(candidates)
        if _needs_exact(inst, structure):
            for cell in candidates:
                total_exact += 1
                geom, dur = _cell_bounds(structure, cell)
                if _matches_cell(inst, geom, dur):
                    cells[cell].append(inst)
                    total_alloc += 1
        else:
            for cell in candidates:
                cells[cell].append(inst)
            total_alloc += len(candidates)
    if stats is not None:
        stats.add(n, total_candidates, total_exact, total_alloc)
    return cells


def _cell_bounds(structure: Structure, cell: int):
    """(geometry, duration) pair of a cell, with None for ignored dims."""
    if isinstance(structure, TimeSeriesStructure):
        return (None, structure.slots[cell])
    if isinstance(structure, SpatialMapStructure):
        return (structure.geometries[cell], None)
    if isinstance(structure, RasterStructure):
        geom, dur = structure.cells[cell]
        return (geom, dur)
    raise TypeError(f"unknown structure type {type(structure).__name__}")


class ToCollectiveConverter:
    """Base of the six singular→collective converters.

    ``convert`` follows the paper's execution plan exactly: the structure
    (and its R-tree, when irregular) is broadcast once; each partition then
    allocates its local instances and applies ``agg`` per cell — no data
    shuffle, per-partition output is one partial collective instance.
    """

    def __init__(
        self,
        structure: Structure,
        method: str = "auto",
        use_columnar: bool = True,
    ):
        self.structure = structure
        self.method = method
        self.use_columnar = use_columnar
        self.stats = AllocationStats()

    def convert(
        self,
        rdd: RDD,
        pre_map: Callable[[Instance], Instance] | None = None,
        agg: Callable[[list[Instance]], Any] | None = None,
    ) -> RDD:
        """RDD of singular instances → RDD of partial collective instances.

        * ``pre_map`` — per-instance transformation applied in parallel
          before allocation (the paper's ``preMap`` extension point);
        * ``agg`` — per-cell aggregation of the allocated array (the
          paper's ``agg``); when omitted, cell values are the raw arrays.

        Under an active tracer the conversion runs eagerly inside a
        "Conversion" phase span, so its allocation work is billed to this
        phase rather than to whatever action later forces the lineage.
        """
        with _phase_span("Conversion", rdd.ctx.tracer) as span:
            # Duplicate-mode selection replicates boundary instances into
            # every overlapping partition; collective aggregation must see
            # each instance exactly once, so the tagged replicas are
            # dropped before anything else (before ``pre_map``, which may
            # rebuild instances and lose the tag).  The primary copy is
            # allocated wherever it lives — structure cells are
            # partition-independent.
            rdd = rdd.filter(_is_primary)
            if pre_map is not None:
                rdd = rdd.map(pre_map)
            from repro._deps import has_numpy

            use_columnar = self.use_columnar and has_numpy()
            if self.method == "rtree" or (
                self.method == "auto" and not self.structure.is_regular
            ):
                # Build the cell index once on the "driver" and broadcast it,
                # rather than rebuilding per executor (Section 4.2).
                if use_columnar:
                    self.structure.packed_rtree()
                else:
                    self.structure.rtree()
            broadcast = rdd.ctx.broadcast(
                self.structure, record_count=self.structure.n_cells
            )
            method = self.method
            stats = self.stats

            def fill(partition: list) -> list:
                structure = broadcast.value
                cell_arrays = allocate(
                    partition, structure, method, stats, use_columnar
                )
                if agg is not None:
                    values = [agg(arr) for arr in cell_arrays]
                else:
                    values = cell_arrays
                instance = structure.empty_instance().with_cell_values(values)
                return [instance]

            converted = rdd.map_partitions(fill)
            if span is not None:
                converted = rdd.ctx.from_partitions(
                    converted._collect_partitions()
                )
                span.args.update(cells=self.structure.n_cells, **self.stats.snapshot())
        return converted

    def convert_merged(
        self,
        rdd: RDD,
        pre_map: Callable[[Instance], Instance] | None = None,
        combine: Callable[[Any, Any], Any] | None = None,
    ):
        """Convert and fold the per-partition partials into one instance.

        Default ``combine`` concatenates cell arrays, appropriate when no
        ``agg`` collapsed them.
        """
        merge = combine or (lambda a, b: a + b)
        with _phase_span("Conversion", rdd.ctx.tracer):
            partials = self.convert(rdd, pre_map=pre_map)
            return partials.reduce(lambda x, y: x.merge_with(y, merge))
