"""Instance converters (paper Sections 3.2.2 and 4.2).

Singular→collective converters broadcast the (empty) structure — plus its
cell R-tree when the structure is irregular — to every executor, allocate
local instances into cells, and apply the optional ``agg`` per cell, with
no data shuffle.  The allocation strategy (naive scan / R-tree /
regular-grid arithmetic) is selectable per call, which is exactly the
comparison Figure 6 runs.

Singular→singular covers trajectory↔event restructuring and the
map-matching calibration conversions; collective→* covers flattening and
regrouping of structure cells.
"""

from repro.core.converters.base import AllocationStats, ToCollectiveConverter
from repro.core.converters.singular_to_collective import (
    Event2RasterConverter,
    Event2SmConverter,
    Event2TsConverter,
    Traj2RasterConverter,
    Traj2SmConverter,
    Traj2TsConverter,
)
from repro.core.converters.singular_to_singular import (
    Event2TrajConverter,
    Traj2EventConverter,
)
from repro.core.converters.collective import (
    CollectiveToSingularConverter,
    Raster2SmConverter,
    Raster2TsConverter,
    Sm2RasterConverter,
    Sm2TsConverter,
    Ts2RasterConverter,
    Ts2SmConverter,
)

__all__ = [
    "AllocationStats",
    "ToCollectiveConverter",
    "Event2TsConverter",
    "Event2SmConverter",
    "Event2RasterConverter",
    "Traj2TsConverter",
    "Traj2SmConverter",
    "Traj2RasterConverter",
    "Traj2EventConverter",
    "Event2TrajConverter",
    "CollectiveToSingularConverter",
    "Raster2SmConverter",
    "Raster2TsConverter",
    "Sm2RasterConverter",
    "Sm2TsConverter",
    "Ts2RasterConverter",
    "Ts2SmConverter",
]
