"""Three-stage pipeline composition helper.

Mirrors the end-to-end code shape of Section 3.4: a selector, an optional
converter, and an extractor are defined up front, then executed as a
pipeline.  Purely a convenience — each operator remains usable on its own.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any

from repro.engine.context import EngineContext
from repro.obs.tracer import phase as _phase_span


class Pipeline:
    """``selector → converter → extractor`` in one call.

    Example::

        pipeline = Pipeline(
            selector=Selector(s_query, t_query, partitioner=TSTRPartitioner(4, 8)),
            converter=Traj2RasterConverter(raster_structure),
            extractor=RasterSpeedExtractor(unit="kmh"),
        )
        speeds = pipeline.run(ctx, data_dir)

    ``converter`` and ``extractor`` are optional; a ``None`` converter
    feeds the selected RDD straight to the extractor, a ``None`` extractor
    returns the converted RDD.
    """

    #: Phase names used for checkpoint directories, in execution order.
    SELECTION_PHASE = "selection"
    CONVERSION_PHASE = "conversion"

    def __init__(self, selector, converter=None, extractor=None):
        self.selector = selector
        self.converter = converter
        self.extractor = extractor

    def run(
        self,
        ctx: EngineContext,
        source,
        checkpoint_dir=None,
        resume: bool = True,
        **select_kwargs,
    ) -> Any:
        """Execute all configured stages and return the final output.

        Under an active tracer (``ctx.tracer`` or the globally installed
        one) the whole run sits inside a root ``pipeline`` span, with each
        operator contributing its own phase span — operators that already
        instrument themselves (the Selector, the collective converters,
        the cell-aggregating extractors) are not double-wrapped, and the
        explicit phase wrappers here cover custom operators that don't.

        ``checkpoint_dir`` enables phase-level checkpoint-and-resume: the
        post-Selection and post-Conversion RDDs are persisted there (via
        :class:`~repro.engine.faults.PipelineCheckpoint`), and — when
        ``resume=True`` — a re-run resumes from the last phase whose
        checkpoint completed instead of recomputing everything upstream.
        Extraction output is the pipeline's *result*, not a phase, so it
        always runs.  ``resume=False`` keeps writing checkpoints but
        ignores existing ones (a forced clean run).
        """
        tracer = ctx.tracer
        root = (
            tracer.span("pipeline", "pipeline", default_scope=True)
            if tracer is not None
            else nullcontext()
        )
        ckpt = None
        if checkpoint_dir is not None:
            from repro.engine.faults import PipelineCheckpoint

            ckpt = PipelineCheckpoint(checkpoint_dir, ctx)
        with root:
            data = None
            conversion_done = False
            if ckpt is not None and resume:
                if self.converter is not None and ckpt.has(self.CONVERSION_PHASE):
                    data = ckpt.load(self.CONVERSION_PHASE)
                    conversion_done = True
                elif ckpt.has(self.SELECTION_PHASE):
                    data = ckpt.load(self.SELECTION_PHASE)
            if data is None:
                data = self.selector.select(ctx, source, **select_kwargs)
                if ckpt is not None:
                    data = ckpt.save(self.SELECTION_PHASE, data)
            if self.converter is not None and not conversion_done:
                with _phase_span("Conversion", tracer):
                    data = self.converter.convert(data)
                if ckpt is not None:
                    data = ckpt.save(self.CONVERSION_PHASE, data)
            if self.extractor is not None:
                with _phase_span("Extraction", tracer):
                    return self.extractor.extract(data)
            return data

    def run_incremental(
        self,
        ctx: EngineContext,
        source,
        state=None,
        since: float | None = None,
        use_metadata: bool = True,
    ):
        """Run over new-since-last-time blocks only; see
        :func:`repro.stream.run_incremental`.

        State mode (pass the previous run's ``state``, or nothing to
        bootstrap) banks per-block partials and returns features over
        everything consumed so far — bit-identical to :meth:`run` over
        the union (the extractor must be a
        :class:`~repro.core.extractors.base.CellAggExtractor`; the
        selector's partitioner, a shuffle-balance knob, is ignored).
        Since mode (pass ``since``, typically the persisted watermark)
        statelessly extracts just the post-``since`` slice.  Returns an
        :class:`~repro.stream.IncrementalRun`.
        """
        from repro.stream.incremental import run_incremental

        return run_incremental(
            self,
            ctx,
            source,
            state=state,
            since=since,
            use_metadata=use_metadata,
        )
