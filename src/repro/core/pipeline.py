"""Three-stage pipeline composition helper.

Mirrors the end-to-end code shape of Section 3.4: a selector, an optional
converter, and an extractor are defined up front, then executed as a
pipeline.  Purely a convenience — each operator remains usable on its own.
"""

from __future__ import annotations

from typing import Any

from repro.engine.context import EngineContext


class Pipeline:
    """``selector → converter → extractor`` in one call.

    Example::

        pipeline = Pipeline(
            selector=Selector(s_query, t_query, partitioner=TSTRPartitioner(4, 8)),
            converter=Traj2RasterConverter(raster_structure),
            extractor=RasterSpeedExtractor(unit="kmh"),
        )
        speeds = pipeline.run(ctx, data_dir)

    ``converter`` and ``extractor`` are optional; a ``None`` converter
    feeds the selected RDD straight to the extractor, a ``None`` extractor
    returns the converted RDD.
    """

    def __init__(self, selector, converter=None, extractor=None):
        self.selector = selector
        self.converter = converter
        self.extractor = extractor

    def run(self, ctx: EngineContext, source, **select_kwargs) -> Any:
        """Execute all configured stages and return the final output."""
        data = self.selector.select(ctx, source, **select_kwargs)
        if self.converter is not None:
            data = self.converter.convert(data)
        if self.extractor is not None:
            return self.extractor.extract(data)
        return data
