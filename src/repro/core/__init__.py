"""The ST4ML core: Selection → Conversion → Extraction (paper Section 3).

* :class:`Selector` — metadata-pruned loading, per-partition R-tree
  filtering, ST-aware repartitioning;
* :mod:`repro.core.structures` — collective structure descriptors (regular
  and irregular) shared by the converters;
* :mod:`repro.core.converters` — all instance conversions, with the naive /
  R-tree / regular-grid allocation strategies of Section 4.2;
* :mod:`repro.core.extractors` — the built-in extractors of Table 3 and
  the custom-extractor hook;
* :class:`InstanceRDD` — the RDD extension API of Table 4;
* :class:`Pipeline` — the three-stage composition helper used by the
  examples and the end-to-end benchmarks.
"""

from repro.core.selector import Selector
from repro.core.api import InstanceRDD
from repro.core.pipeline import Pipeline
from repro.core.structures import (
    RasterStructure,
    SpatialMapStructure,
    TimeSeriesStructure,
)

__all__ = [
    "Selector",
    "InstanceRDD",
    "Pipeline",
    "TimeSeriesStructure",
    "SpatialMapStructure",
    "RasterStructure",
]
