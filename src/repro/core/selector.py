"""The Selection stage (paper Section 3.1).

The selector loads ST data into memory, filters it by the query's ST
range, and repartitions the survivors with an ST-aware partitioner:

1. **load** — from an on-disk :class:`~repro.stio.StDataset` (with
   metadata pruning when available, Section 4.1), an existing RDD, or a
   plain list;
2. **filter** — each partition builds a 3-d R-tree over its entries
   on-the-fly and queries it with the ST range, then refines with the
   exact per-instance predicate (``index=False`` falls back to a pure
   linear scan);
3. **partition** — the survivors are re-shuffled by the configured
   partitioner.  Filtering *before* partitioning is the paper's explicit
   design choice: the full executor pool participates in selection, and
   only the (smaller) selected set is shuffled.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro._deps import has_numpy as _columnar_available
from repro.engine.accumulators import Accumulator, counter
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.index.boxes import STBox, st_query_box
from repro.instances.base import Instance
from repro.obs.tracer import phase as _phase_span
from repro.stio.dataset import LoadStats, StDataset
from repro.temporal.duration import Duration

if TYPE_CHECKING:  # pragma: no cover
    from repro.partitioners.base import STPartitioner


class Selector:
    """Select instances in an ST range and balance them across partitions.

    Mirrors the paper's API::

        selector = Selector(city_area, month, partitioner=TSTRPartitioner(8, 16))
        rdd = selector.select(ctx, data_dir)

    Parameters
    ----------
    spatial, temporal:
        The query range.  Either may be ``None`` (unconstrained).
    num_partitions:
        Parallelism of the selected RDD when no partitioner is given.
    partitioner:
        An :class:`~repro.partitioners.STPartitioner`; when provided, the
        selected data is ST-partitioned with it.
    index:
        Use per-partition R-tree filtering (on by default; ``False``
        degrades to a linear scan — the toggle in the paper's Selector
        constructor).
    use_columnar:
        Run the filter through the vectorized :mod:`repro.columnar`
        kernels (BoxTable scan, or packed R-tree when ``index``).  Exact
        geometry tests still run scalar, but only on the vectorized
        candidate set.  Automatically falls back to the scalar path when
        numpy is unavailable.
    backend:
        Run the selection on a dedicated execution backend
        (``"sequential"`` | ``"thread"`` | ``"process"``).  Selection is
        the scan-heavy stage, so it pays for parallelism even when the
        rest of the pipeline stays sequential.  Because a backend override
        cannot outlive ``select()``, the result is materialized eagerly
        under that backend and returned as a source RDD.  ``None`` (the
        default) keeps the context's backend and the usual lazy result.
    on_corrupt:
        What an undecodable on-disk block does during a from-disk select:
        ``"raise"`` (default) aborts with
        :class:`~repro.engine.errors.CorruptPartitionError`;
        ``"quarantine"`` skips the block, loading it as an empty partition
        and counting it in ``LoadStats.partitions_quarantined`` (surfaced
        as a ``partitions_quarantined`` trace counter).
    """

    def __init__(
        self,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
        num_partitions: int | None = None,
        partitioner: "STPartitioner | None" = None,
        index: bool = True,
        duplicate: bool = False,
        backend: str | None = None,
        use_columnar: bool = True,
        on_corrupt: str = "raise",
    ):
        if spatial is None and temporal is None:
            raise ValueError("a selector needs a spatial and/or temporal range")
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError("on_corrupt must be 'raise' or 'quarantine'")
        self.spatial = spatial
        self.temporal = temporal
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.index = index
        self.duplicate = duplicate
        self.backend = backend
        self.use_columnar = use_columnar
        self.on_corrupt = on_corrupt
        #: I/O statistics of the last ``select`` from disk (Figure 5 data).
        self.last_load_stats: LoadStats | None = None
        #: R-tree probe work of the last ``select``: node + entry tests
        #: across every per-partition index query.  An accumulator because
        #: the trees are task-local; on the process backend worker-side
        #: additions cannot reach this driver-side cell, so the total is a
        #: lower bound there (exact on sequential/thread backends).
        self.rtree_probes: Accumulator[int] = counter("rtree_probes")
        #: Per-partition selection-index cache traffic of the last
        #: ``select`` (same process-backend caveat as ``rtree_probes``).
        self.index_cache_hits: Accumulator[int] = counter("selection_index_hits")
        self.index_cache_misses: Accumulator[int] = counter("selection_index_misses")

    # -- loading -------------------------------------------------------------------

    def _load(
        self,
        ctx: EngineContext,
        source: "str | Path | RDD | Sequence[Instance]",
        use_metadata: bool,
        offset: int = 0,
    ) -> RDD:
        if isinstance(source, RDD):
            return source
        if isinstance(source, (str, Path)):
            rdd, stats = StDataset(source).read(
                ctx,
                self.spatial,
                self.temporal,
                use_metadata=use_metadata,
                on_corrupt=self.on_corrupt,
                offset=offset,
            )
            self.last_load_stats = stats
            return rdd
        return ctx.parallelize(list(source), self.num_partitions or ctx.default_parallelism)

    # -- filtering ------------------------------------------------------------------

    def _query_box(self) -> STBox:
        # The same canonical box the metadata index prunes with — shared
        # construction is what keeps pruned and full-scan loads equivalent.
        return st_query_box(self.spatial, self.temporal)

    def _filter(self, rdd: RDD) -> RDD:
        spatial = self.spatial
        temporal = self.temporal
        box = self._query_box()
        use_index = self.index
        probes = self.rtree_probes
        cache_hits = self.index_cache_hits
        cache_misses = self.index_cache_misses
        columnar = self.use_columnar and _columnar_available()

        def exact(inst: Instance) -> bool:
            s = spatial if spatial is not None else inst.spatial_extent
            t = temporal if temporal is not None else inst.temporal_extent
            return inst.intersects(s, t)

        def filter_partition(partition: list) -> list:
            if not partition:
                return []
            # The per-partition index cache lives in its own module and is
            # reached by import so it stays out of the closure's captures
            # (worker-local on the process backend; invalidated by the
            # driver on repartition).
            if columnar:
                from repro.columnar import selection_index

                table, tree, was_cached = selection_index(
                    partition, with_tree=use_index, capacity=32
                )
                (cache_hits if was_cached else cache_misses).add(1)
                if use_index:
                    # Cached trees accumulate stats across queries, so the
                    # probe counter gets this query's delta, not the total.
                    before = tree.stats.node_tests + tree.stats.entry_tests
                    rows = tree.query_rows(box)
                    probes.add(tree.stats.node_tests + tree.stats.entry_tests - before)
                else:
                    rows = table.candidate_rows(box)
                # Scalar refinement only on the vectorized candidate set —
                # and skipped entirely where the MBR *is* the shape.
                box_exact = table.box_exact
                instances = table.rows
                out = []
                for r in rows.tolist():
                    inst = instances[r]
                    if box_exact[r] or exact(inst):
                        out.append(inst)
                return out
            if use_index:
                # Per-partition 3-d R-tree built on the fly (Section 3.1),
                # cached on partition identity: prune by instance MBR, then
                # apply the exact predicate.
                from repro.columnar.cache import partition_rtree

                tree, was_cached = partition_rtree(partition, capacity=32)
                (cache_hits if was_cached else cache_misses).add(1)
                before = tree.stats.node_tests + tree.stats.entry_tests
                candidates = tree.query(box)
                probes.add(tree.stats.node_tests + tree.stats.entry_tests - before)
                # Tree traversal order depends on tree shape; restore the
                # partition's own order so selection output is identical
                # across index on/off and scalar/columnar paths (downstream
                # sampling — e.g. partitioner fitting — is order-sensitive).
                positions = {id(inst): i for i, inst in enumerate(partition)}
                candidates.sort(key=lambda inst: positions[id(inst)])
            else:
                candidates = partition
            return [inst for inst in candidates if exact(inst)]

        return rdd.map_partitions(filter_partition)

    # -- the public API ------------------------------------------------------------------

    def select(
        self,
        ctx: EngineContext,
        source: "str | Path | RDD | Sequence[Instance]",
        use_metadata: bool = True,
        offset: int = 0,
    ) -> RDD:
        """Load, filter, and (optionally) ST-partition.

        ``source`` may be a dataset directory (metadata-pruned when
        ``use_metadata``), an RDD, or a plain instance list.  ``offset``
        (directory sources only) skips the first ``offset`` on-disk
        blocks before pruning — the incremental-read hook of
        :meth:`~repro.core.pipeline.Pipeline.run_incremental`.

        Under an active tracer the whole selection runs eagerly inside a
        "Selection" phase span (profiling moves the evaluation boundary —
        otherwise all the scan work would be billed to whatever action
        later forces the lineage) and the phase counters — partitions
        pruned vs scanned, R-tree probes — are recorded.
        """
        with _phase_span("Selection", ctx.tracer) as span:
            self.rtree_probes.reset()
            self.index_cache_hits.reset()
            self.index_cache_misses.reset()
            loaded = self._load(ctx, source, use_metadata, offset=offset)
            selected = self._filter(loaded)
            if self.partitioner is not None:
                selected = self.partitioner.partition(
                    selected,
                    duplicate=self.duplicate,
                    use_columnar=self.use_columnar,
                )
            elif (
                self.num_partitions is not None
                and self.num_partitions != selected.num_partitions
            ):
                selected = selected.repartition(self.num_partitions)
                # Repartitioning produces new partition lists; drop the
                # per-partition selection indexes keyed on the old ones.
                from repro.columnar.cache import invalidate_partition_indexes

                invalidate_partition_indexes()
            if self.backend is not None:
                # Dedicated-backend selection is eager: the override is
                # scoped to this call, so the scan must run now, not at a
                # later action.
                with ctx.using_backend(self.backend):
                    partitions = selected._collect_partitions()
                selected = ctx.from_partitions(partitions)
            elif span is not None:
                selected = ctx.from_partitions(selected._collect_partitions())
            if span is not None:
                self._record_phase_counters(
                    ctx,
                    span,
                    from_disk=isinstance(source, (str, Path)),
                )
        return selected

    def _record_phase_counters(self, ctx: EngineContext, span, from_disk: bool) -> None:
        tracer = ctx.tracer
        if tracer is None:  # pragma: no cover - span implies a tracer
            return
        probes = self.rtree_probes.value
        tracer.counter("rtree_probes", probes)
        span.args["rtree_probes"] = probes
        hits = self.index_cache_hits.value
        misses = self.index_cache_misses.value
        tracer.counter("selection_index_hits", hits)
        tracer.counter("selection_index_misses", misses)
        span.args["selection_index_hits"] = hits
        span.args["selection_index_misses"] = misses
        stats = self.last_load_stats if from_disk else None
        if stats is not None:
            pruned = stats.partitions_total - stats.partitions_selected
            tracer.counter("partitions_scanned", stats.partitions_selected)
            tracer.counter("partitions_pruned", pruned)
            span.args.update(
                partitions_scanned=stats.partitions_selected,
                partitions_pruned=pruned,
                records_loaded=stats.records_loaded,
                bytes_read=stats.bytes_read,
            )
            if stats.partitions_quarantined:
                tracer.counter(
                    "partitions_quarantined", stats.partitions_quarantined
                )
                span.args["partitions_quarantined"] = stats.partitions_quarantined
