"""The RDD extension interfaces of Table 4.

``InstanceRDD`` wraps an engine RDD of *collective* instances and exposes
the five cell-level operators the paper adds for application programmers:
``mapValue``, ``mapValuePlus``, ``mapData``, ``mapDataPlus``, and
``collectAndMerge``.  Everything else delegates to the wrapped RDD, so
native operations remain available (the paper's third extension level).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.temporal.duration import Duration


class InstanceRDD:
    """A collective-instance RDD with the Table 4 cell-level operators."""

    def __init__(self, rdd: RDD):
        self.rdd = rdd

    # -- Table 4 operators -----------------------------------------------------

    def map_value(self, f: Callable[[Any], Any]) -> "InstanceRDD":
        """Map every cell value of every instance (``cRDD.mapValue``)."""
        return InstanceRDD(self.rdd.map(lambda inst: inst.map_value(f)))

    def map_value_plus(
        self, f: Callable[[Any, Geometry, Duration], Any]
    ) -> "InstanceRDD":
        """Like :meth:`map_value` but with each cell's ST boundaries
        (``cRDD.mapValuePlus``)."""
        return InstanceRDD(self.rdd.map(lambda inst: inst.map_value_plus(f)))

    def map_data(self, f: Callable[[Any], Any]) -> "InstanceRDD":
        """Map each instance's data field (``cRDD.mapData``)."""
        return InstanceRDD(self.rdd.map(lambda inst: inst.map_data(f)))

    def map_data_plus(
        self, f: Callable[[Any, list[Geometry], list[Duration]], Any]
    ) -> "InstanceRDD":
        """Like :meth:`map_data` but with the full structure boundaries
        (``cRDD.mapDataPlus``)."""
        return InstanceRDD(self.rdd.map(lambda inst: inst.map_data_plus(f)))

    def collect_and_merge(self, init: Any, f: Callable[[Any, Any], Any]) -> Any:
        """Fetch to the driver and fold all cell values into ``init``
        (``cRDD.collectAndMerge``)."""
        acc = init
        for inst in self.rdd.collect():
            for entry in inst.entries:
                acc = f(acc, entry.value)
        return acc

    def merge_instances(self, combine: Callable[[Any, Any], Any]) -> Any:
        """Fold the per-partition partial instances into one (cell-wise)."""
        return self.rdd.reduce(lambda a, b: a.merge_with(b, combine))

    # -- delegation ----------------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self.rdd, name)

    def __repr__(self) -> str:
        return f"InstanceRDD({self.rdd!r})"
