"""Built-in feature extractors (paper Table 3) plus the custom hook.

Extractors for singular instances map/flat-map over the instance RDD;
extractors for collective instances aggregate per cell locally on each
partition's partial instance and then merge the partials with a single
``reduce`` — the "local aggregation, then transfer the reduced results"
pattern the paper contrasts with naive ``groupByKey`` pipelines.
"""

from repro.core.extractors.base import CellAggExtractor, CustomExtractor
from repro.core.extractors.event import (
    EventAnomalyExtractor,
    EventClusterExtractor,
    EventCompanionExtractor,
)
from repro.core.extractors.trajectory import (
    TrajCompanionExtractor,
    TrajOdExtractor,
    TrajSpeedExtractor,
    TrajStayPointExtractor,
    TrajTurningExtractor,
)
from repro.core.extractors.timeseries import (
    TsFlowExtractor,
    TsSpeedExtractor,
    TsWindowFreqExtractor,
)
from repro.core.extractors.spatialmap import (
    SmFlowExtractor,
    SmSpeedExtractor,
    SmTransitExtractor,
)
from repro.core.extractors.raster import (
    RasterFlowExtractor,
    RasterSpeedExtractor,
    RasterTransitExtractor,
)

__all__ = [
    "CellAggExtractor",
    "CustomExtractor",
    "EventAnomalyExtractor",
    "EventCompanionExtractor",
    "EventClusterExtractor",
    "TrajSpeedExtractor",
    "TrajOdExtractor",
    "TrajStayPointExtractor",
    "TrajTurningExtractor",
    "TrajCompanionExtractor",
    "TsFlowExtractor",
    "TsSpeedExtractor",
    "TsWindowFreqExtractor",
    "SmFlowExtractor",
    "SmSpeedExtractor",
    "SmTransitExtractor",
    "RasterFlowExtractor",
    "RasterSpeedExtractor",
    "RasterTransitExtractor",
]
