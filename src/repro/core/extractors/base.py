"""Extractor base classes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro._deps import has_numpy
from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.instances.collective import CollectiveInstance
from repro.obs.tracer import phase as _phase_span
from repro.temporal.duration import Duration


class CustomExtractor:
    """Wrap a user RDD function as an extractor — the ``Extractor(f)``
    pattern of Section 3.3.

    Example::

        f = lambda rdd: InstanceRDD(rdd).map_value_plus(extract_stay_point).rdd
        extractor = CustomExtractor(f)
        result = extractor.extract(converted_rdd)
    """

    def __init__(self, f: Callable[[RDD], RDD]):
        self.f = f

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring).

        Under an active tracer the extraction runs inside an "Extraction"
        phase span, materialized eagerly when ``f`` returns an RDD so the
        work is billed to this phase.
        """
        with _phase_span("Extraction", rdd.ctx.tracer) as span:
            result = self.f(rdd)
            if span is not None and isinstance(result, RDD):
                result = rdd.ctx.from_partitions(result._collect_partitions())
        return result


class CellAggExtractor(ABC):
    """Template for collective-instance extractors.

    Subclasses define a three-phase aggregation over cell values:

    * :meth:`local` — per-cell partial aggregate, computed on each
      partition's partial collective instance (cell values there are the
      arrays the converter allocated locally);
    * :meth:`merge` — combine two partials of the same cell (commutative
      and associative);
    * :meth:`finalize` — partial → extracted feature.

    ``extract`` returns a single collective instance whose cell values are
    the extracted features; the only cross-partition traffic is the tree
    reduce over per-partition partials, never the raw data.

    Two execution paths share one reduce topology (per-partition
    sequential fold, then the balanced pairwise tree of
    :meth:`~repro.engine.rdd.RDD.tree_reduce`), so their results are
    bit-identical:

    * the scalar path runs ``local``/``merge`` per cell in Python;
    * when ``use_columnar`` is on, numpy is importable and the subclass
      declares an :meth:`agg_spec`, partitions instead build
      :class:`~repro.columnar.aggregate.CellTable` partials with
      vectorized kernels.  A partition whose input the spec cannot
      vectorize exactly falls back to a scalar partial; mixed partials
      merge by demoting the columnar side through
      :meth:`~repro.columnar.aggregate.AggSpec.partials`.

    ``reduce_depth`` is the tree-stage knob of ``tree_reduce`` — it moves
    merge rounds between workers and the driver without changing the
    pairing, so features never depend on it.
    """

    use_columnar: bool = True
    reduce_depth: int = 2

    @abstractmethod
    def local(self, values: list, spatial: Geometry, temporal: Duration) -> Any:
        """Partial aggregate of one cell's locally-allocated array."""

    @abstractmethod
    def merge(self, a: Any, b: Any) -> Any:
        """Combine two partial aggregates."""

    def finalize(self, partial: Any) -> Any:
        """Partial aggregate → final feature (identity by default)."""
        return partial

    def agg_spec(self) -> Any | None:
        """Columnar compilation of this extractor's local/merge/finalize.

        Subclasses return an :class:`~repro.columnar.aggregate.AggSpec`
        to enable the vectorized path; ``None`` (the default) keeps the
        extractor scalar-only.
        """
        return None

    def extract(self, rdd: RDD) -> CollectiveInstance:
        """Run this extraction on the RDD (see class docstring)."""
        spec = self.agg_spec() if self.use_columnar and has_numpy() else None
        # ``tree_reduce`` is an action, so the phase span brackets real
        # work (plus any still-lazy upstream lineage) without extra
        # forcing.
        with _phase_span("Extraction", rdd.ctx.tracer) as span:
            tracer = rdd.ctx.tracer
            oob_before = (
                tracer.counters.get("stage_oob_bytes", 0) if tracer is not None else 0
            )
            stats: dict = {}
            if spec is None:
                result = self._reduce_scalar(rdd, stats)
            else:
                result = self._reduce_columnar(rdd, spec, stats)
            if tracer is not None:
                oob = tracer.counters.get("stage_oob_bytes", 0) - oob_before
                partials = stats.get("partials", 0)
                cells = result.n_cells * partials
                rounds = stats.get("rounds", 0)
                tracer.counter("extract_cells_aggregated", cells)
                tracer.counter("extract_partials_merged", partials)
                tracer.counter("extract_tree_depth", rounds)
                tracer.counter("extract_reduce_oob_bytes", oob)
                if span is not None:
                    span.args.update(
                        columnar=spec is not None,
                        cells_aggregated=cells,
                        partials_merged=partials,
                        tree_depth=rounds,
                        reduce_oob_bytes=oob,
                    )
            return result

    def _reduce_scalar(self, rdd: RDD, stats: dict) -> CollectiveInstance:
        """The per-cell Python path: premerge per partition, then tree."""
        local = self.local
        merge = self.merge

        def premerge(instances: list) -> list:
            acc = None
            for inst in instances:
                partial = inst.map_value_plus(local)
                acc = partial if acc is None else acc.merge_with(partial, merge)
            return [] if acc is None else [acc]

        merged = rdd.map_partitions(premerge).tree_reduce(
            lambda a, b: a.merge_with(b, merge),
            depth=self.reduce_depth,
            stats=stats,
        )
        return merged.map_value(self.finalize)

    def _reduce_columnar(self, rdd: RDD, spec: Any, stats: dict) -> CollectiveInstance:
        """The vectorized path: CellTable partials with scalar fallback.

        Partials travel tagged — ``("table", (skeleton, CellTable))`` or
        ``("scalar", partial_instance)`` — where the skeleton carries the
        cell structure needed to rebuild (or demote to) a collective
        instance.  On backends that serialize tasks the skeleton is
        stripped of its cell arrays first; elsewhere it is the
        partition's first instance by reference, which costs nothing.
        """
        local = self.local
        merge = self.merge
        strip = rdd.ctx.backend.requires_serializable_tasks

        def premerge(instances: list) -> list:
            table = None
            for inst in instances:
                built = spec.build(inst)
                if built is None:
                    # This partition cannot vectorize exactly: fall back
                    # to one scalar partial for the whole partition.
                    acc = None
                    for fallback in instances:
                        partial = fallback.map_value_plus(local)
                        acc = (
                            partial
                            if acc is None
                            else acc.merge_with(partial, merge)
                        )
                    return [("scalar", acc)]
                table = built if table is None else table.merge(built)
            if table is None:
                return []
            skeleton = instances[0]
            if strip:
                skeleton = skeleton.with_cell_values([None] * skeleton.n_cells)
            return [("table", (skeleton, table))]

        def pair_merge(a: tuple, b: tuple) -> tuple:
            kind_a, pa = a
            kind_b, pb = b
            if kind_a == "table" and kind_b == "table":
                (skeleton, ta), (_, tb) = pa, pb
                return ("table", (skeleton, ta.merge(tb)))
            if kind_a == "table":
                skeleton, ta = pa
                demoted = skeleton.with_cell_values(spec.partials(ta))
                return ("scalar", demoted.merge_with(pb, merge))
            if kind_b == "table":
                skeleton, tb = pb
                demoted = skeleton.with_cell_values(spec.partials(tb))
                return ("scalar", pa.merge_with(demoted, merge))
            return ("scalar", pa.merge_with(pb, merge))

        kind, payload = rdd.map_partitions(premerge).tree_reduce(
            pair_merge, depth=self.reduce_depth, stats=stats
        )
        if kind == "table":
            skeleton, table = payload
            return skeleton.with_cell_values(spec.finalize(table))
        return payload.map_value(self.finalize)

    def extract_values(self, rdd: RDD) -> list:
        """Convenience: just the per-cell features, in cell order."""
        return self.extract(rdd).cell_values()

    # -- incremental extraction (the streaming API) --------------------------------

    def extract_partials(self, rdd: RDD) -> list[CollectiveInstance]:
        """Per-partition *unfinalized* partials, in partition order.

        The streaming half of :meth:`extract`: each partition premerges
        into one partial collective instance exactly as the batch path
        does — the columnar fast path included, demoted to the scalar
        partial domain through ``spec.partials`` (bit-exact by the
        mixed-partial contract) — but instead of tree-reducing to one
        value, the partials come back as a list the caller can bank.
        :meth:`merge_partials` over partials accumulated across any
        number of incremental runs replays :meth:`~repro.engine.rdd.RDD.tree_reduce`'s
        exact pairing, so the final features are bit-identical to one
        batch :meth:`extract` over the union — the incremental-parity
        guarantee of :meth:`~repro.core.pipeline.Pipeline.run_incremental`.

        Empty partitions contribute no partial (matching ``tree_reduce``,
        which drops them).
        """
        spec = self.agg_spec() if self.use_columnar and has_numpy() else None
        local = self.local
        merge = self.merge

        def premerge(instances: list) -> list:
            if spec is not None:
                table = None
                vectorized = True
                for inst in instances:
                    built = spec.build(inst)
                    if built is None:
                        vectorized = False
                        break
                    table = built if table is None else table.merge(built)
                if vectorized and table is not None:
                    return [instances[0].with_cell_values(spec.partials(table))]
            acc = None
            for inst in instances:
                partial = inst.map_value_plus(local)
                acc = partial if acc is None else acc.merge_with(partial, merge)
            return [] if acc is None else [acc]

        return [p[0] for p in rdd.map_partitions(premerge)._collect_partitions() if p]

    def merge_partials(self, partials: list) -> CollectiveInstance:
        """Partial list → finalized features, via ``tree_reduce``'s pairing.

        Driver-side adjacent pairing ``(0, 1), (2, 3), …`` with an odd
        leftover passed through — the same rounds
        :meth:`~repro.engine.rdd.RDD._pairwise_rounds` runs, which is
        what makes incremental results bit-identical to batch ones.
        Raises on an empty list (nothing was ever selected).
        """
        if not partials:
            raise ValueError("cannot merge an empty partial list")
        merge = self.merge
        parts = list(partials)
        while len(parts) > 1:
            paired = [
                (parts[i], parts[i + 1]) for i in range(0, len(parts) - 1, 2)
            ]
            leftover = [parts[-1]] if len(parts) % 2 else []
            parts = [a.merge_with(b, merge) for a, b in paired] + leftover
        return parts[0].map_value(self.finalize)
