"""Extractor base classes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.instances.collective import CollectiveInstance
from repro.obs.tracer import phase as _phase_span
from repro.temporal.duration import Duration


class CustomExtractor:
    """Wrap a user RDD function as an extractor — the ``Extractor(f)``
    pattern of Section 3.3.

    Example::

        f = lambda rdd: InstanceRDD(rdd).map_value_plus(extract_stay_point).rdd
        extractor = CustomExtractor(f)
        result = extractor.extract(converted_rdd)
    """

    def __init__(self, f: Callable[[RDD], RDD]):
        self.f = f

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring).

        Under an active tracer the extraction runs inside an "Extraction"
        phase span, materialized eagerly when ``f`` returns an RDD so the
        work is billed to this phase.
        """
        with _phase_span("Extraction", rdd.ctx.tracer) as span:
            result = self.f(rdd)
            if span is not None and isinstance(result, RDD):
                result = rdd.ctx.from_partitions(result._collect_partitions())
        return result


class CellAggExtractor(ABC):
    """Template for collective-instance extractors.

    Subclasses define a three-phase aggregation over cell values:

    * :meth:`local` — per-cell partial aggregate, computed on each
      partition's partial collective instance (cell values there are the
      arrays the converter allocated locally);
    * :meth:`merge` — combine two partials of the same cell (commutative
      and associative);
    * :meth:`finalize` — partial → extracted feature.

    ``extract`` returns a single collective instance whose cell values are
    the extracted features; the only cross-partition traffic is the
    ``reduce`` over per-cell partials, never the raw data.
    """

    @abstractmethod
    def local(self, values: list, spatial: Geometry, temporal: Duration) -> Any:
        """Partial aggregate of one cell's locally-allocated array."""

    @abstractmethod
    def merge(self, a: Any, b: Any) -> Any:
        """Combine two partial aggregates."""

    def finalize(self, partial: Any) -> Any:
        """Partial aggregate → final feature (identity by default)."""
        return partial

    def extract(self, rdd: RDD) -> CollectiveInstance:
        """Run this extraction on the RDD (see class docstring)."""
        local = self.local
        merge = self.merge

        def to_partial(instance: CollectiveInstance) -> CollectiveInstance:
            return instance.map_value_plus(local)

        # ``reduce`` is an action, so the phase span brackets real work
        # (plus any still-lazy upstream lineage) without extra forcing.
        with _phase_span("Extraction", rdd.ctx.tracer):
            merged = rdd.map(to_partial).reduce(lambda a, b: a.merge_with(b, merge))
            return merged.map_value(self.finalize)

    def extract_values(self, rdd: RDD) -> list:
        """Convenience: just the per-cell features, in cell order."""
        return self.extract(rdd).cell_values()
