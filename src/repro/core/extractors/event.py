"""Event extractors: anomaly, companion, cluster (Table 3)."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Callable

from repro.engine.rdd import RDD
from repro.geometry.distance import (
    METERS_PER_DEGREE_LAT,
    haversine_distance,
    meters_per_degree_lon,
)
from repro.instances.event import Event


def _is_primary(event: Event) -> bool:
    """False only for the tagged replicas of duplicate-mode partitioning."""
    return getattr(event, "dup_primary", True)


class EventAnomalyExtractor:
    """Events occurring inside an hour-of-day window.

    The paper's experiment extracts "events occurring 23-4 hrs daily";
    the window wraps midnight when ``start_hour > end_hour``.
    """

    def __init__(self, start_hour: float = 23.0, end_hour: float = 4.0):
        if not (0 <= start_hour < 24 and 0 <= end_hour < 24):
            raise ValueError("hours must be in [0, 24)")
        self.start_hour = start_hour
        self.end_hour = end_hour

    def matches(self, event: Event) -> bool:
        """True when the event falls in the configured window."""
        hour = event.temporal.hour_of_day()
        if self.start_hour <= self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        return rdd.filter(self.matches)


class EventCompanionExtractor:
    """Pairs of events within an ST threshold (Table 6's workload).

    Companions are found per partition: events are bucketed into an
    (x, y, t) grid of threshold-sized cells and only neighboring buckets
    are compared, so the local cost is near-linear in practice.  For
    global correctness across partitions, run on data partitioned with
    ``duplicate=True`` — exactly why the paper benchmarks this extractor
    when evaluating the T-STR partitioner's ST locality.
    """

    def __init__(
        self,
        spatial_meters: float,
        temporal_seconds: float,
        key_func: Callable[[Event], object] | None = None,
    ):
        if spatial_meters <= 0 or temporal_seconds <= 0:
            raise ValueError("thresholds must be positive")
        self.spatial_meters = spatial_meters
        self.temporal_seconds = temporal_seconds
        self.key_func = key_func or (lambda ev: ev.data)

    def _pairs_in(self, events: list[Event]) -> list[tuple]:
        if len(events) < 2:
            return []
        s_thr = self.spatial_meters
        t_thr = self.temporal_seconds
        key_func = self.key_func
        # Bucket edge lengths of at least the thresholds everywhere in the
        # partition: degrees-per-meter grows with |latitude|, so size the
        # longitude buckets at the partition's extreme latitude — then any
        # companion pair lies in the same or an adjacent bucket.
        lat_extreme = max(abs(ev.spatial.y) for ev in events)
        deg_x = s_thr / max(1e-9, meters_per_degree_lon(min(lat_extreme, 89.0)))
        deg_y = s_thr / METERS_PER_DEGREE_LAT
        buckets: dict[tuple[int, int, int], list[Event]] = defaultdict(list)
        for ev in events:
            cell = (
                int(math.floor(ev.spatial.x / deg_x)),
                int(math.floor(ev.spatial.y / deg_y)),
                int(math.floor(ev.temporal.center / t_thr)),
            )
            buckets[cell].append(ev)
        pairs = []
        seen: set[tuple] = set()
        for (cx, cy, ct), members in buckets.items():
            neighborhood: list[Event] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dt in (-1, 0, 1):
                        neighborhood.extend(buckets.get((cx + dx, cy + dy, ct + dt), ()))
            for a in members:
                ka = key_func(a)
                for b in neighborhood:
                    kb = key_func(b)
                    if ka == kb:
                        continue
                    pair = (ka, kb) if repr(ka) < repr(kb) else (kb, ka)
                    if pair in seen:
                        continue
                    if abs(a.temporal.center - b.temporal.center) > t_thr:
                        continue
                    d = haversine_distance(
                        a.spatial.x, a.spatial.y, b.spatial.x, b.spatial.y
                    )
                    if d <= s_thr:
                        seen.add(pair)
                        pairs.append(pair)
        return pairs

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        return rdd.map_partitions(self._pairs_in)


class EventClusterExtractor:
    """Grid-density hotspot clustering (pattern-mining workloads).

    Events are snapped to a regular grid of ``cell_degrees``; cells whose
    local count reaches ``min_count`` are emitted as
    ``((cell_x, cell_y), count)``.  Counts are combined across partitions
    with a map-side-combined ``reduceByKey``, then thresholded.
    """

    def __init__(self, cell_degrees: float, min_count: int = 5):
        if cell_degrees <= 0:
            raise ValueError("cell size must be positive")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.cell_degrees = cell_degrees
        self.min_count = min_count

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        cell = self.cell_degrees
        min_count = self.min_count

        # Cluster counts are a global aggregate: the replicas that
        # duplicate-mode partitioning fans out across partitions must not
        # inflate cell counts, so only primary copies are counted.
        rdd = rdd.filter(_is_primary)

        def snap(ev: Event) -> tuple:
            return (
                (
                    int(math.floor(ev.spatial.x / cell)),
                    int(math.floor(ev.spatial.y / cell)),
                ),
                1,
            )

        return (
            rdd.map(snap)
            .reduce_by_key(lambda a, b: a + b)
            .filter(lambda kv: kv[1] >= min_count)
        )
