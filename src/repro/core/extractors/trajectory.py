"""Trajectory extractors: speed, OD, stay point, turning, companion."""

from __future__ import annotations

import math
from collections import defaultdict

from repro.engine.rdd import RDD
from repro.geometry.distance import (
    METERS_PER_DEGREE_LAT,
    haversine_distance,
    meters_per_degree_lon,
)
from repro.instances.trajectory import Trajectory, TrajectoryPoint


class TrajSpeedExtractor:
    """Average speed per trajectory → RDD of ``(data, speed)``.

    ``unit`` is ``"kmh"`` or ``"ms"`` (the paper's
    ``RasterSpeedExtractor(unit = "kmh")`` exposes the same knob).
    """

    def __init__(self, unit: str = "kmh"):
        if unit not in ("kmh", "ms"):
            raise ValueError("unit must be 'kmh' or 'ms'")
        self.unit = unit

    def speed_of(self, traj: Trajectory) -> float:
        """The trajectory's average speed in the configured unit."""
        return (
            traj.average_speed_kmh() if self.unit == "kmh" else traj.average_speed_ms()
        )

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        return rdd.map(lambda traj: (traj.data, self.speed_of(traj)))


class TrajOdExtractor:
    """Origin-destination pair per trajectory.

    Emits ``(data, (origin_lon, origin_lat), (dest_lon, dest_lat))``.
    """

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        def od(traj: Trajectory) -> tuple:
            first = traj.entries[0].spatial
            last = traj.entries[-1].spatial
            return (traj.data, (first.x, first.y), (last.x, last.y))

        return rdd.map(od)


def extract_stay_points(
    traj: Trajectory,
    distance_meters: float,
    min_duration_seconds: float,
) -> list[TrajectoryPoint]:
    """The classic stay-point detection of Li et al. / Zheng & Xie.

    Anchored at point ``i``, extend ``j`` while every point stays within
    ``distance_meters`` of the anchor; if the dwell time reaches
    ``min_duration_seconds``, emit the centroid of the run as a stay point
    and restart after it.
    """
    pts = traj.points()
    stay_points: list[TrajectoryPoint] = []
    i = 0
    n = len(pts)
    while i < n - 1:
        j = i + 1
        while j < n:
            d = haversine_distance(pts[i].lon, pts[i].lat, pts[j].lon, pts[j].lat)
            if d > distance_meters:
                break
            j += 1
        # Points i .. j-1 stay within the radius of the anchor.
        dwell = pts[j - 1].t - pts[i].t
        if dwell >= min_duration_seconds and j - i >= 2:
            run = pts[i:j]
            stay_points.append(
                TrajectoryPoint(
                    sum(p.lon for p in run) / len(run),
                    sum(p.lat for p in run) / len(run),
                    (pts[i].t + pts[j - 1].t) / 2.0,
                    value=dwell,
                )
            )
            i = j
        else:
            i += 1
    return stay_points


class TrajStayPointExtractor:
    """Stay points per trajectory → RDD of ``(data, [TrajectoryPoint])``.

    Thresholds default to the paper's (200 m, 10 min) experiment.
    """

    def __init__(self, distance_meters: float = 200.0, min_duration_seconds: float = 600.0):
        if distance_meters <= 0 or min_duration_seconds <= 0:
            raise ValueError("thresholds must be positive")
        self.distance_meters = distance_meters
        self.min_duration_seconds = min_duration_seconds

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        d = self.distance_meters
        t = self.min_duration_seconds
        return rdd.map(lambda traj: (traj.data, extract_stay_points(traj, d, t)))


class TrajTurningExtractor:
    """Sharp-turn points per trajectory.

    Emits ``(data, [(lon, lat, t, turn_degrees)])`` for heading changes
    of at least ``angle_degrees``.
    """

    def __init__(self, angle_degrees: float = 60.0):
        if not 0 < angle_degrees <= 180:
            raise ValueError("angle must be in (0, 180]")
        self.angle_degrees = angle_degrees

    @staticmethod
    def _heading(a: TrajectoryPoint, b: TrajectoryPoint) -> float | None:
        dx = b.lon - a.lon
        dy = b.lat - a.lat
        if dx == 0.0 and dy == 0.0:
            return None
        return math.degrees(math.atan2(dy, dx))

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        threshold = self.angle_degrees

        def turns(traj: Trajectory) -> tuple:
            pts = traj.points()
            found = []
            for i in range(1, len(pts) - 1):
                h1 = self._heading(pts[i - 1], pts[i])
                h2 = self._heading(pts[i], pts[i + 1])
                if h1 is None or h2 is None:
                    continue
                delta = abs(h2 - h1)
                if delta > 180.0:
                    delta = 360.0 - delta
                if delta >= threshold:
                    found.append((pts[i].lon, pts[i].lat, pts[i].t, delta))
            return (traj.data, found)

        return rdd.map(turns)


class TrajCompanionExtractor:
    """Trajectory pairs with a simultaneous close encounter.

    Two trajectories are companions when any pair of their points is
    within ``spatial_meters`` and ``temporal_seconds``.  Like the event
    companion extractor, comparisons are bucketed and local to the
    partition — partition with ``duplicate=True`` for global correctness.
    """

    def __init__(self, spatial_meters: float, temporal_seconds: float):
        if spatial_meters <= 0 or temporal_seconds <= 0:
            raise ValueError("thresholds must be positive")
        self.spatial_meters = spatial_meters
        self.temporal_seconds = temporal_seconds

    def _pairs_in(self, trajectories: list[Trajectory]) -> list[tuple]:
        s_thr = self.spatial_meters
        t_thr = self.temporal_seconds
        if len(trajectories) < 2:
            return []
        lat_extreme = max(
            abs(e.spatial.y) for traj in trajectories for e in traj.entries
        )
        deg_x = s_thr / max(1e-9, meters_per_degree_lon(min(lat_extreme, 89.0)))
        deg_y = s_thr / METERS_PER_DEGREE_LAT
        buckets: dict[tuple[int, int, int], set] = defaultdict(set)
        by_id: dict = {}
        for traj in trajectories:
            by_id[traj.data] = traj
            for p in traj.points():
                cell = (
                    int(math.floor(p.lon / deg_x)),
                    int(math.floor(p.lat / deg_y)),
                    int(math.floor(p.t / t_thr)),
                )
                buckets[cell].add(traj.data)
        candidate_pairs: set[tuple] = set()
        for (cx, cy, ct), ids in buckets.items():
            nearby: set = set()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dt in (-1, 0, 1):
                        nearby |= buckets.get((cx + dx, cy + dy, ct + dt), set())
            for a in ids:
                for b in nearby:
                    if repr(a) < repr(b):
                        candidate_pairs.add((a, b))
        confirmed = []
        for a_id, b_id in sorted(candidate_pairs, key=repr):
            if self._encounter(by_id[a_id], by_id[b_id]):
                confirmed.append((a_id, b_id))
        return confirmed

    def _encounter(self, a: Trajectory, b: Trajectory) -> bool:
        for pa in a.points():
            for pb in b.points():
                if abs(pa.t - pb.t) > self.temporal_seconds:
                    continue
                if (
                    haversine_distance(pa.lon, pa.lat, pb.lon, pb.lat)
                    <= self.spatial_meters
                ):
                    return True
        return False

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        return rdd.map_partitions(self._pairs_in)
