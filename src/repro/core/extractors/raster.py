"""Raster extractors: flow, speed, transit (in/out flow)."""

from __future__ import annotations

from repro.core.extractors.base import CellAggExtractor
from repro.geometry.base import Geometry
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory
from repro.temporal.duration import Duration


class RasterFlowExtractor(CellAggExtractor):
    """Record count per raster cell.

    With events (e.g. air-quality records over road-segment cells) this is
    a straight count; trajectories count once per cell they were allocated
    to.
    """

    def local(self, values: list, spatial: Geometry, temporal: Duration) -> int:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        return len(values)

    def merge(self, a: int, b: int) -> int:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return a + b

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import CountSpec

        return CountSpec()


class RasterSpeedExtractor(CellAggExtractor):
    """Vehicles appearing + their mean in-cell speed, per raster cell.

    This is the extractor of the paper's running example (Section 3.4) and
    of the Figure 9 case study: the feature of each (district, hour) cell
    is ``(vehicle_count, average_speed)`` where each vehicle contributes
    the average speed of its sub-trajectory inside the cell's duration.
    """

    def __init__(self, unit: str = "kmh"):
        if unit not in ("kmh", "ms"):
            raise ValueError("unit must be 'kmh' or 'ms'")
        self.unit = unit

    def local(
        self, values: list, spatial: Geometry, temporal: Duration
    ) -> tuple[int, float, int]:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        vehicles = 0
        speed_sum = 0.0
        speed_count = 0
        for traj in values:
            if not isinstance(traj, Trajectory):
                raise TypeError("RasterSpeedExtractor expects trajectory cell arrays")
            vehicles += 1
            portion = traj.sub_trajectory(temporal)
            if portion is None or len(portion.entries) < 2:
                continue
            speed = (
                portion.average_speed_kmh()
                if self.unit == "kmh"
                else portion.average_speed_ms()
            )
            speed_sum += speed
            speed_count += 1
        return (vehicles, speed_sum, speed_count)

    def merge(self, a: tuple, b: tuple) -> tuple:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])

    def finalize(self, partial: tuple) -> tuple[int, float | None]:
        """Partial aggregate to final feature (see CellAggExtractor)."""
        vehicles, speed_sum, speed_count = partial
        avg = speed_sum / speed_count if speed_count else None
        return (vehicles, avg)

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import PortionSpeedSpec

        return PortionSpeedSpec(
            self.unit,
            "RasterSpeedExtractor expects trajectory cell arrays",
            count_vehicles=True,
        )


class RasterTransitExtractor(CellAggExtractor):
    """In/out flow per raster cell — the transition feature of Table 7.

    For each trajectory allocated to a cell, inspect where it was at the
    cell's temporal boundaries: a vehicle whose first in-cell point is
    *after* the trajectory start entered the cell (in-flow); one whose
    last in-cell point is *before* the trajectory end left it (out-flow).
    """

    def local(
        self, values: list, spatial: Geometry, temporal: Duration
    ) -> tuple[int, int]:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        inflow = 0
        outflow = 0
        for inst in values:
            if isinstance(inst, Event):
                # Events carry no motion; they contribute to neither flow.
                continue
            if not isinstance(inst, Trajectory):
                raise TypeError("RasterTransitExtractor expects trajectory arrays")
            inside_times = [
                e.temporal.start
                for e in inst.entries
                if temporal.intersects(e.temporal) and spatial.intersects(e.spatial)
            ]
            if not inside_times:
                continue
            first_in = min(inside_times)
            last_in = max(inside_times)
            if first_in > inst.entries[0].temporal.start:
                inflow += 1
            if last_in < inst.entries[-1].temporal.start:
                outflow += 1
        return (inflow, outflow)

    def merge(self, a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return (a[0] + b[0], a[1] + b[1])

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import TransitSpec

        return TransitSpec("RasterTransitExtractor expects trajectory arrays")
