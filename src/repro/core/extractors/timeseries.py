"""Time-series extractors: flow, speed, windowed frequency."""

from __future__ import annotations

from typing import Any

from repro.core.extractors.base import CellAggExtractor
from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.instances.timeseries import TimeSeries
from repro.instances.trajectory import Trajectory
from repro.temporal.duration import Duration


class TsFlowExtractor(CellAggExtractor):
    """Record count per time slot — the paper's hourly-flow application.

    Input: RDD of partial time series whose cell values are arrays of
    allocated singular instances.  Output: a time series of counts.
    """

    def local(self, values: list, spatial: Geometry, temporal: Duration) -> int:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        return len(values)

    def merge(self, a: int, b: int) -> int:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return a + b

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import CountSpec

        return CountSpec()


class TsSpeedExtractor(CellAggExtractor):
    """Mean trajectory speed per time slot (periodical speed feature).

    Each allocated trajectory contributes the average speed of its portion
    inside the slot; empty slots yield ``None``.
    """

    def __init__(self, unit: str = "kmh"):
        if unit not in ("kmh", "ms"):
            raise ValueError("unit must be 'kmh' or 'ms'")
        self.unit = unit

    def local(
        self, values: list, spatial: Geometry, temporal: Duration
    ) -> tuple[float, int]:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        total = 0.0
        count = 0
        for traj in values:
            if not isinstance(traj, Trajectory):
                raise TypeError("TsSpeedExtractor expects trajectory cell arrays")
            portion = traj.sub_trajectory(temporal)
            if portion is None or len(portion.entries) < 2:
                continue
            speed = (
                portion.average_speed_kmh()
                if self.unit == "kmh"
                else portion.average_speed_ms()
            )
            total += speed
            count += 1
        return (total, count)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, partial: tuple[float, int]) -> float | None:
        """Partial aggregate to final feature (see CellAggExtractor)."""
        total, count = partial
        return total / count if count else None

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import PortionSpeedSpec

        return PortionSpeedSpec(
            self.unit, "TsSpeedExtractor expects trajectory cell arrays"
        )


class TsWindowFreqExtractor:
    """Sliding-window record frequency over an extracted flow series.

    Runs :class:`TsFlowExtractor` first, then a ``window_slots``-wide
    moving sum — the "window frequency" feature of Table 3.
    """

    def __init__(self, window_slots: int = 3):
        if window_slots < 1:
            raise ValueError("window must span at least one slot")
        self.window_slots = window_slots

    def extract(self, rdd: RDD) -> TimeSeries:
        """Run this extraction on the RDD (see class docstring)."""
        flow = TsFlowExtractor().extract(rdd)
        counts = flow.cell_values()
        w = self.window_slots
        windowed: list[Any] = []
        for i in range(len(counts)):
            lo = max(0, i - w + 1)
            windowed.append(sum(counts[lo : i + 1]))
        return flow.with_cell_values(windowed)
