"""Spatial-map extractors: flow, speed, transit."""

from __future__ import annotations

from collections import defaultdict

from repro.core.extractors.base import CellAggExtractor
from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.instances.collective import CollectiveInstance
from repro.instances.trajectory import Trajectory
from repro.temporal.duration import Duration


class SmFlowExtractor(CellAggExtractor):
    """Record count per spatial cell (regional flow / POI count).

    Counts the instances allocated to each cell; with events this is the
    POI-count application of Table 7, with trajectories the regional flow.
    """

    def local(self, values: list, spatial: Geometry, temporal: Duration) -> int:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        return len(values)

    def merge(self, a: int, b: int) -> int:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return a + b

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import CountSpec

        return CountSpec()


class SmSpeedExtractor(CellAggExtractor):
    """Mean trajectory speed per spatial cell (the grid-speed application).

    Averages the whole-trajectory speed of each allocated trajectory —
    cheap and robust; per-cell sub-trajectory speeds are available through
    :class:`~repro.core.extractors.raster.RasterSpeedExtractor` when the
    temporal dimension matters.
    """

    def __init__(self, unit: str = "kmh"):
        if unit not in ("kmh", "ms"):
            raise ValueError("unit must be 'kmh' or 'ms'")
        self.unit = unit

    def local(
        self, values: list, spatial: Geometry, temporal: Duration
    ) -> tuple[float, int]:
        """Per-cell partial aggregate (see CellAggExtractor)."""
        total = 0.0
        count = 0
        for traj in values:
            if not isinstance(traj, Trajectory):
                raise TypeError("SmSpeedExtractor expects trajectory cell arrays")
            speed = (
                traj.average_speed_kmh() if self.unit == "kmh" else traj.average_speed_ms()
            )
            total += speed
            count += 1
        return (total, count)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, partial: tuple[float, int]) -> float | None:
        """Partial aggregate to final feature (see CellAggExtractor)."""
        total, count = partial
        return total / count if count else None

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import WholeTrajSpeedSpec

        return WholeTrajSpeedSpec(
            self.unit, "SmSpeedExtractor expects trajectory cell arrays"
        )


class SmTransitExtractor:
    """Cell-to-cell transition counts from trajectories.

    For each trajectory, the visited cell sequence (ordered by entry time)
    contributes one count per consecutive cell pair.  Returns an RDD of
    ``((from_cell, to_cell), count)``.  Input cells are identified by
    their position in the spatial map.
    """

    def __init__(self, include_self_loops: bool = False):
        self.include_self_loops = include_self_loops

    def extract(self, rdd: RDD) -> RDD:
        """Run this extraction on the RDD (see class docstring)."""
        include_self = self.include_self_loops

        def transitions(instance: CollectiveInstance) -> list[tuple]:
            # Rebuild each trajectory's visit sequence: for every cell, the
            # first timestamp of the trajectory's points inside it.
            visits: dict = defaultdict(list)  # traj id -> [(t_enter, cell)]
            for cell_id, entry in enumerate(instance.entries):
                for traj in entry.value:
                    if not isinstance(traj, Trajectory):
                        raise TypeError(
                            "SmTransitExtractor expects trajectory cell arrays"
                        )
                    inside = [
                        e.temporal.start
                        for e in traj.entries
                        if entry.spatial.intersects(e.spatial)
                    ]
                    if inside:
                        visits[traj.data].append((min(inside), cell_id))
            pairs: list[tuple] = []
            for sequence in visits.values():
                sequence.sort()
                for (_, a), (_, b) in zip(sequence, sequence[1:]):
                    if a == b and not include_self:
                        continue
                    pairs.append(((a, b), 1))
            return pairs

        return rdd.flat_map(transitions).reduce_by_key(lambda a, b: a + b)
