"""The GeoMesa-style baseline."""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Sequence

from repro.baselines.records import (
    geo_record_to_instance,
    instance_to_geo_record,
    record_envelope,
    record_start_time,
)
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.index.xz2 import xz2_key, xz2_query_ranges
from repro.instances.base import Instance
from repro.stio.dataset import LoadStats
from repro.temporal.duration import Duration

_INDEX_FILE = "geomesa_index.json"


class GeoMesaLike:
    """End-to-end flow modeled on a straightforward GeoMesa extension.

    Cost model reproduced from the paper's analysis:

    * **entry-level persistent index** — at ingestion, every record gets a
      simplified XZ2 curve key (paper config: XZ2-8bit) plus its numeric
      start timestamp; records are stored sorted by key in fixed-size
      blocks with per-block (key range, time range) summaries;
    * **pruned selection** — query ranges on the curve shortlist blocks,
      the block time summaries prune further, then records are filtered
      exactly.  Loading is proportional to selectivity × curve coarseness
      (better than GeoSpark, coarser than ST4ML's ST partitions);
    * **no in-memory optimization** — grid partitioning after load,
      trajectory timestamps still strings (reformation cost), naive
      conversions downstream.
    """

    name = "geomesa"

    def __init__(self, num_partitions: int = 8, levels: int = 8):
        self.num_partitions = num_partitions
        self.levels = levels
        self.last_load_stats: LoadStats | None = None

    # -- ingestion -------------------------------------------------------------------

    @staticmethod
    def ingest(
        instances: Sequence[Instance],
        directory: str | Path,
        block_records: int = 512,
        levels: int = 8,
    ) -> None:
        """Index + sort + block the records; write the block index file."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        records = [instance_to_geo_record(inst) for inst in instances]
        if records:
            envs = [record_envelope(r) for r in records]
            space = Envelope(
                min(e[0] for e in envs),
                min(e[1] for e in envs),
                max(e[2] for e in envs),
                max(e[3] for e in envs),
            )
        else:
            space = Envelope(0, 0, 1, 1)
        keyed = []
        for record in records:
            min_x, min_y, max_x, max_y = record_envelope(record)
            key = xz2_key(Envelope(min_x, min_y, max_x, max_y), space, levels)
            keyed.append((key, record_start_time(record), record))
        keyed.sort(key=lambda kr: kr[0])
        blocks_meta = []
        for b in range(0, max(1, len(keyed)), block_records):
            chunk = keyed[b : b + block_records]
            filename = f"block-{b // block_records:05d}.pkl"
            (directory / filename).write_bytes(
                pickle.dumps([r for _, _, r in chunk], protocol=pickle.HIGHEST_PROTOCOL)
            )
            blocks_meta.append(
                {
                    "filename": filename,
                    "key_min": chunk[0][0] if chunk else 0,
                    "key_max": chunk[-1][0] if chunk else 0,
                    "t_min": min((t for _, t, _ in chunk), default=0.0),
                    "t_max": max((t for _, t, _ in chunk), default=0.0),
                    "count": len(chunk),
                }
            )
        index = {
            "space": [space.min_x, space.min_y, space.max_x, space.max_y],
            "levels": levels,
            "blocks": blocks_meta,
        }
        (directory / _INDEX_FILE).write_text(json.dumps(index, indent=1))

    # -- selection ---------------------------------------------------------------------

    def select(
        self,
        ctx: EngineContext,
        directory: str | Path,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
    ) -> RDD:
        """Run the selection (see class docstring)."""
        directory = Path(directory)
        index = json.loads((directory / _INDEX_FILE).read_text())
        space = Envelope(*index["space"])
        blocks = index["blocks"]
        stats = LoadStats(partitions_total=len(blocks))

        if spatial is not None:
            ranges = xz2_query_ranges(spatial, space, index["levels"])
        else:
            ranges = [(0, 1 << 62)]

        def block_matches(block: dict) -> bool:
            if not any(
                lo <= block["key_max"] and hi >= block["key_min"] for lo, hi in ranges
            ):
                return False
            if temporal is not None and (
                block["t_min"] > temporal.end or block["t_max"] < temporal.start
            ):
                return False
            return True

        partitions = []
        for block in blocks:
            if not block_matches(block):
                continue
            raw = (directory / block["filename"]).read_bytes()
            records = pickle.loads(raw)
            stats.note_block(block["filename"], len(records), len(raw))
            partitions.append(records)
        self.last_load_stats = stats
        loaded = ctx.from_partitions(partitions or [[]])

        # Grid partitioning after load (GeoMesa's Spark connector default),
        # then exact record-level filtering with the reformation cost.
        n = self.num_partitions

        from repro.engine.shuffle import stable_hash

        def grid_key(record: tuple) -> int:
            min_x, min_y, _, _ = record_envelope(record)
            return stable_hash((round(min_x, 1), round(min_y, 1))) % n

        partitioned = loaded.shuffle_by(n, grid_key)

        def refine(record: tuple):
            """Cheap MBR pre-filter, then reformation + the exact joint
            entry-level predicate (the same semantics ST4ML applies, so
            outputs are comparable across systems)."""
            if spatial is not None:
                min_x, min_y, max_x, max_y = record_envelope(record)
                if not spatial.intersects_envelope(
                    Envelope(min_x, min_y, max_x, max_y)
                ):
                    return []
            instance = geo_record_to_instance(record)
            s = spatial if spatial is not None else instance.spatial_extent
            t = temporal if temporal is not None else instance.temporal_extent
            return [instance] if instance.intersects(s, t) else []

        return partitioned.flat_map(refine)
