"""The GeoSpark-style baseline."""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Sequence

from repro.baselines.records import (
    geo_record_to_instance,
    instance_to_geo_record,
    parse_timestamp,
    record_centroid,
    record_envelope,
)
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.envelope import Envelope
from repro.instances.base import Instance
from repro.stio.dataset import LoadStats
from repro.temporal.duration import Duration


class GeoSparkLike:
    """End-to-end flow modeled on a straightforward GeoSpark extension.

    Cost model reproduced from the paper's analysis of Figure 7:

    * **ad-hoc ingestion** — no persistent index; every application run
      loads *all* blocks from disk;
    * **spatial-only selection** — a KDB-style equal-count spatial
      partitioning, per-partition envelope filtering; the temporal
      predicate can only be applied by parsing the per-record time
      strings *after* spatial filtering;
    * **no conversion optimization** — downstream singular→collective
      conversions should be run with ``method="naive"`` (see the apps).
    """

    name = "geospark"

    def __init__(self, num_partitions: int = 8):
        self.num_partitions = num_partitions
        self.last_load_stats: LoadStats | None = None

    # -- on-disk layout ---------------------------------------------------------

    @staticmethod
    def ingest(instances: Sequence[Instance], directory: str | Path, blocks: int = 8) -> None:
        """Write raw geo-records in arrival order, no index of any kind."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        records = [instance_to_geo_record(inst) for inst in instances]
        for b in range(blocks):
            start = b * len(records) // blocks
            end = (b + 1) * len(records) // blocks
            (directory / f"block-{b:05d}.pkl").write_bytes(
                pickle.dumps(records[start:end], protocol=pickle.HIGHEST_PROTOCOL)
            )

    def _load_all(self, ctx: EngineContext, directory: str | Path) -> RDD:
        directory = Path(directory)
        stats = LoadStats()
        partitions = []
        for path in sorted(directory.glob("block-*.pkl")):
            raw = path.read_bytes()
            records = pickle.loads(raw)
            stats.partitions_total += 1
            stats.note_block(path.name, len(records), len(raw))
            partitions.append(records)
        self.last_load_stats = stats
        return ctx.from_partitions(partitions or [[]])

    # -- selection -----------------------------------------------------------------

    def select(
        self,
        ctx: EngineContext,
        directory: str | Path,
        spatial: Envelope | None = None,
        temporal: Duration | None = None,
    ) -> RDD:
        """Load everything, spatially partition + filter, then parse-filter
        on time, then reformat records into instances."""
        records = self._load_all(ctx, directory)
        n = self.num_partitions

        # KDB-ish spatial placement: partition by centroid hash of a coarse
        # spatial key (GeoSpark's partitioning is spatial; using a coarse
        # grid key keeps spatial locality without learning boundaries).
        from repro.engine.shuffle import stable_hash

        def spatial_key(record: tuple) -> int:
            cx, cy = record_centroid(record)
            return stable_hash((round(cx, 1), round(cy, 1)))

        partitioned = records.shuffle_by(n, lambda r: spatial_key(r) % n)

        if spatial is not None:
            s = spatial

            def spatial_pass(record: tuple) -> bool:
                min_x, min_y, max_x, max_y = record_envelope(record)
                return s.intersects_envelope(Envelope(min_x, min_y, max_x, max_y))

            partitioned = partitioned.filter(spatial_pass)

        if temporal is not None:
            t = temporal

            def temporal_pass(record: tuple) -> bool:
                kind, _, attrs = record
                if kind == "event":
                    return t.contains(parse_timestamp(attrs["time"]))
                stamps = attrs["timestamps"]
                return any(t.contains(parse_timestamp(sv)) for sv in stamps)

            partitioned = partitioned.filter(temporal_pass)

        def refine(record: tuple):
            """Reformation + the exact joint entry-level predicate, so the
            selected set matches ST4ML's semantics record-for-record."""
            instance = geo_record_to_instance(record)
            s = spatial if spatial is not None else instance.spatial_extent
            t = temporal if temporal is not None else instance.temporal_extent
            return [instance] if instance.intersects(s, t) else []

        return partitioned.flat_map(refine)
