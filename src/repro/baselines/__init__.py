"""Straightforward extensions of existing systems (paper Section 5.2).

The paper compares ST4ML against end-to-end solutions built the obvious
way on GeoSpark and GeoMesa.  These baselines reproduce those solutions'
*costs* faithfully on our engine:

* :class:`GeoSparkLike` — ad-hoc in-memory ingestion: **all** data loaded
  from disk every run, spatial-only KDB partitioning, temporal attributes
  carried as strings that must be parsed per use, naive (full-scan)
  conversions;
* :class:`GeoMesaLike` — persistent entry-level index: records keyed by a
  simplified XZ2 curve + the start timestamp, stored in sorted blocks;
  selection prunes blocks by key range and time, but in-memory processing
  is unoptimized (no structure R-tree, ``groupByKey``-style aggregation)
  and trajectory timestamps are strings needing reformation.

Both share the record format of the paper's Table 1 "original"
representation — a linestring + timestamp-string array + id — so the
reformation cost the paper describes is physically incurred.
"""

from repro.baselines.records import (
    instance_to_geo_record,
    geo_record_to_instance,
    format_timestamp,
    parse_timestamp,
)
from repro.baselines.geospark_like import GeoSparkLike
from repro.baselines.geomesa_like import GeoMesaLike

__all__ = [
    "GeoSparkLike",
    "GeoMesaLike",
    "instance_to_geo_record",
    "geo_record_to_instance",
    "format_timestamp",
    "parse_timestamp",
]
