"""The baseline systems' record representation.

Both GeoSpark and GeoMesa represent an ST record as *a geometry with
string-typed attributes* (paper Section 5.2): the temporal information
lives in strings, and a trajectory is a linestring with an affiliated
timestamp array (Table 1, left column).  Every use of the temporal
dimension therefore pays a parse, and trajectory processing pays the
"reformation" that aligns locations with timestamps — both costs the
paper identifies and we reproduce by carrying real strings.
"""

from __future__ import annotations

from datetime import datetime, timezone

from repro.instances.base import Instance
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory

_TIME_FORMAT = "%Y-%m-%d %H:%M:%S.%f"

#: Record kind tags.
EVENT_KIND = "event"
TRAJ_KIND = "trajectory"


def format_timestamp(t: float) -> str:
    """Epoch seconds → the string form the baselines store."""
    return datetime.fromtimestamp(t, tz=timezone.utc).strftime(_TIME_FORMAT)


def parse_timestamp(s: str) -> float:
    """String → epoch seconds; this is the per-use parse cost."""
    return datetime.strptime(s, _TIME_FORMAT).replace(tzinfo=timezone.utc).timestamp()


def instance_to_geo_record(instance: Instance) -> tuple:
    """Flatten an instance into (kind, coords, attrs) with string times.

    * event → ``(kind, (lon, lat), {"time": str, "aux": str, "id": str})``
    * trajectory → ``(kind, ((lon, lat), ...),
      {"timestamps": (str, ...), "id": str})``
    """
    if isinstance(instance, Event):
        return (
            EVENT_KIND,
            (instance.spatial.x, instance.spatial.y),
            {
                "time": format_timestamp(instance.temporal.start),
                "aux": repr(instance.value),
                "id": repr(instance.data),
            },
        )
    if isinstance(instance, Trajectory):
        coords = tuple((e.spatial.x, e.spatial.y) for e in instance.entries)
        stamps = tuple(format_timestamp(e.temporal.start) for e in instance.entries)
        return (
            TRAJ_KIND,
            coords,
            {"timestamps": stamps, "id": repr(instance.data)},
        )
    raise TypeError(f"baselines support singular instances, got {type(instance).__name__}")


def geo_record_to_instance(record: tuple) -> Instance:
    """The "reformation" step (paper Table 1): align locations with parsed
    timestamps and rebuild the ST instance.  Deliberately pays the string
    parse for every point."""
    kind, coords, attrs = record
    if kind == EVENT_KIND:
        lon, lat = coords
        return Event.of_point(
            lon, lat, parse_timestamp(attrs["time"]), value=attrs["aux"], data=attrs["id"]
        )
    if kind == TRAJ_KIND:
        points = [
            (lon, lat, parse_timestamp(stamp))
            for (lon, lat), stamp in zip(coords, attrs["timestamps"])
        ]
        return Trajectory.of_points(points, data=attrs["id"])
    raise ValueError(f"unknown record kind {kind!r}")


def record_centroid(record: tuple) -> tuple[float, float]:
    """Cheap spatial centroid without temporal parsing (spatial operations
    are the one thing the baselines do natively)."""
    kind, coords, _ = record
    if kind == EVENT_KIND:
        return coords
    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    return (sum(xs) / len(xs), sum(ys) / len(ys))


def record_envelope(record: tuple) -> tuple[float, float, float, float]:
    """(min_x, min_y, max_x, max_y) of a record's geometry."""
    kind, coords, _ = record
    if kind == EVENT_KIND:
        x, y = coords
        return (x, y, x, y)
    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    return (min(xs), min(ys), max(xs), max(ys))


def record_start_time(record: tuple) -> float:
    """Numeric start timestamp (GeoMesa indexes this at ingestion)."""
    kind, _, attrs = record
    if kind == EVENT_KIND:
        return parse_timestamp(attrs["time"])
    return parse_timestamp(attrs["timestamps"][0])
