"""Command-line interface: preprocessing, indexing, and selection.

The paper's Figure 1a points out that the legacy workflow forces
application programmers through CLIs for ingestion; ST4ML folds the
preprocessing step into the system.  This CLI covers the operational
surface a data engineer needs without writing code:

* ``generate`` — synthesize a seeded dataset (nyc / porto / air / osm);
* ``index``    — T-STR-partition an existing dataset and (re)build its
  on-disk metadata index;
* ``convert-format`` — rewrite a dataset's blocks between the v1
  (whole-partition pickle) and v2 (mmap-able columnar) block formats,
  preserving selection results byte-for-byte;
* ``select``   — run a metadata-pruned ST range selection and report the
  pruning statistics (``--format json`` emits the canonical result
  document the serve protocol also uses);
* ``serve``    — long-lived query daemon over a dataset: resident
  metadata/blocks/indexes, a server-wide result cache, per-tenant
  admission control with explicit load shedding (see :mod:`repro.serve`);
* ``query``    — thin client for a running daemon (also ``--stats`` /
  ``--ping`` / ``--shutdown``);
* ``info``     — print a dataset's metadata summary;
* ``lint``     — static distributed-correctness checks: stage-closure
  rules (REPRO1xx) and lock-discipline rules (REPRO2xx); see
  :mod:`repro.analysis`;
* ``trace``    — run a pipeline script under the tracer and export its
  span tree (Chrome trace JSON / text summary / JSONL);
* ``locks``    — run a pipeline script under the runtime lock-order
  sanitizer (:mod:`repro.engine.lockwatch`) and report the lock-order
  graph, per-site hold/contention stats, and any deadlock hazards;
* ``chaos``    — run a pipeline script under a seeded
  :class:`~repro.engine.faults.FaultPlan` (injected task errors, worker
  kills, straggler delays, corrupt reads) and report what fired and what
  recovered; ``--parity`` asserts the faulted run's output matches a
  fault-free run.

Any subcommand also accepts ``--profile [PATH]``, which installs a tracer
around the whole command and writes the same three trace files.

Usage::

    python -m repro.cli generate nyc --records 50000 --out data/nyc
    python -m repro.cli select data/nyc --bbox -74.0 40.6 -73.9 40.8 \
        --time 1356998400 1357603200
    python -m repro.cli --profile traces/select select data/nyc --bbox ...
    python -m repro.cli serve data/nyc --port 7071 --tenant ml-team:100:40:16
    python -m repro.cli query --port 7071 --bbox -74.0 40.6 -73.9 40.8 --format json
    python -m repro.cli lint src/ tests/ --format github
    python -m repro.cli --backend process trace examples/quickstart.py
    python -m repro.cli --backend process chaos examples/quickstart.py --parity
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.datasets import (
    generate_air_records,
    generate_nyc_events,
    generate_osm_pois,
    generate_porto_trajectories,
)
from repro.engine import EngineContext
from repro.geometry import Envelope
from repro.partitioners import TSTRPartitioner
from repro.stio import StDataset, save_dataset
from repro.temporal import Duration

_GENERATORS = {
    "nyc": ("event", lambda n, seed: generate_nyc_events(n, seed=seed)),
    "porto": ("trajectory", lambda n, seed: generate_porto_trajectories(n, seed=seed)),
    "air": (
        "event",
        lambda n, seed: generate_air_records(
            n_stations=max(1, n // 100), hours=100, seed=seed
        ),
    ),
    "osm": ("event", lambda n, seed: generate_osm_pois(n, seed=seed)),
}


def _rule_ids(value: str) -> list[str]:
    """argparse type for comma-separated rule-id lists."""
    return [v.strip() for v in value.split(",") if v.strip()]


def _make_ctx(args: argparse.Namespace) -> EngineContext:
    return EngineContext(default_parallelism=args.parallelism, backend=args.backend)


def _cmd_generate(args: argparse.Namespace) -> int:
    kind, generator = _GENERATORS[args.dataset]
    instances = generator(args.records, args.seed)
    ctx = _make_ctx(args)
    partitioner = TSTRPartitioner(args.gt, args.gs) if args.indexed else None
    save_dataset(
        args.out,
        instances,
        kind,
        partitioner=partitioner,
        ctx=ctx,
        block_format=args.block_format,
    )
    print(
        f"wrote {len(instances):,} {kind} records to {args.out} "
        f"({'T-STR indexed' if args.indexed else 'unindexed'}, "
        f"{args.block_format} blocks)"
    )
    ctx.stop()
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    ctx = _make_ctx(args)
    ds = StDataset(args.path)
    meta = ds.metadata()
    rdd, _ = ds.read(ctx)
    StDataset.write_rdd(
        args.out or args.path,
        rdd,
        meta.instance_type,
        partitioner=TSTRPartitioner(args.gt, args.gs),
        # A re-index changes the partitioning, not the storage format.
        block_format=meta.block_format,
    )
    print(
        f"re-indexed {meta.total_records:,} records "
        f"({meta.instance_type}) with T-STR(gt={args.gt}, gs={args.gs})"
    )
    ctx.stop()
    return 0


def _parse_query(args: argparse.Namespace) -> tuple[Envelope | None, Duration | None]:
    spatial = None
    temporal = None
    if args.bbox:
        min_x, min_y, max_x, max_y = args.bbox
        spatial = Envelope(min_x, min_y, max_x, max_y)
    if args.time:
        temporal = Duration(args.time[0], args.time[1])
    return spatial, temporal


def _cmd_select(args: argparse.Namespace) -> int:
    spatial, temporal = _parse_query(args)
    if spatial is None and temporal is None:
        print("select needs --bbox and/or --time", file=sys.stderr)
        return 2
    ctx = _make_ctx(args)
    from repro.core import Selector

    selector = Selector(spatial, temporal)
    start = time.perf_counter()
    selected = selector.select(ctx, args.path, use_metadata=not args.full_scan)
    if args.format == "json":
        # The canonical result document — built by the same codec the
        # serve protocol uses, so daemon answers are byte-for-byte
        # comparable to this output.  Nothing else goes to stdout.
        from repro.serve.protocol import records_document

        print(records_document(selected.collect()))
        ctx.stop()
        return 0
    count = selected.count()
    elapsed = time.perf_counter() - start
    stats = selector.last_load_stats
    print(f"selected {count:,} records in {elapsed:.2f}s ({args.backend} backend)")
    if stats is not None:
        print(
            f"partitions read: {stats.partitions_read}/{stats.partitions_total}  "
            f"records deserialized: {stats.records_loaded:,}  "
            f"bytes read: {stats.bytes_read:,}"
        )
    ctx.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QueryServer, ServeConfig, TenantPolicy

    tenants = {}
    for spec in args.tenant or []:
        try:
            name, policy = TenantPolicy.from_spec(spec)
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
        tenants[name] = policy
    default = TenantPolicy()
    if args.default_tenant:
        try:
            _, default = TenantPolicy.from_spec(f"default:{args.default_tenant}")
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
        cache_bytes=args.cache_bytes,
        index_cache_bytes=args.index_cache_bytes,
        default_tenant=default,
        tenants=tenants,
        allow_shutdown=not args.no_remote_shutdown,
    )
    ctx = _make_ctx(args)
    server = QueryServer(args.path, config, ctx=ctx)
    host, port = server.start()
    meta = server.state.meta
    print(
        f"serving {args.path} ({meta.total_records:,} {meta.instance_type} "
        f"records, {len(meta.partitions)} partitions, generation "
        f"{meta.generation}) on {host}:{port} "
        f"({args.backend} backend, {args.workers} query workers)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("serve: shut down cleanly")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.serve import STATUS_OK, STATUS_SHED, ServeClient, ServeError
    from repro.serve.protocol import result_document

    try:
        with ServeClient(args.host, args.port, tenant=args.tenant) as client:
            if args.ping:
                print(json.dumps(client.ping(), indent=2, sort_keys=True))
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                client.shutdown()
                print("daemon acknowledged shutdown")
                return 0
            if not args.bbox and not args.time:
                print("query needs --bbox and/or --time", file=sys.stderr)
                return 2
            response = client.query(
                bbox=args.bbox, time_range=args.time, priority=args.priority
            )
    except ServeError as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 1
    status = response.get("status")
    if status == STATUS_SHED:
        print(
            f"SHED ({response.get('reason')}) for tenant "
            f"{response.get('tenant')!r}",
            file=sys.stderr,
        )
        return 3
    if status != STATUS_OK:
        print(f"query: {response.get('error', response)}", file=sys.stderr)
        return 1
    if args.format == "json":
        # Identical bytes to `repro select --format json` on the same range.
        print(result_document(response))
        return 0
    print(
        f"{response['count']:,} records (cached={response['cached']}, "
        f"generation={response['generation']}, queue={response['queue_ms']}ms, "
        f"exec={response['exec_ms']}ms)"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintOptions, lint_paths, render, rules_by_id

    if args.list_rules:
        for rule_id, rule in sorted(rules_by_id().items()):
            summary = rule.description.split(". ")[0].rstrip(".")
            print(f"{rule_id}  {rule.name:<28} {summary}")
        return 0
    if not args.paths:
        print("lint needs at least one path (or --list-rules)", file=sys.stderr)
        return 2
    options = LintOptions(
        assume_cloudpickle=False if args.no_cloudpickle else None
    )
    try:
        report = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            options=options,
        )
    except ValueError as exc:  # unknown rule id in --select/--ignore
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    output = render(report, args.format)
    if output:
        print(output)
    from repro.analysis import Severity

    threshold = Severity[args.fail_on.upper()]
    return 1 if report.fails_at(threshold) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os
    import runpy

    from repro.obs import Tracer, installed, text_tree, write_trace_files

    script = Path(args.script)
    if not script.exists():
        print(f"trace: no such script: {script}", file=sys.stderr)
        return 2
    out = args.out or Path("traces") / script.stem
    tracer = Tracer()
    # Scripts typically build their own EngineContext; REPRO_DEFAULT_BACKEND
    # steers those constructions without editing the script.
    previous_backend = os.environ.get("REPRO_DEFAULT_BACKEND")
    os.environ["REPRO_DEFAULT_BACKEND"] = args.backend
    try:
        with installed(tracer):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        if previous_backend is None:
            os.environ.pop("REPRO_DEFAULT_BACKEND", None)
        else:
            os.environ["REPRO_DEFAULT_BACKEND"] = previous_backend
    paths = write_trace_files(tracer, out)
    if not args.quiet:
        print(text_tree(tracer))
        print()
    for kind, path in sorted(paths.items()):
        print(f"{kind} trace written to {path}")
    return 0


def _cmd_locks(args: argparse.Namespace) -> int:
    import json
    import os
    import runpy

    from repro.engine import lockwatch

    script = Path(args.script)
    if not script.exists():
        print(f"locks: no such script: {script}", file=sys.stderr)
        return 2
    out = args.out or Path("traces") / f"locks-{script.stem}.json"
    previous_backend = os.environ.get("REPRO_DEFAULT_BACKEND")
    os.environ["REPRO_DEFAULT_BACKEND"] = args.backend
    watcher = lockwatch.install()
    watcher.reset()
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        if previous_backend is None:
            os.environ.pop("REPRO_DEFAULT_BACKEND", None)
        else:
            os.environ["REPRO_DEFAULT_BACKEND"] = previous_backend
    snapshot = watcher.snapshot()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True), encoding="utf-8")
    if not args.quiet:
        print(lockwatch.format_report(snapshot))
        print()
    print(f"lock-order graph written to {out}")
    return 1 if snapshot["violations"] else 0


def _run_script_traced(script: Path, backend: str, fault_env: str | None):
    """Run ``script`` under a fresh tracer, capturing its stdout.

    ``fault_env`` is the ``REPRO_FAULT_PLAN`` value for the run (``None``
    runs fault-free); the variable is restored afterwards either way, as
    is ``REPRO_DEFAULT_BACKEND``.  Returns ``(stdout_text, tracer)``.
    """
    import contextlib
    import io
    import os
    import runpy

    from repro.engine.faults import FAULT_PLAN_ENV
    from repro.obs import Tracer, installed

    tracer = Tracer()
    saved = {
        name: os.environ.get(name) for name in ("REPRO_DEFAULT_BACKEND", FAULT_PLAN_ENV)
    }
    os.environ["REPRO_DEFAULT_BACKEND"] = backend
    if fault_env is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = fault_env
    captured = io.StringIO()
    try:
        with installed(tracer), contextlib.redirect_stdout(captured):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return captured.getvalue(), tracer


def _cmd_chaos(args: argparse.Namespace) -> int:
    import re

    from repro.engine.faults import FaultPlan
    from repro.obs import text_tree, write_trace_files

    script = Path(args.script)
    if not script.exists():
        print(f"chaos: no such script: {script}", file=sys.stderr)
        return 2
    if args.plan is not None:
        plan = FaultPlan.from_spec(args.plan)
    else:
        mix = {
            "task_error": args.error,
            "worker_kill": args.kill,
            "delay": args.delay,
            "corrupt_read": args.corrupt,
        }
        if not any(p is not None for p in mix.values()):
            # No explicit mix: a default storm that every backend survives.
            mix = {
                "task_error": 0.2,
                "worker_kill": 0.1,
                "delay": 0.2,
                "corrupt_read": 0.2,
            }
        plan = FaultPlan.chaos(
            seed=args.seed,
            delay_seconds=args.delay_seconds,
            **{k: (v or 0.0) for k, v in mix.items()},
        )
    out = args.out or Path("traces") / f"chaos-{script.stem}"

    clean_output = None
    if args.parity:
        clean_output, _ = _run_script_traced(script, args.backend, None)
    chaos_output, tracer = _run_script_traced(script, args.backend, plan.to_json())

    if not args.quiet:
        sys.stdout.write(chaos_output)
        print(text_tree(tracer))
        print()
    counters = tracer.counters
    fault_keys = (
        "faults_injected",
        "fault_delay_seconds",
        "worker_losses",
        "partitions_recomputed",
        "backend_demotions",
        "partitions_quarantined",
        "checkpoint_saves",
        "checkpoint_resumes",
    )
    summary = {k: counters[k] for k in fault_keys if counters.get(k)}
    print(f"fault plan: seed={plan.seed} rules={len(plan.rules)} ({args.backend} backend)")
    if summary:
        print(
            "chaos summary: "
            + "  ".join(f"{k}={v:g}" for k, v in summary.items())
        )
    else:
        print("chaos summary: no faults fired (raise probabilities or change seed)")
    paths = write_trace_files(tracer, out)
    for kind, path in sorted(paths.items()):
        print(f"{kind} trace written to {path}")

    if args.parity:
        import tempfile

        ignore = re.compile(args.ignore_lines) if args.ignore_lines else None
        # Temp paths are run-unique by design; mask them so scripts that
        # print their scratch workspace still compare equal.
        tmp_path = re.compile(re.escape(tempfile.gettempdir()) + r"/\S+")

        def keep(text: str) -> list[str]:
            return [
                tmp_path.sub("<TMP>", line)
                for line in text.splitlines()
                if not (ignore and ignore.search(line))
            ]

        clean_lines, chaos_lines = keep(clean_output), keep(chaos_output)
        if clean_lines != chaos_lines:
            print("parity: FAIL — chaos output differs from fault-free run:")
            import difflib

            for line in difflib.unified_diff(
                clean_lines, chaos_lines, "fault-free", "chaos", lineterm="", n=1
            ):
                print(f"  {line}")
            return 1
        print(f"parity: OK — {len(chaos_lines)} output lines identical to fault-free run")
    return 0


def _cmd_convert_format(args: argparse.Namespace) -> int:
    ds = StDataset(args.path)
    meta = ds.metadata()
    if meta.block_format == args.to and args.out is None:
        print(f"{args.path} already uses block format {args.to}; nothing to do")
        return 0
    start = time.perf_counter()
    converted = ds.convert(args.to, out=args.out)
    elapsed = time.perf_counter() - start
    target = args.out or args.path
    print(
        f"converted {meta.total_records:,} records "
        f"({len(meta.partitions)} partitions) {meta.block_format} -> {args.to} "
        f"at {target} in {elapsed:.2f}s "
        f"(generation {converted.metadata().generation})"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    meta = StDataset(args.path).metadata()
    non_empty = [p for p in meta.partitions if p.count]
    sizes = [p.count for p in non_empty]
    watermark = (
        f"{meta.watermark:.3f}" if meta.watermark is not None else "(none)"
    )
    summary = [
        ("dataset", str(args.path)),
        ("instance type", meta.instance_type),
        ("block format", meta.block_format),
        ("generation", str(meta.generation)),
        ("watermark", watermark),
        ("partitions", str(len(meta.partitions))),
        ("records", f"{meta.total_records:,}"),
    ]
    if sizes:
        summary.append(
            (
                "partition sizes",
                f"min={min(sizes)} max={max(sizes)} "
                f"mean={sum(sizes) / len(sizes):.1f}",
            )
        )
    label_width = max(len(label) for label, _ in summary)
    for label, value in summary:
        print(f"{label:<{label_width}}  {value}")
    if not meta.partitions:
        return 0
    print()
    rows = [
        (
            str(i),
            p.filename,
            meta.block_format,
            f"{p.count:,}",
            f"[{p.bounds.mins[2]:.0f}, {p.bounds.maxs[2]:.0f}]"
            if p.count
            else "(empty)",
        )
        for i, p in enumerate(meta.partitions)
    ]
    header = ("part", "file", "format", "records", "time range")
    widths = [
        max(len(header[col]), max(len(r[col]) for r in rows))
        for col in range(len(header))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ST4ML reproduction: dataset tooling"
    )
    parser.add_argument("--parallelism", type=int, default=8)
    parser.add_argument(
        "--backend",
        choices=("sequential", "thread", "process"),
        default="sequential",
        help="stage-execution backend (process runs tasks on a multiprocess "
        "pool with straggler re-execution)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="traces/profile",
        default=None,
        metavar="PATH",
        help="profile the command: install a tracer and write "
        "PATH.trace.json (Chrome/Perfetto), PATH.summary.txt, and "
        "PATH.jsonl (default PATH: traces/profile)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a seeded dataset")
    gen.add_argument("dataset", choices=sorted(_GENERATORS))
    gen.add_argument("--records", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=17)
    gen.add_argument("--out", type=Path, required=True)
    gen.add_argument("--indexed", action="store_true", default=True)
    gen.add_argument("--no-indexed", dest="indexed", action="store_false")
    gen.add_argument("--gt", type=int, default=4)
    gen.add_argument("--gs", type=int, default=4)
    gen.add_argument(
        "--block-format",
        choices=("v1", "v2"),
        default="v1",
        help="on-disk block layout: v1 pickles each partition whole, v2 "
        "is the mmap-able columnar format (pruned cold loads decode only "
        "matching rows)",
    )
    gen.set_defaults(func=_cmd_generate)

    idx = sub.add_parser("index", help="(re)build the T-STR on-disk index")
    idx.add_argument("path", type=Path)
    idx.add_argument("--out", type=Path, default=None)
    idx.add_argument("--gt", type=int, default=4)
    idx.add_argument("--gs", type=int, default=4)
    idx.set_defaults(func=_cmd_index)

    sel = sub.add_parser("select", help="metadata-pruned ST range selection")
    sel.add_argument("path", type=Path)
    sel.add_argument("--bbox", type=float, nargs=4, metavar=("MIN_X", "MIN_Y", "MAX_X", "MAX_Y"))
    sel.add_argument("--time", type=float, nargs=2, metavar=("START", "END"))
    sel.add_argument("--full-scan", action="store_true", help="bypass the metadata index")
    sel.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json prints the canonical result document (the exact bytes "
        "the serve protocol returns for the same range)",
    )
    sel.set_defaults(func=_cmd_select)

    serve = sub.add_parser(
        "serve",
        help="long-lived query daemon with admission control and caching",
        description="Keeps the dataset's metadata, decoded blocks, "
        "selection indexes, result cache, and execution workers resident, "
        "answering concurrent ST-range queries over line-delimited JSON. "
        "Overloaded tenants receive explicit SHED responses (token-bucket "
        "rate limits, in-flight caps, bounded queue) — never silent drops. "
        "--profile records every request as a span in the trace exports.",
    )
    serve.add_argument("path", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="query worker threads (default 4)"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded execution queue depth; overflow sheds (default 64)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=60.0,
        help="server-side seconds before an admitted request errors out",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=64 << 20,
        help="result-cache byte budget (default 64 MiB)",
    )
    serve.add_argument(
        "--index-cache-bytes", type=int, default=256 << 20,
        help="selection-index cache byte budget (default 256 MiB)",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        metavar="NAME:RATE[:BURST[:INFLIGHT]]",
        help="per-tenant admission policy (repeatable); RATE is tokens/sec "
        "(0 = no refill: exactly BURST requests ever), BURST the bucket "
        "size, INFLIGHT the concurrent-request cap",
    )
    serve.add_argument(
        "--default-tenant",
        metavar="RATE[:BURST[:INFLIGHT]]",
        default=None,
        help="admission policy for tenants not named by --tenant",
    )
    serve.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="reject the protocol's shutdown op (stop with SIGINT instead)",
    )
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query",
        help="query a running serve daemon",
        description="Sends one ST-range query (or a control op) to a "
        "daemon started with `repro serve`.  --format json prints the "
        "same canonical result document as `repro select --format json`. "
        "Exit code 3 means the request was shed.",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--tenant", default="default")
    query.add_argument(
        "--bbox", type=float, nargs=4, metavar=("MIN_X", "MIN_Y", "MAX_X", "MAX_Y")
    )
    query.add_argument("--time", type=float, nargs=2, metavar=("START", "END"))
    query.add_argument(
        "--priority", type=int, default=None,
        help="queue priority (lower runs sooner; default 10)",
    )
    query.add_argument("--format", choices=("text", "json"), default="text")
    query.add_argument(
        "--stats", action="store_true", help="print the daemon's stats snapshot"
    )
    query.add_argument("--ping", action="store_true", help="liveness probe")
    query.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to stop"
    )
    query.set_defaults(func=_cmd_query)

    convert = sub.add_parser(
        "convert-format",
        help="rewrite a dataset's blocks into another block format",
        description="Rewrites every partition block into the target "
        "format (v1 whole-partition pickles or v2 mmap-able columnar "
        "blocks), preserving partition layout, record order, codec, and "
        "bounds — selections answer byte-for-byte identically before and "
        "after.  In place by default (the generation bumps and old-format "
        "blocks are removed); --out writes a converted copy instead.",
    )
    convert.add_argument("path", type=Path)
    convert.add_argument(
        "--to", choices=("v1", "v2"), required=True, help="target block format"
    )
    convert.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the converted dataset here instead of in place",
    )
    convert.set_defaults(func=_cmd_convert_format)

    info = sub.add_parser("info", help="print dataset metadata")
    info.add_argument("path", type=Path)
    info.set_defaults(func=_cmd_info)

    from repro.analysis import FORMATS

    lint = sub.add_parser(
        "lint",
        help="static distributed-correctness and lock-discipline checks",
        description="AST-based lint: the REPRO1xx family checks code that "
        "ships closures into engine stages (capture safety, picklability, "
        "determinism, broadcast immutability, partitioner contracts); the "
        "REPRO2xx family checks lock discipline (guarded mutation, "
        "balanced acquire/release, blocking calls under locks, global "
        "lock order, condition predicates, locks in stage closures).",
    )
    lint.add_argument("paths", nargs="*", type=Path)
    lint.add_argument("--format", choices=FORMATS, default="text")
    lint.add_argument(
        "--select",
        type=_rule_ids,
        action="extend",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        type=_rule_ids,
        action="extend",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--no-cloudpickle",
        action="store_true",
        help="lint as if cloudpickle were unavailable (stdlib pickle "
        "only), enabling the stricter REPRO105 closure checks",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default="warning",
        help="minimum finding severity that makes the exit code 1 "
        "(default: warning; 'error' still prints warnings but lets CI "
        "gate on errors only)",
    )
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="run a pipeline script under the tracer and export the trace",
        description="Executes SCRIPT (as __main__) with a tracer installed "
        "globally, then writes the Chrome trace-event JSON, text summary "
        "tree, and JSONL exports.  The script's EngineContexts pick up "
        "--backend via REPRO_DEFAULT_BACKEND.",
    )
    trace.add_argument("script", type=Path)
    trace.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path prefix (default: traces/<script-stem>)",
    )
    trace.add_argument(
        "--quiet", action="store_true", help="skip printing the summary tree"
    )
    trace.set_defaults(func=_cmd_trace)

    locks = sub.add_parser(
        "locks",
        help="run a script under the lock-order sanitizer and report",
        description="Executes SCRIPT (as __main__) with the runtime "
        "lock-order sanitizer installed (the REPRO_LOCK_SANITIZER=1 "
        "instrumentation): every Lock/RLock created by repro modules is "
        "watched, per-thread acquisition stacks build the global "
        "lock-order graph, and cycles (deadlock hazards) are reported.  "
        "Writes the graph + per-site hold/contention stats as JSON; "
        "exits 1 when any violation was recorded.",
    )
    locks.add_argument("script", type=Path)
    locks.add_argument(
        "--out",
        type=Path,
        default=None,
        help="JSON output path (default: traces/locks-<script-stem>.json)",
    )
    locks.add_argument(
        "--quiet", action="store_true", help="skip printing the report"
    )
    locks.set_defaults(func=_cmd_locks)

    chaos = sub.add_parser(
        "chaos",
        help="run a pipeline script under deterministic fault injection",
        description="Executes SCRIPT with a seeded FaultPlan active "
        "(REPRO_FAULT_PLAN) and a tracer installed, prints a fault/recovery "
        "summary, and writes the trace exports.  --parity additionally runs "
        "the script fault-free first and fails (exit 1) unless both runs "
        "print identical output — the determinism check the chaos-smoke CI "
        "job enforces.",
    )
    chaos.add_argument("script", type=Path)
    chaos.add_argument(
        "--plan",
        type=Path,
        default=None,
        help="JSON fault-plan file (overrides the probability flags)",
    )
    chaos.add_argument("--seed", type=int, default=17)
    chaos.add_argument(
        "--error", type=float, default=None, metavar="P",
        help="per-attempt probability of an injected task error",
    )
    chaos.add_argument(
        "--kill", type=float, default=None, metavar="P",
        help="per-attempt probability of killing the executing worker",
    )
    chaos.add_argument(
        "--delay", type=float, default=None, metavar="P",
        help="per-attempt probability of an injected straggler delay",
    )
    chaos.add_argument(
        "--corrupt", type=float, default=None, metavar="P",
        help="per-read probability of corrupting a block file's bytes",
    )
    chaos.add_argument(
        "--delay-seconds", type=float, default=0.02,
        help="duration of each injected delay (default 0.02)",
    )
    chaos.add_argument(
        "--parity",
        action="store_true",
        help="also run fault-free and require identical script output",
    )
    chaos.add_argument(
        "--ignore-lines",
        default=r"^engine work:",
        metavar="REGEX",
        help="output lines matching REGEX are excluded from the parity "
        "comparison (default: '^engine work:' — attempt counters "
        "legitimately differ under retries)",
    )
    chaos.add_argument(
        "--out",
        type=Path,
        default=None,
        help="trace output path prefix (default: traces/chaos-<script-stem>)",
    )
    chaos.add_argument(
        "--quiet",
        action="store_true",
        help="skip echoing script output and the summary tree",
    )
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile is not None and args.command != "trace":
        from repro.obs import Tracer, installed, write_trace_files

        tracer = Tracer()
        with installed(tracer):
            code = args.func(args)
        paths = write_trace_files(tracer, args.profile)
        for kind, path in sorted(paths.items()):
            print(f"{kind} trace written to {path}")
        return code
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
