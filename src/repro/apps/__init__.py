"""The end-to-end applications of the paper's evaluation (Table 7).

Each module implements one feature-extraction application three ways —
``run_st4ml``, ``run_geomesa``, ``run_geospark`` — with identical
*outputs* (the integration tests assert equality) but the authentic cost
profile of each system:

========  ==========================================================
app       feature (dataset)
========  ==========================================================
anomaly       events occurring 23:00-04:00 daily (NYC)
avg_speed     average speed of each trajectory (Porto)
stay_point    stay points with (200 m, 10 min) thresholds (Porto)
hourly_flow   event count per 1-hour time-series slot (NYC)
grid_speed    mean speed per spatial-map grid cell (Porto)
transition    in/out flow per raster cell (Porto)
air_road      daily mean air quality over road segments (Air)
poi_count     POI count per postal-code area (OSM)
========  ==========================================================

plus the two Section 6 case studies:

* ``case_speed`` — daily district×hour raster speed profiles (Figure 9);
* ``case_road_flow`` — map matching + road-segment flow (Table 9).
"""

from repro.apps import (  # noqa: F401  (re-exported app modules)
    air_road,
    anomaly,
    avg_speed,
    case_road_flow,
    case_speed,
    grid_speed,
    hourly_flow,
    poi_count,
    stay_point,
    transition,
)

#: The Figure 7 suite in paper order.
FIGURE7_APPS = {
    "anomaly": anomaly,
    "avg_speed": avg_speed,
    "stay_point": stay_point,
    "hourly_flow": hourly_flow,
    "grid_speed": grid_speed,
    "transition": transition,
    "air_road": air_road,
    "poi_count": poi_count,
}

__all__ = ["FIGURE7_APPS"] + list(FIGURE7_APPS) + ["case_speed", "case_road_flow"]
