"""Application: event count per 1-hour time-series slot (NYC).

ST4ML converts with the optimized Event2Ts path (regular slots → analytic
shortcut) and aggregates per executor with no shuffle; the baselines scan
the slot list per record and count with the shuffle-everything
``groupByKey`` pattern (they have no structure index or map-side
pre-aggregation to lean on).
"""

from __future__ import annotations

from repro.apps.common import baseline_select, group_count, naive_cell_scan
from repro.core.converters.singular_to_collective import Event2TsConverter
from repro.core.extractors.timeseries import TsFlowExtractor
from repro.core.selector import Selector
from repro.core.structures import TimeSeriesStructure
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

SLOT_SECONDS = 3_600.0


def _structure(temporal: Duration) -> TimeSeriesStructure:
    n_slots = max(1, round(temporal.length / SLOT_SECONDS))
    return TimeSeriesStructure.regular(temporal, n_slots)


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
) -> list[int]:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    converter = Event2TsConverter(_structure(temporal))
    converted = converter.convert(selected)
    return TsFlowExtractor().extract(converted).cell_values()


def _run_baseline(system: str, ctx, data_dir, spatial, temporal) -> list[int]:
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    structure = _structure(temporal)
    cells = [(None, slot) for slot in structure.slots]
    return group_count(
        selected, lambda ev: naive_cell_scan(cells, ev), structure.n_cells
    )


def run_geomesa(ctx, data_dir, spatial, temporal) -> list[int]:
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal) -> list[int]:
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
