"""Application: daily mean air-quality indices over road segments (Air).

The raster's spatial cells are road-segment linestrings and its temporal
slots are days; the extracted feature per cell is the mean of each AQI
index over the records allocated to it.
"""

from __future__ import annotations

from repro.apps.common import baseline_select, naive_cell_scan
from repro.core.converters.singular_to_collective import Event2RasterConverter
from repro.core.extractors.base import CellAggExtractor
from repro.core.selector import Selector
from repro.core.structures import RasterStructure
from repro.engine.context import EngineContext
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.mapmatching.road_network import RoadNetwork
from repro.temporal.duration import Duration
from repro.temporal.windows import tumbling_windows

SECONDS_PER_DAY = 86_400.0


class AirQualityExtractor(CellAggExtractor):
    """Mean of each air-quality index over a cell's records."""

    def local(self, values: list, spatial: Geometry, temporal: Duration):
        """Per-cell partial aggregate (see CellAggExtractor)."""
        sums: dict[str, float] = {}
        count = 0
        for ev in values:
            for field, v in ev.value.items():
                sums[field] = sums.get(field, 0.0) + v
            count += 1
        return (sums, count)

    def merge(self, a, b):
        """Combine two per-cell partial aggregates (see CellAggExtractor)."""
        sums = dict(a[0])
        for field, v in b[0].items():
            sums[field] = sums.get(field, 0.0) + v
        return (sums, a[1] + b[1])

    def finalize(self, partial):
        """Partial aggregate to final feature (see CellAggExtractor)."""
        sums, count = partial
        if not count:
            return None
        return {field: round(total / count, 9) for field, total in sorted(sums.items())}

    def agg_spec(self):
        """Columnar compilation (see CellAggExtractor)."""
        from repro.columnar.aggregate import FieldMeanSpec

        return FieldMeanSpec()


def build_structure(
    network: RoadNetwork,
    temporal: Duration,
    buffer_degrees: float = 0.01,
) -> RasterStructure:
    """Raster of (buffered road segment, day) cells.

    Stations are not exactly *on* segments, so each segment contributes
    its envelope expanded by ``buffer_degrees`` — the catchment area whose
    records describe the air over that road.
    """
    days = tumbling_windows(temporal, SECONDS_PER_DAY)
    return RasterStructure.from_road_network(network, days, buffer_degrees)


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    network: RoadNetwork,
    partitioner=None,
) -> list:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    structure = build_structure(network, temporal)
    converted = Event2RasterConverter(structure).convert(selected)
    return AirQualityExtractor().extract(converted).cell_values()


def _run_baseline(system, ctx, data_dir, spatial, temporal, network):
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    structure = build_structure(network, temporal)
    cells = list(structure.cells)
    extractor = AirQualityExtractor()

    def parse_value(ev):
        # Baseline records round-tripped the AQI dict through a repr string.
        import ast

        value = ev.value
        if isinstance(value, str):
            value = ast.literal_eval(value)
        return ev.map_values(lambda _: value)

    grouped = (
        selected.map(parse_value)
        .flat_map(lambda ev: [(c, ev) for c in naive_cell_scan(cells, ev)])
        .group_by_key()
        .map(
            lambda kv: (
                kv[0],
                extractor.finalize(extractor.local(kv[1], *cells[kv[0]])),
            )
        )
        .collect_as_map()
    )
    return [grouped.get(i) for i in range(structure.n_cells)]


def run_geomesa(ctx, data_dir, spatial, temporal, network):
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal, network)


def run_geospark(ctx, data_dir, spatial, temporal, network):
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal, network)
