"""Application: mean trajectory speed per spatial-map grid cell (Porto)."""

from __future__ import annotations

from repro.apps.common import baseline_select, naive_cell_scan
from repro.core.converters.singular_to_collective import Traj2SmConverter
from repro.core.extractors.spatialmap import SmSpeedExtractor
from repro.core.extractors.trajectory import TrajSpeedExtractor
from repro.core.selector import Selector
from repro.core.structures import SpatialMapStructure
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

GRID_SIZE = 16  # cells per side of the spatial map


def _structure(spatial: Envelope) -> SpatialMapStructure:
    return SpatialMapStructure.regular(spatial, GRID_SIZE, GRID_SIZE)


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
    unit: str = "kmh",
) -> list[float | None]:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    converted = Traj2SmConverter(_structure(spatial)).convert(selected)
    return SmSpeedExtractor(unit).extract(converted).cell_values()


def _run_baseline(system, ctx, data_dir, spatial, temporal, unit="kmh"):
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    structure = _structure(spatial)
    cells = [(geom, None) for geom in structure.geometries]
    speed_of = TrajSpeedExtractor(unit).speed_of

    grouped = (
        selected.flat_map(
            lambda traj: [(c, speed_of(traj)) for c in naive_cell_scan(cells, traj)]
        )
        .group_by_key()
        .map(lambda kv: (kv[0], sum(kv[1]) / len(kv[1])))
        .collect_as_map()
    )
    return [grouped.get(i) for i in range(structure.n_cells)]


def run_geomesa(ctx, data_dir, spatial, temporal):
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal):
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
