"""Application: in/out flow per raster cell (Porto; Table 7's Transition)."""

from __future__ import annotations

from repro.apps.common import baseline_select, naive_cell_scan
from repro.core.converters.singular_to_collective import Traj2RasterConverter
from repro.core.extractors.raster import RasterTransitExtractor
from repro.core.selector import Selector
from repro.core.structures import RasterStructure
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

SPATIAL_CELLS = 8   # per side
TEMPORAL_SLOTS = 24


def _structure(spatial: Envelope, temporal: Duration) -> RasterStructure:
    return RasterStructure.regular(
        spatial, temporal, SPATIAL_CELLS, SPATIAL_CELLS, TEMPORAL_SLOTS
    )


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
) -> list[tuple[int, int]]:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    converted = Traj2RasterConverter(_structure(spatial, temporal)).convert(selected)
    return RasterTransitExtractor().extract(converted).cell_values()


def _run_baseline(system, ctx, data_dir, spatial, temporal):
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    structure = _structure(spatial, temporal)
    cells = list(structure.cells)
    extractor = RasterTransitExtractor()

    def per_traj(traj) -> list[tuple[int, tuple[int, int]]]:
        out = []
        for cell_id in naive_cell_scan(cells, traj):
            geom, dur = cells[cell_id]
            out.append((cell_id, extractor.local([traj], geom, dur)))
        return out

    grouped = (
        selected.flat_map(per_traj)
        .group_by_key()
        .map(
            lambda kv: (
                kv[0],
                (sum(v[0] for v in kv[1]), sum(v[1] for v in kv[1])),
            )
        )
        .collect_as_map()
    )
    return [grouped.get(i, (0, 0)) for i in range(structure.n_cells)]


def run_geomesa(ctx, data_dir, spatial, temporal):
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal):
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
