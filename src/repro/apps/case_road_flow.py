"""Case study 2 (Table 9): road-network traffic flow via map matching.

Two challenges from the paper: (1) camera-derived trajectories deviate
from the network and must be map-matched; (2) the matched points are
sparse, so flows on uninstrumented segments are inferred by connecting
consecutive matched segments with shortest paths.  The pipeline:

    select → trajectory→trajectory map-matching conversion →
    route completion → raster (road segment × hour) flow extraction

No baseline variant exists — the paper notes "this type of application
cannot be supported by simply extending GeoSpark or GeoMesa".
"""

from __future__ import annotations

import heapq
import math
from collections import defaultdict

from repro.core.selector import Selector
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.mapmatching.converters import Traj2TrajMapMatchConverter
from repro.mapmatching.road_network import RoadNetwork
from repro.temporal.duration import Duration
from repro.temporal.windows import tumbling_windows

SECONDS_PER_HOUR = 3_600.0


def _segment_path(network: RoadNetwork, from_seg: int, to_seg: int, max_hops: int = 64) -> list[int]:
    """Shortest chain of segment ids connecting two matched segments.

    Dijkstra over junctions from the end of ``from_seg`` to the start of
    ``to_seg``, reconstructing the traversed segments — this fills in the
    road segments the cameras never saw.
    """
    if from_seg == to_seg:
        return [from_seg]
    start = network.segment(from_seg).to_node
    goal = network.segment(to_seg).from_node
    dist = {start: 0.0}
    prev: dict[int, tuple[int, int]] = {}
    heap = [(0.0, start)]
    visited = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == goal:
            break
        if len(visited) > max_hops * 4:
            return [from_seg, to_seg]
        for neighbor, weight, seg_id in network._adjacency.get(node, ()):
            nd = d + weight
            if nd < dist.get(neighbor, math.inf):
                dist[neighbor] = nd
                prev[neighbor] = (node, seg_id)
                heapq.heappush(heap, (nd, neighbor))
    if goal not in prev and goal != start:
        return [from_seg, to_seg]
    chain = []
    node = goal
    while node != start:
        node, seg_id = prev[node]
        chain.append(seg_id)
    chain.reverse()
    return [from_seg] + chain + [to_seg]


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    network: RoadNetwork,
    spatial: Envelope,
    day: Duration,
    partitioner=None,
    **matcher_kwargs,
) -> dict[tuple[int, int], int]:
    """Hourly flow per road segment: ``{(segment_id, hour): count}``.

    A vehicle contributes one count to every segment on its (completed)
    route, in the hour it passed.
    """
    selector = Selector(spatial, day, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    matcher_kwargs.setdefault("search_radius_meters", 120.0)
    matched = Traj2TrajMapMatchConverter(network, **matcher_kwargs).convert(selected)
    hours = tumbling_windows(day, SECONDS_PER_HOUR)
    broadcast = ctx.broadcast(network, record_count=network.n_segments)

    def hour_of(t: float) -> int:
        idx = int((t - day.start) / SECONDS_PER_HOUR)
        return min(max(idx, 0), len(hours) - 1)

    def flows(traj) -> list[tuple[tuple[int, int], int]]:
        net = broadcast.value
        # Collapse consecutive identical segments, remembering pass times.
        passes: list[tuple[int, float]] = []
        for e in traj.entries:
            seg = e.value
            if not passes or passes[-1][0] != seg:
                passes.append((seg, e.temporal.start))
        counted: set[tuple[int, int]] = set()
        out = []
        for (seg_a, t_a), (seg_b, _) in zip(passes, passes[1:]):
            for seg in _segment_path(net, seg_a, seg_b):
                key = (seg, hour_of(t_a))
                if key not in counted:
                    counted.add(key)
                    out.append((key, 1))
        if len(passes) == 1:
            out.append(((passes[0][0], hour_of(passes[0][1])), 1))
        return out

    return matched.flat_map(flows).reduce_by_key(lambda a, b: a + b).collect_as_map()


def flow_summary(flows: dict[tuple[int, int], int]) -> dict:
    """Digest for reporting: covered segments, total counts, peak hour."""
    per_hour: dict[int, int] = defaultdict(int)
    segments = set()
    for (seg, hour), count in flows.items():
        per_hour[hour] += count
        segments.add(seg)
    peak_hour = max(per_hour, key=per_hour.get) if per_hour else None
    return {
        "segments_covered": len(segments),
        "total_flow": sum(flows.values()),
        "peak_hour": peak_hour,
    }
