"""Application: abnormal events — events occurring 23:00-04:00 daily (NYC)."""

from __future__ import annotations

from repro.apps.common import baseline_select, canonical_id
from repro.core.extractors.event import EventAnomalyExtractor
from repro.core.selector import Selector
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

START_HOUR = 23.0
END_HOUR = 4.0


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
) -> list[str]:
    """Select → extract (no conversion needed; Table 7 row 1)."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    anomalies = EventAnomalyExtractor(START_HOUR, END_HOUR).extract(selected)
    return sorted(canonical_id(ev) for ev in anomalies.collect())


def _run_baseline(system: str, ctx, data_dir, spatial, temporal) -> list[str]:
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    matcher = EventAnomalyExtractor(START_HOUR, END_HOUR)
    return sorted(canonical_id(ev) for ev in selected.filter(matcher.matches).collect())


def run_geomesa(ctx, data_dir, spatial, temporal) -> list[str]:
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal) -> list[str]:
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
