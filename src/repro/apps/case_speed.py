"""Case study 1 (Figure 9): daily district×hour traffic speed rasters.

The city is divided into ``n_districts`` polygon districts; for each day
the application builds a (district, one-hour) raster and extracts the
vehicle count + mean speed per cell — ST4ML's optimized pipeline vs the
GeoSpark-style flow (the paper drops GeoMesa here, having shown GeoSpark
stronger on aggregation-heavy work).
"""

from __future__ import annotations

from repro.apps.common import baseline_select, naive_cell_scan
from repro.core.converters.singular_to_collective import Traj2RasterConverter
from repro.core.extractors.raster import RasterSpeedExtractor
from repro.core.selector import Selector
from repro.core.structures import RasterStructure
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

SECONDS_PER_HOUR = 3_600.0


def build_structure(
    spatial: Envelope,
    day: Duration,
    districts_per_side: int = 10,
) -> RasterStructure:
    """(district, hour) raster; 10×10 districts ≈ the paper's 100."""
    n_hours = max(1, round(day.length / SECONDS_PER_HOUR))
    return RasterStructure.regular(
        spatial, day, districts_per_side, districts_per_side, n_hours
    )


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    day: Duration,
    partitioner=None,
    districts_per_side: int = 10,
) -> list:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, day, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    structure = build_structure(spatial, day, districts_per_side)
    converted = Traj2RasterConverter(structure).convert(selected)
    return RasterSpeedExtractor(unit="kmh").extract(converted).cell_values()


def run_geospark(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    day: Duration,
    districts_per_side: int = 10,
) -> list:
    """Run this application with the GeoSpark-like baseline."""
    selected = baseline_select("geospark", ctx, data_dir, spatial, day)
    structure = build_structure(spatial, day, districts_per_side)
    cells = list(structure.cells)
    extractor = RasterSpeedExtractor(unit="kmh")

    grouped = (
        selected.flat_map(
            lambda traj: [(c, traj) for c in naive_cell_scan(cells, traj)]
        )
        .group_by_key()
        .map(
            lambda kv: (
                kv[0],
                extractor.finalize(extractor.local(kv[1], *cells[kv[0]])),
            )
        )
        .collect_as_map()
    )
    return [grouped.get(i, (0, None)) for i in range(structure.n_cells)]
