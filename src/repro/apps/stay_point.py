"""Application: stay points from trajectories, (200 m, 10 min) thresholds."""

from __future__ import annotations

from repro.apps.common import baseline_select, canonical_id, canonical_key
from repro.core.extractors.trajectory import (
    TrajStayPointExtractor,
    extract_stay_points,
)
from repro.core.selector import Selector
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration

DISTANCE_METERS = 200.0
MIN_DURATION_SECONDS = 600.0


def _normalize(pairs) -> dict[str, list[tuple[float, float]]]:
    out = {}
    for key, points in pairs:
        out[key if isinstance(key, str) else repr(key)] = [
            (round(p.lon, 9), round(p.lat, 9)) for p in points
        ]
    return out


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
) -> dict:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    extractor = TrajStayPointExtractor(DISTANCE_METERS, MIN_DURATION_SECONDS)
    return _normalize(
        (canonical_key(k), v) for k, v in extractor.extract(selected).collect()
    )


def _run_baseline(system: str, ctx, data_dir, spatial, temporal) -> dict:
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    pairs = [
        (
            canonical_id(traj),
            extract_stay_points(traj, DISTANCE_METERS, MIN_DURATION_SECONDS),
        )
        for traj in selected.collect()
    ]
    return _normalize(pairs)


def run_geomesa(ctx, data_dir, spatial, temporal) -> dict:
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal) -> dict:
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
