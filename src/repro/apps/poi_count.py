"""Application: POI count per postal-code area (OSM).

The structure is irregular (jittered polygons), so ST4ML's converter goes
through the broadcast R-tree path — the conversion the paper credits for
the largest Figure 7 gap (39× over GeoMesa).
"""

from __future__ import annotations

from repro.apps.common import baseline_select, group_count, naive_cell_scan
from repro.core.converters.singular_to_collective import Event2SmConverter
from repro.core.extractors.spatialmap import SmFlowExtractor
from repro.core.selector import Selector
from repro.core.structures import SpatialMapStructure
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.geometry.polygon import Polygon
from repro.temporal.duration import Duration


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    areas: list[Polygon],
    partitioner=None,
) -> list[int]:
    """Run this application with the ST4ML pipeline."""
    # OSM has no temporal dimension; records carry the epoch instant.
    selector = Selector(spatial, Duration(-1.0, 1.0), partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    converted = Event2SmConverter(SpatialMapStructure(areas)).convert(selected)
    return SmFlowExtractor().extract(converted).cell_values()


def _run_baseline(system, ctx, data_dir, spatial, areas):
    selected = baseline_select(system, ctx, data_dir, spatial, Duration(-1.0, 1.0))
    cells = [(geom, None) for geom in areas]
    return group_count(
        selected, lambda ev: naive_cell_scan(cells, ev), len(areas)
    )


def run_geomesa(ctx, data_dir, spatial, areas):
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, areas)


def run_geospark(ctx, data_dir, spatial, areas):
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, areas)
