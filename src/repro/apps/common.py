"""Shared plumbing for the three-system application implementations."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.baselines.geomesa_like import GeoMesaLike
from repro.baselines.geospark_like import GeoSparkLike
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.instances.base import Instance
from repro.temporal.duration import Duration


def baseline_select(
    system: str,
    ctx: EngineContext,
    data_dir,
    spatial: Envelope | None,
    temporal: Duration | None,
    num_partitions: int = 8,
) -> RDD:
    """Select with the named baseline's cost model."""
    if system == "geomesa":
        return GeoMesaLike(num_partitions).select(ctx, data_dir, spatial, temporal)
    if system == "geospark":
        return GeoSparkLike(num_partitions).select(ctx, data_dir, spatial, temporal)
    raise ValueError(f"unknown baseline {system!r}")


def canonical_key(key) -> str:
    """System-independent form of a record key (see :func:`canonical_id`)."""
    return key if isinstance(key, str) and _looks_like_repr(key) else repr(key)


def canonical_id(instance: Instance) -> str:
    """System-independent identity of a record.

    ST4ML keeps native data fields while the baselines round-trip them
    through string attributes, so results are compared on ``repr``.
    """
    data = instance.data
    if isinstance(data, str) and data.startswith(("'", '"')) is False:
        # Baseline ids arrive as repr strings already; reprs of reprs would
        # double-quote, so detect the raw case and repr it once.
        pass
    return data if isinstance(data, str) and _looks_like_repr(data) else repr(data)


def _looks_like_repr(s: str) -> bool:
    """Heuristic: baseline ids are reprs (quoted strings or digit strings)."""
    if not s:
        return False
    if s[0] in "'\"" and s[-1] == s[0]:
        return True
    try:
        int(s)
    except ValueError:
        return False
    return True


def naive_cell_scan(
    cells: Sequence[tuple[Geometry | None, Duration | None]],
    instance: Instance,
) -> list[int]:
    """Full scan of every cell against an instance — the baselines'
    allocation strategy (no structure index)."""
    from repro.core.converters.base import _matches_cell

    hits = []
    for i, (geom, dur) in enumerate(cells):
        if _matches_cell(instance, geom, dur):
            hits.append(i)
    return hits


def group_count(
    rdd: RDD,
    key_of: Callable[[Any], list[int]],
    n_keys: int,
) -> list[int]:
    """Per-key record counts via the shuffle-everything ``groupByKey``
    pattern the paper attributes to unoptimized implementations."""
    counted = (
        rdd.flat_map(lambda x: [(k, x) for k in key_of(x)])
        .group_by_key()
        .map(lambda kv: (kv[0], len(kv[1])))
        .collect_as_map()
    )
    return [counted.get(i, 0) for i in range(n_keys)]
