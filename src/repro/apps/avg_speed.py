"""Application: average speed of each trajectory (Porto)."""

from __future__ import annotations

from repro.apps.common import baseline_select, canonical_id, canonical_key
from repro.core.extractors.trajectory import TrajSpeedExtractor
from repro.core.selector import Selector
from repro.engine.context import EngineContext
from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration


def run_st4ml(
    ctx: EngineContext,
    data_dir,
    spatial: Envelope,
    temporal: Duration,
    partitioner=None,
    unit: str = "kmh",
) -> dict[str, float]:
    """Run this application with the ST4ML pipeline."""
    selector = Selector(spatial, temporal, partitioner=partitioner)
    selected = selector.select(ctx, data_dir)
    speeds = TrajSpeedExtractor(unit).extract(selected)
    return {canonical_key(k): v for k, v in speeds.collect()}


def _run_baseline(system: str, ctx, data_dir, spatial, temporal, unit="kmh") -> dict:
    selected = baseline_select(system, ctx, data_dir, spatial, temporal)
    extractor = TrajSpeedExtractor(unit)
    return {
        canonical_id(traj): extractor.speed_of(traj) for traj in selected.collect()
    }


def run_geomesa(ctx, data_dir, spatial, temporal) -> dict:
    """Run this application with the GeoMesa-like baseline."""
    return _run_baseline("geomesa", ctx, data_dir, spatial, temporal)


def run_geospark(ctx, data_dir, spatial, temporal) -> dict:
    """Run this application with the GeoSpark-like baseline."""
    return _run_baseline("geospark", ctx, data_dir, spatial, temporal)
