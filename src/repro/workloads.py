"""Query-workload generation for experiments.

The paper's evaluation drives every system with randomly generated ST
range queries ("each application is performed on 10 randomly-generated ST
ranges").  This module centralizes that generation so benchmarks and
examples share one seeded, documented implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geometry.envelope import Envelope
from repro.temporal.duration import Duration


@dataclass(frozen=True)
class STQuery:
    """One spatio-temporal range query."""

    spatial: Envelope
    temporal: Duration

    def as_tuple(self) -> tuple[Envelope, Duration]:
        """The (spatial, temporal) pair."""
        return (self.spatial, self.temporal)


def anchored_query(
    bbox,
    t_start: float,
    ratio: float,
    days: int = 30,
) -> STQuery:
    """A query covering ``ratio`` of each dimension, anchored at the
    low corner — the Figure 5 sweep's query family."""
    spatial = Envelope(
        bbox.min_lon,
        bbox.min_lat,
        bbox.min_lon + bbox.width * ratio,
        bbox.min_lat + bbox.height * ratio,
    )
    temporal = Duration(t_start, t_start + days * 86_400.0 * ratio)
    return STQuery(spatial, temporal)


def random_queries(
    bbox,
    t_start: float,
    n: int,
    seed: int = 7,
    s_ratio: float = 0.4,
    t_ratio: float = 0.4,
    days: int = 30,
) -> list[STQuery]:
    """``n`` uniformly placed queries with fixed per-dimension coverage.

    ``s_ratio`` / ``t_ratio`` control the spatial and temporal extents
    independently: the paper's Section 4.1 example (weekly window over a
    city-wide area) corresponds to a large ``s_ratio`` with a small
    ``t_ratio``.
    """
    if n < 1:
        raise ValueError("need at least one query")
    if not (0 < s_ratio <= 1 and 0 < t_ratio <= 1):
        raise ValueError("ratios must be in (0, 1]")
    rng = random.Random(seed)
    span_t = days * 86_400.0
    queries = []
    for _ in range(n):
        x0 = rng.uniform(bbox.min_lon, bbox.max_lon - bbox.width * s_ratio)
        y0 = rng.uniform(bbox.min_lat, bbox.max_lat - bbox.height * s_ratio)
        ts = t_start + rng.uniform(0.0, span_t * (1 - t_ratio))
        queries.append(
            STQuery(
                Envelope(
                    x0, y0, x0 + bbox.width * s_ratio, y0 + bbox.height * s_ratio
                ),
                Duration(ts, ts + span_t * t_ratio),
            )
        )
    return queries
