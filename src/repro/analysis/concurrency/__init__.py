"""Concurrency-correctness lint rules (the REPRO2xx family).

The serve daemon made the reproduction a long-lived multi-threaded
system: decoded blocks, selection indexes, the result cache, and the
admission buckets are all mutated concurrently by request threads.  This
package is the static half of the concurrency-correctness layer — AST
rules over the lock discipline those modules rely on:

* :mod:`repro.analysis.concurrency.locks` — the shared lock model: which
  classes own locks, which ``with`` blocks hold them, and the
  lock-acquisition edges implied by nested ``with`` statements;
* :mod:`repro.analysis.concurrency.rules` — the REPRO201–REPRO206 rule
  catalogue, registered into the same :data:`repro.analysis.rules.RULES`
  registry the REPRO1xx closure rules live in, so ``repro lint`` picks
  them up automatically.

The dynamic half — the runtime lock-order sanitizer — lives in
:mod:`repro.engine.lockwatch`.
"""

from repro.analysis.concurrency.locks import (
    LOCK_FACTORIES,
    ClassLockModel,
    FunctionScan,
    ModuleLockScan,
    is_lock_factory_call,
    lock_expr_label,
    lock_scan,
)
from repro.analysis.concurrency import rules as rules  # registers REPRO2xx

__all__ = [
    "LOCK_FACTORIES",
    "ClassLockModel",
    "FunctionScan",
    "ModuleLockScan",
    "is_lock_factory_call",
    "lock_expr_label",
    "lock_scan",
    "rules",
]
