"""The REPRO2xx concurrency rule catalogue.

Registered into the same catalogue as the REPRO1xx closure rules, so
``repro lint`` runs them automatically and ``# repro: noqa[REPRO2xx]``
suppressions work unchanged.

======== ========================== =========================================
id       name                       invariant protected
======== ========================== =========================================
REPRO201 unguarded-shared-mutation  attributes a lock-owning class guards
                                    with ``with self._lock:`` must be
                                    guarded at *every* mutation site
REPRO202 unbalanced-acquire         bare ``acquire()``/``release()`` must
                                    balance and release in a finally block;
                                    prefer ``with lock:``
REPRO203 blocking-call-under-lock   no network / subprocess / sleep /
                                    pickle / queue / disk-decode calls
                                    while a lock is held
REPRO204 lock-order-inconsistency   nested ``with`` acquisitions must
                                    imply one global lock order across the
                                    linted module graph (cycles deadlock)
REPRO205 condition-wait-no-predicate ``Condition.wait`` belongs inside a
                                    ``while predicate`` loop (wakeups can
                                    be spurious or stale)
REPRO206 lock-in-stage-closure      locks must not leak into pickled stage
                                    closures (bridges to the REPRO1xx
                                    capture analysis)
======== ========================== =========================================

The runtime complement — the lock-order sanitizer that watches *actual*
acquisitions — lives in :mod:`repro.engine.lockwatch`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.closures import ModuleAnalysis, dotted_name
from repro.analysis.concurrency.locks import (
    EXEMPT_METHODS,
    LOCK_FACTORIES,
    CallEvent,
    FunctionScan,
    factory_name,
    is_lock_factory_call,
    lock_expr_label,
    lock_scan,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    LintOptions,
    Rule,
    _closure_label,
    _interesting_captures,
    register,
)


@register
class UnguardedSharedMutation(Rule):
    id = "REPRO201"
    name = "unguarded-shared-mutation"
    severity = Severity.ERROR
    description = (
        "An attribute of a lock-owning class is mutated both under the "
        "class's lock and outside it.  The unguarded write races with "
        "every guarded reader/writer — torn updates, lost increments — "
        "and only surfaces under production concurrency.  Guard every "
        "mutation site, or none (constructors and (de)serialization "
        "hooks are exempt: the object is not yet shared there; methods "
        "named *_locked are treated as called with the lock already "
        "held, the CPython convention for split critical sections)."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        scan = lock_scan(module)
        by_class: dict[int, list[FunctionScan]] = {}
        for fn in scan.functions:
            if fn.class_model is not None and fn.class_model.owns_locks:
                by_class.setdefault(id(fn.class_model.node), []).append(fn)
        for fns in by_class.values():
            model = fns[0].class_model
            assert model is not None
            own = model.lock_labels()
            #: attr -> lock label that guards it somewhere
            guarded: dict[str, str] = {}
            relevant = [fn for fn in fns if fn.func.name not in EXEMPT_METHODS]
            for fn in relevant:
                held_by_convention = fn.func.name.endswith("_locked")
                for mut in fn.mutations:
                    if mut.attr in model.lock_attrs:
                        continue
                    held_own = sorted(set(mut.held) & own)
                    if held_by_convention and not held_own:
                        held_own = sorted(own)
                    if held_own and mut.attr not in guarded:
                        guarded[mut.attr] = held_own[0]
            for fn in relevant:
                if fn.func.name.endswith("_locked"):
                    continue  # contractually called with the lock held
                for mut in fn.mutations:
                    if mut.attr not in guarded:
                        continue
                    if set(mut.held) & own:
                        continue
                    yield self.finding(
                        module,
                        mut.node,
                        f"{model.node.name}.{mut.attr} is mutated in "
                        f"{fn.qualname} without holding "
                        f"{guarded[mut.attr]}, but other sites guard it; "
                        f"this write races with every guarded access",
                    )


def _nonblocking_acquire(call: ast.Call) -> bool:
    """True for try-lock idioms: ``acquire(False)`` / ``timeout=`` forms."""
    if len(call.args) >= 2:
        return True  # explicit timeout positional
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and not first.value:
            return True
    for kw in call.keywords:
        if kw.arg == "timeout":
            return True
        if kw.arg == "blocking":
            value = kw.value
            if not (isinstance(value, ast.Constant) and value.value):
                return True
    return False


@register
class UnbalancedAcquire(Rule):
    id = "REPRO202"
    name = "unbalanced-acquire"
    severity = Severity.ERROR
    description = (
        "Bare lock.acquire()/release() calls.  An acquire with no release "
        "in the same function leaves the lock held forever on any early "
        "return or exception; a balanced pair whose release is not inside "
        "a finally block leaks the lock on exceptions.  Use `with lock:` "
        "(or at minimum acquire/try/finally-release).  Non-blocking "
        "acquires (blocking=False / timeout=) are exempt try-lock idioms."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        scan = lock_scan(module)
        for fn in scan.functions:
            acquires: dict[str, list[CallEvent]] = {}
            any_acquire: set[str] = set()
            releases: dict[str, list[CallEvent]] = {}
            for ev in fn.calls:
                func = ev.node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in {"acquire", "release"}:
                    continue
                label = lock_expr_label(module, func.value, fn.class_model)
                if label is None:
                    continue
                if func.attr == "acquire":
                    any_acquire.add(label)
                    if not _nonblocking_acquire(ev.node):
                        acquires.setdefault(label, []).append(ev)
                else:
                    releases.setdefault(label, []).append(ev)
            for label, acqs in sorted(acquires.items()):
                rels = releases.get(label, [])
                if not rels:
                    yield self.finding(
                        module,
                        acqs[0].node,
                        f"{fn.qualname} acquires {label} with no release() "
                        f"in the same function; an exception or early "
                        f"return leaves it held forever — use `with`",
                    )
                elif not all(r.finally_depth > 0 for r in rels):
                    yield self.finding(
                        module,
                        acqs[0].node,
                        f"bare acquire()/release() on {label} in "
                        f"{fn.qualname}: the release is not in a finally "
                        f"block, so an exception leaks the lock — prefer "
                        f"`with`",
                        severity=Severity.WARNING,
                    )
            for label, rels in sorted(releases.items()):
                if label not in any_acquire:
                    yield self.finding(
                        module,
                        rels[0].node,
                        f"{fn.qualname} releases {label} it never acquired "
                        f"in this function; cross-function lock hand-offs "
                        f"hide the pairing from every reader and analyzer",
                        severity=Severity.WARNING,
                    )


#: Exact dotted calls that block.
_BLOCKING_DOTTED = frozenset(
    {"time.sleep", "socket.create_connection", "select.select"}
)
#: Any call into these modules blocks on an external process / network.
_BLOCKING_MODULES = frozenset({"subprocess", "requests", "urllib"})
_PICKLE_MODULES = frozenset({"pickle", "cloudpickle", "marshal", "json"})
_PICKLE_FUNCS = frozenset({"dump", "dumps", "load", "loads"})
_SOCKET_METHODS = frozenset(
    {"recv", "recv_into", "recvfrom", "send", "sendall", "sendto", "accept", "connect"}
)
_THREADISH = ("thread", "worker", "proc")


@register
class BlockingCallUnderLock(Rule):
    id = "REPRO203"
    name = "blocking-call-under-lock"
    severity = Severity.WARNING
    description = (
        "A blocking call (network, subprocess, sleep, queue, (un)pickling "
        "of payloads, disk decode) runs while a lock is held.  Every "
        "other thread needing the lock stalls for the call's full "
        "duration — the classic serve-daemon tail-latency amplifier, and "
        "one unlucky dependency away from a deadlock.  Move the slow "
        "work outside the critical section and re-check state after "
        "re-acquiring."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        scan = lock_scan(module)
        for fn in scan.functions:
            for ev in fn.calls:
                if not ev.held:
                    continue
                reason = self._blocking_reason(module, fn, ev)
                if reason is not None:
                    yield self.finding(
                        module,
                        ev.node,
                        f"{reason} while holding {ev.held[-1]} in "
                        f"{fn.qualname}; move the blocking work outside "
                        f"the critical section",
                    )

    def _blocking_reason(
        self, module: ModuleAnalysis, fn: FunctionScan, ev: CallEvent
    ) -> str | None:
        call = ev.node
        dn = dotted_name(call.func)
        if dn is not None:
            parts = dn.split(".")
            if dn in _BLOCKING_DOTTED:
                return f"{dn}() blocks"
            if parts[0] in _BLOCKING_MODULES:
                return f"{dn}() blocks on an external process/network"
            if (
                parts[0] in _PICKLE_MODULES
                and parts[-1] in _PICKLE_FUNCS
                and len(parts) >= 2
            ):
                return f"{dn}() serializes a payload"
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        recv = dotted_name(call.func.value) or ""
        last = recv.split(".")[-1].lower()
        if attr in _SOCKET_METHODS and recv:
            return f"{recv}.{attr}() blocks on the network"
        if attr in {"get", "put", "take"} and (
            "queue" in last or last == "q" or last.endswith("_q")
        ):
            return f"{recv}.{attr}() can block on the queue"
        if attr == "join" and any(f in last for f in _THREADISH):
            return f"{recv}.join() blocks until the thread exits"
        if attr == "read_block":
            return f"{recv}.read_block() does disk I/O and block decode"
        if attr == "wait":
            label = lock_expr_label(module, call.func.value, fn.class_model)
            if label is not None and label in ev.held:
                return None  # Condition.wait releases the held lock itself
            model = fn.class_model
            if (
                model is not None
                and isinstance(call.func.value, ast.Attribute)
                and isinstance(call.func.value.value, ast.Name)
                and call.func.value.value.id == "self"
            ):
                backing = model.condition_backing.get(call.func.value.attr)
                if backing is not None and model.label(backing) in ev.held:
                    return None  # condition built on the held lock
            return f"{recv}.wait() blocks while the lock is held"
        return None


def _find_path(
    graph: dict[str, set[str]], src: str, dst: str
) -> list[str] | None:
    """Deterministic BFS path ``src -> … -> dst`` over the order graph."""
    if src == dst:
        return [src]
    frontier = [src]
    parents: dict[str, str] = {}
    seen = {src}
    while frontier:
        nxt: list[str] = []
        for node in frontier:
            for succ in sorted(graph.get(node, ())):
                if succ in seen:
                    continue
                parents[succ] = node
                if succ == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(succ)
                nxt.append(succ)
        frontier = nxt
    return None


@register
class LockOrderInconsistency(Rule):
    id = "REPRO204"
    name = "lock-order-inconsistency"
    severity = Severity.ERROR
    program_level = True
    description = (
        "Nested `with` statements acquire locks in conflicting orders "
        "somewhere in the linted module graph.  Two threads running the "
        "two sites concurrently can each hold the lock the other needs — "
        "a deadlock that needs production contention to fire.  Pick one "
        "global order (the runtime sanitizer in repro.engine.lockwatch "
        "checks the same invariant against actual acquisitions)."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        yield from self.check_program([module], options)

    def check_program(
        self, modules: list[ModuleAnalysis], options: LintOptions
    ) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], tuple[ModuleAnalysis, ast.AST, str]] = {}
        for module in modules:
            for fn in lock_scan(module).functions:
                for outer, inner, node in fn.with_edges:
                    graph.setdefault(outer, set()).add(inner)
                    sites.setdefault((outer, inner), (module, node, fn.qualname))
        for (outer, inner), (module, node, qualname) in sorted(
            sites.items(), key=lambda kv: kv[0]
        ):
            back = _find_path(graph, inner, outer)
            if back is None:
                continue
            yield Finding(
                path=module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                severity=self.severity,
                message=(
                    f"inconsistent lock order: {qualname} acquires "
                    f"{outer} -> {inner}, but elsewhere the order is "
                    f"{' -> '.join(back)}; concurrent threads can "
                    f"deadlock"
                ),
            )


@register
class ConditionWaitNoPredicate(Rule):
    id = "REPRO205"
    name = "condition-wait-no-predicate"
    severity = Severity.WARNING
    description = (
        "Condition.wait() outside a `while predicate` loop.  Wakeups can "
        "be spurious, and notify() only means the state *was* true — by "
        "the time the waiter reacquires the lock another thread may have "
        "consumed it.  Re-check the predicate in a while loop (or use "
        "wait_for, which loops internally)."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        scan = lock_scan(module)
        for fn in scan.functions:
            for ev in fn.calls:
                func = ev.node.func
                if not isinstance(func, ast.Attribute) or func.attr != "wait":
                    continue
                if ev.while_depth > 0:
                    continue
                if not self._is_condition(module, fn, func.value):
                    continue
                yield self.finding(
                    module,
                    ev.node,
                    f"Condition.wait() in {fn.qualname} is not inside a "
                    f"while-predicate loop; spurious/stale wakeups will "
                    f"proceed on a false condition",
                )

    @staticmethod
    def _is_condition(
        module: ModuleAnalysis, fn: FunctionScan, receiver: ast.expr
    ) -> bool:
        model = fn.class_model
        if (
            model is not None
            and isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            return model.lock_attrs.get(receiver.attr) == "Condition"
        if isinstance(receiver, ast.Name):
            from repro.analysis.concurrency.locks import _binding_for

            binding = _binding_for(module, receiver)
            if binding is not None:
                return any(factory_name(v) == "Condition" for v in binding.values)
        return False


@register
class LockInStageClosure(Rule):
    id = "REPRO206"
    name = "lock-in-stage-closure"
    severity = Severity.ERROR
    description = (
        "A stage closure captures a lock (or the `self` of a lock-owning "
        "class).  Locks cannot be pickled to process workers, and even "
        "on the thread backend a lock smuggled into tasks synchronizes "
        "nothing across processes — the same hazard class the REPRO1xx "
        "capture rules guard, specialized to synchronization primitives.  "
        "Do the locked work on the driver; report task results through "
        "accumulators or return values."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        scan = lock_scan(module)
        for closure in module.stage_closures:
            for name, binding in _interesting_captures(module, closure):
                if name == "self":
                    model = self._enclosing_lock_class(module, closure.node, scan)
                    if model is not None:
                        yield self.finding(
                            module,
                            closure.node,
                            f"{_closure_label(closure)} captures 'self' of "
                            f"lock-owning class {model.node.name}; its "
                            f"lock(s) ({', '.join(sorted(model.lock_attrs))}) "
                            f"do not pickle and do not synchronize across "
                            f"workers",
                            severity=Severity.WARNING,
                        )
                    continue
                is_lock = (
                    any(is_lock_factory_call(v) for v in binding.values)
                    or any(
                        f in (binding.annotation or "") for f in LOCK_FACTORIES
                    )
                    or name.lower().endswith("lock")
                )
                if is_lock:
                    yield self.finding(
                        module,
                        closure.node,
                        f"{_closure_label(closure)} captures lock {name!r}; "
                        f"locks don't pickle to process workers and guard "
                        f"nothing across processes — keep locking on the "
                        f"driver",
                    )

    @staticmethod
    def _enclosing_lock_class(module, closure_node, scan):
        scope = module.scope_of(closure_node).parent
        while scope is not None:
            if isinstance(scope.node, ast.ClassDef):
                model = scan.class_models.get(id(scope.node))
                if model is not None and model.owns_locks:
                    return model
            scope = scope.parent
        return None
