"""The shared lock model for the REPRO2xx concurrency rules.

Every concurrency rule needs the same three questions answered about a
module:

1. **Which classes own locks?**  (``self._lock = threading.Lock()`` in a
   method body — :func:`build_class_models`)
2. **Which statements run with which locks held?**  (the ``with
   self._lock:`` regions — :class:`FunctionScan` records every call and
   every ``self``-attribute mutation together with the stack of lock
   labels held at that point)
3. **What lock-acquisition order do nested ``with`` statements imply?**
   (:attr:`FunctionScan.with_edges`, merged across the module graph by
   the REPRO204 program-level pass)

Lock identity is a *label*, not an object: ``self._lock`` inside class
``ResultCache`` labels as ``ResultCache._lock`` — which is exactly what
lets the cross-module order analysis merge acquisitions of the same
class's lock from different files.  Local names label as
``<path>::<name>`` so they never collide across modules.

Like the closure analysis this builds on, the model is deliberately
heuristic (lexical, no import resolution): it exists to catch the
common, costly mistakes before a daemon deadlocks under production load.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.closures import (
    MUTATING_METHODS,
    Binding,
    ModuleAnalysis,
    dotted_name,
)

#: Callables whose result is treated as a lock (``with``-able, ordered).
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Module prefixes a dotted lock-factory call may come from.
_LOCK_MODULES = frozenset({"threading", "_thread", "multiprocessing", "mp"})

#: Methods exempt from the guarded-mutation rule: construction and
#: (de)serialization run before/without the object being shared.
EXEMPT_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__del__",
        "__post_init__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__copy__",
        "__deepcopy__",
    }
)


def is_lock_factory_call(node: ast.AST) -> bool:
    """True for ``Lock()`` / ``threading.RLock()`` / ``Condition(...)`` …"""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    parts = name.split(".")
    if parts[-1] not in LOCK_FACTORIES:
        return False
    return len(parts) == 1 or parts[0] in _LOCK_MODULES


def factory_name(node: ast.AST) -> str | None:
    """``"Condition"`` for a ``threading.Condition(...)`` call, else None."""
    if not is_lock_factory_call(node):
        return None
    return (dotted_name(node.func) or "").split(".")[-1]  # type: ignore[union-attr]


def _lockish_name(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


@dataclass
class ClassLockModel:
    """Lock ownership of one class: which attributes hold locks."""

    node: ast.ClassDef
    #: lock attribute name -> factory that created it ("Lock", "Condition", …)
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: Condition attribute -> the lock attribute it wraps
    #: (``self._not_empty = Condition(self._lock)`` records ``_not_empty -> _lock``:
    #: holding either label means holding the same underlying lock).
    condition_backing: dict[str, str] = field(default_factory=dict)

    @property
    def owns_locks(self) -> bool:
        return bool(self.lock_attrs)

    def lock_labels(self) -> set[str]:
        return {f"{self.node.name}.{attr}" for attr in self.lock_attrs}

    def label(self, attr: str) -> str:
        return f"{self.node.name}.{attr}"


def build_class_models(tree: ast.Module) -> dict[int, ClassLockModel]:
    """``id(ClassDef) -> ClassLockModel`` for every class in the module."""
    models: dict[int, ClassLockModel] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = ClassLockModel(node)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                value, targets = sub.value, sub.targets
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                value, targets = sub.value, [sub.target]
            else:
                continue
            factory = factory_name(value)
            if factory is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    model.lock_attrs[target.attr] = factory
                    if factory == "Condition" and value.args:  # type: ignore[union-attr]
                        arg = value.args[0]  # type: ignore[union-attr]
                        if (
                            isinstance(arg, ast.Attribute)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id == "self"
                        ):
                            model.condition_backing[target.attr] = arg.attr
        models[id(node)] = model
    return models


def _binding_for(module: ModuleAnalysis, name_node: ast.Name) -> Binding | None:
    """Resolve a loaded Name to its lexical binding, walking scopes out."""
    scope = module._scope_containing(name_node)
    while scope is not None:
        binding = scope.bindings.get(name_node.id)
        if binding is not None:
            return binding
        scope = scope.parent
    return None


def lock_expr_label(
    module: ModuleAnalysis,
    expr: ast.expr,
    class_model: ClassLockModel | None,
) -> str | None:
    """A stable label when ``expr`` denotes a lock, else ``None``.

    ``self.<attr>`` labels class-qualified (``ResultCache._lock``) so the
    cross-module order graph merges them; everything else is prefixed
    with the module path so local names never collide across files.
    """
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        owner = class_model.node.name if class_model is not None else "self"
        if class_model is not None and expr.attr in class_model.lock_attrs:
            return f"{owner}.{expr.attr}"
        if _lockish_name(expr.attr):
            return f"{owner}.{expr.attr}"
        return None
    if isinstance(expr, ast.Name):
        binding = _binding_for(module, expr)
        if binding is not None and (
            any(is_lock_factory_call(v) for v in binding.values)
            or any(f in (binding.annotation or "") for f in LOCK_FACTORIES)
        ):
            return f"{module.path}::{expr.id}"
        if _lockish_name(expr.id):
            return f"{module.path}::{expr.id}"
        return None
    dn = dotted_name(expr)
    if dn is not None and _lockish_name(dn.split(".")[-1]):
        return f"{module.path}::{dn}"
    return None


@dataclass
class CallEvent:
    """One call expression and the lock context it executes in."""

    node: ast.Call
    held: tuple[str, ...]
    while_depth: int
    finally_depth: int


@dataclass
class MutationEvent:
    """One mutation of a ``self`` attribute (assign / del / mutating call)."""

    node: ast.AST
    attr: str  # the attribute directly on self (``self.a.b = x`` records "a")
    held: tuple[str, ...]


@dataclass
class FunctionScan:
    """Lock-relevant events of one function, with held-lock context."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    class_model: ClassLockModel | None
    qualname: str
    #: (outer_label, inner_label, with-node): inner acquired while outer held.
    with_edges: list[tuple[str, str, ast.With]] = field(default_factory=list)
    #: every lock-holding ``with`` entry: (label, with-node).
    with_labels: list[tuple[str, ast.With]] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    mutations: list[MutationEvent] = field(default_factory=list)


@dataclass
class ModuleLockScan:
    """The full lock model of one module."""

    module: ModuleAnalysis
    class_models: dict[int, ClassLockModel]
    functions: list[FunctionScan]


def _self_attr_of(target: ast.expr) -> str | None:
    """``self.a.b[k]`` -> ``"a"`` (the attribute directly on self)."""
    node = target
    nearest: ast.Attribute | None = None
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if isinstance(node, ast.Attribute):
            nearest = node
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and nearest is not None:
        return nearest.attr
    return None


class _FunctionWalker:
    """Recursive statement walk tracking held locks / while / finally depth.

    Nested function and class definitions are *not* descended into: their
    bodies execute later, when the enclosing ``with`` blocks are long
    gone.  They are scanned separately as functions in their own right.
    """

    def __init__(self, module: ModuleAnalysis, scan: FunctionScan):
        self.module = module
        self.scan = scan
        self.held: list[str] = []
        self.while_depth = 0
        self.finally_depth = 0

    def walk(self) -> None:
        for stmt in self.scan.func.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.While):
            self.while_depth += 1
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self.while_depth -= 1
            return
        if isinstance(node, ast.Try):
            for part in (node.body, node.handlers, node.orelse):
                for child in part:
                    self._visit(child)
            self.finally_depth += 1
            for child in node.finalbody:
                self._visit(child)
            self.finally_depth -= 1
            return
        self._record(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered = 0
        for item in node.items:
            label = lock_expr_label(
                self.module, item.context_expr, self.scan.class_model
            )
            if label is not None:
                for outer in self.held:
                    if outer != label:
                        self.scan.with_edges.append((outer, label, node))
                self.scan.with_labels.append((label, node))
                self.held.append(label)
                entered += 1
            else:
                # Non-lock context expressions (open(...), tracer spans …)
                # still contain calls worth recording under the held stack.
                self._visit(item.context_expr)
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(entered):
            self.held.pop()

    def _record(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self.scan.calls.append(
                CallEvent(node, tuple(self.held), self.while_depth, self.finally_depth)
            )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                attr = _self_attr_of(func.value)
                if attr is not None:
                    self.scan.mutations.append(
                        MutationEvent(node, attr, tuple(self.held))
                    )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Delete)):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                attr = _self_attr_of(target)
                if attr is not None:
                    self.scan.mutations.append(
                        MutationEvent(node, attr, tuple(self.held))
                    )


def lock_scan(module: ModuleAnalysis) -> ModuleLockScan:
    """The (cached) lock model of ``module``.

    Cached on the ModuleAnalysis instance: every REPRO2xx rule asks for
    the same scan, and ``lint_paths`` keeps modules alive for the
    program-level order pass.
    """
    cached = getattr(module, "_lock_scan", None)
    if cached is not None:
        return cached
    class_models = build_class_models(module.tree)
    method_class: dict[int, ClassLockModel] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            model = class_models[id(node)]
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_class[id(stmt)] = model
    functions: list[FunctionScan] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        model = method_class.get(id(node))
        qualname = f"{model.node.name}.{node.name}" if model else node.name
        scan = FunctionScan(func=node, class_model=model, qualname=qualname)
        _FunctionWalker(module, scan).walk()
        functions.append(scan)
    result = ModuleLockScan(module, class_models, functions)
    module._lock_scan = result  # type: ignore[attr-defined]
    return result
