"""Stage-closure discovery and capture analysis.

The engine ships user functions into distributed tasks at well-known call
sites: RDD transformations (``rdd.map(f)``), ``EngineContext.run_stage``,
``shuffle_by`` assigners, and the converter / partitioner hook methods.
This module finds those *stage closures* in an AST and answers the two
questions every distributed-correctness rule needs:

1. **Which functions run inside tasks?**  (:attr:`ModuleAnalysis.stage_closures`)
2. **What does each one capture from enclosing scopes, and what is the
   captured name bound to there?**  (:meth:`ModuleAnalysis.captures`)

The analysis is deliberately heuristic — it resolves names lexically, not
through imports — which is the same trade Spark's ClosureCleaner makes:
catch the common, costly mistakes cheaply, before a job runs.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

#: RDD / context methods whose callable arguments execute inside tasks.
STAGE_METHODS = frozenset(
    {
        "map",
        "filter",
        "flat_map",
        "map_partitions",
        "map_partitions_with_index",
        "key_by",
        "map_values",
        "flat_map_values",
        "group_by",
        "sort_by",
        "shuffle_by",
        "zip_partitions",
        "reduce_by_key",
        "fold_by_key",
        "aggregate_by_key",
        "combine_by_key",
        "reduce",
        "fold",
        "aggregate",
        "foreach",
        "run_stage",
        "top",
        "take_ordered",
    }
)

#: Methods that, when defined on a partitioner / converter / extractor
#: subclass, are themselves executed inside tasks.
HOOK_METHODS = frozenset(
    {"assign", "assign_all", "partition_for", "map_value", "map_value_plus"}
)

#: Base-class name fragments that mark a class's hook methods as
#: task-executed (subclasses of the partitioner / converter contracts).
HOOK_BASE_FRAGMENTS = ("Partitioner", "Converter", "Extractor")

#: Calls that produce an RDD — used to classify captured bindings.  Not
#: simply ``STAGE_METHODS``: actions (``reduce``, ``top``, …) return plain
#: values, and ``sample`` would collide with ``random.Random.sample``.
RDD_PRODUCER_METHODS = frozenset(
    {
        "parallelize",
        "from_partitions",
        "empty_rdd",
        "union",
        "repartition",
        "coalesce",
        "distinct",
        "group_by_key",
        "reduce_by_key",
        "fold_by_key",
        "aggregate_by_key",
        "combine_by_key",
        "map",
        "filter",
        "flat_map",
        "map_partitions",
        "map_partitions_with_index",
        "key_by",
        "map_values",
        "flat_map_values",
        "shuffle_by",
        "sort_by",
        "sort_by_key",
        "persist",
        "cache",
        "checkpoint",
        "select",
        "partition",
    }
)

#: Method names whose invocation on a captured object mutates it.  ``add``
#: is deliberately absent: ``captured.add(x)`` is the accumulator protocol
#: (engine ``Accumulator`` / ``AllocationStats``), the sanctioned way for
#: tasks to report side-band counters.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
        "extendleft",
        "__setitem__",
        "__delitem__",
    }
)

#: Names conventionally bound to the engine context.
CONTEXT_NAMES = frozenset({"ctx", "context", "sc", "engine_ctx", "spark"})

_BUILTIN_NAMES = frozenset(dir(builtins))

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@dataclass
class Binding:
    """One name binding in a scope: where it lives and what it's bound to."""

    name: str
    scope_node: ast.AST  # Module / FunctionDef / Lambda / ClassDef
    values: list[ast.expr] = field(default_factory=list)  # assigned exprs
    is_param: bool = False
    annotation: str | None = None
    is_import: bool = False
    is_function_def: bool = False

    @property
    def in_module_scope(self) -> bool:
        return isinstance(self.scope_node, ast.Module)


@dataclass
class StageClosure:
    """A function the engine will execute inside a task."""

    node: ast.AST  # FunctionDef | Lambda
    name: str
    reason: str  # human-readable: "passed to .map()" / "partitioner hook"
    via_name: bool = False  # resolved through a name reference
    is_inline: bool = True  # lambda or nested def (vs module-level def)


class _Scope:
    """Lexical scope: bindings plus loaded names."""

    def __init__(self, node: ast.AST, parent: "_Scope | None"):
        self.node = node
        self.parent = parent
        self.bindings: dict[str, Binding] = {}
        self.loads: list[ast.Name] = []
        self.globals: set[str] = set()
        self.nonlocals: set[str] = set()

    def bind(self, name: str, **kwargs) -> Binding:
        binding = self.bindings.get(name)
        if binding is None:
            binding = Binding(name=name, scope_node=self.node, **kwargs)
            self.bindings[name] = binding
        else:
            for key, value in kwargs.items():
                if key == "values":
                    binding.values.extend(value)
                elif value:
                    setattr(binding, key, value)
        return binding


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_text(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return None


class _ScopeBuilder(ast.NodeVisitor):
    """One pass over the tree building the scope table."""

    def __init__(self, tree: ast.Module):
        self.scopes: dict[int, _Scope] = {}
        self.module_scope = _Scope(tree, None)
        self.scopes[id(tree)] = self.module_scope
        self._stack: list[_Scope] = [self.module_scope]
        self.visit_body(tree)

    @property
    def current(self) -> _Scope:
        return self._stack[-1]

    def visit_body(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    # -- scope-opening nodes -----------------------------------------------------

    def _enter_function(self, node) -> None:
        name = getattr(node, "name", "<lambda>")
        self.current.bind(name, is_function_def=True, values=[node])
        scope = _Scope(node, self.current)
        self.scopes[id(node)] = scope
        # Decorators / defaults / annotations evaluate in the enclosing scope.
        for deco in getattr(node, "decorator_list", []):
            self.visit(deco)
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self.visit(default)
        self._stack.append(scope)
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.bind(
                arg.arg, is_param=True, annotation=annotation_text(arg.annotation)
            )
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            self.visit(stmt)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.current.bind(node.name, values=[node])
        for base in node.bases + node.keywords:
            self.visit(base.value if isinstance(base, ast.keyword) else base)
        scope = _Scope(node, self.current)
        self.scopes[id(node)] = scope
        self._stack.append(scope)
        for stmt in node.body:
            self.visit(stmt)
        self._stack.pop()

    def _enter_comprehension(self, node) -> None:
        scope = _Scope(node, self.current)
        self.scopes[id(node)] = scope
        # The first iterable evaluates in the enclosing scope.
        first = node.generators[0]
        self.visit(first.iter)
        self._stack.append(scope)
        for target in [g.target for g in node.generators]:
            self._bind_target(target)
        for gen in node.generators[1:]:
            self.visit(gen.iter)
        for gen in node.generators:
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._stack.pop()

    def visit_ListComp(self, node):  # noqa: D102 - trivial dispatch
        self._enter_comprehension(node)

    def visit_SetComp(self, node):
        self._enter_comprehension(node)

    def visit_DictComp(self, node):
        self._enter_comprehension(node)

    def visit_GeneratorExp(self, node):
        self._enter_comprehension(node)

    # -- binding statements ---------------------------------------------------------

    def _bind_target(self, target: ast.expr, value: ast.expr | None = None) -> None:
        if isinstance(target, ast.Name):
            self.current.bind(target.id, values=[value] if value is not None else [])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)
        else:
            self.visit(target)  # attribute / subscript stores load their base

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._bind_target(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        if isinstance(node.target, ast.Name):
            binding = self.current.bind(
                node.target.id,
                values=[node.value] if node.value is not None else [],
            )
            binding.annotation = annotation_text(node.annotation)
        else:
            self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self.current.loads.append(
                ast.copy_location(ast.Name(id=node.target.id, ctx=ast.Load()), node)
            )
            self.current.bind(node.target.id)
        else:
            self.visit(node.target)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.visit(node.value)
        self._bind_target(node.target, node.value)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_target(node.target, None)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.current.bind(name, is_import=True)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.current.bind(alias.asname or alias.name, is_import=True)

    def visit_Global(self, node: ast.Global) -> None:
        self.current.globals.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.current.nonlocals.update(node.names)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.current.bind(node.name)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.current.loads.append(node)
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            self.current.bind(node.id)


class ModuleAnalysis:
    """Everything the rules need to know about one module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        builder = _ScopeBuilder(tree)
        self.scopes = builder.scopes
        self.module_scope = builder.module_scope
        self.stage_closures = self._find_stage_closures()

    # -- stage-closure discovery -----------------------------------------------------

    def _find_stage_closures(self) -> list[StageClosure]:
        closures: dict[int, StageClosure] = {}

        def add(node: ast.AST, name: str, reason: str, via_name: bool) -> None:
            if id(node) in closures:
                return
            is_inline = isinstance(node, ast.Lambda) or not isinstance(
                self._enclosing_scope_node(node), ast.Module
            )
            closures[id(node)] = StageClosure(
                node=node,
                name=name,
                reason=reason,
                via_name=via_name,
                is_inline=is_inline,
            )

        for call in ast.walk(self.tree):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            method = None
            if isinstance(func, ast.Attribute):
                method = func.attr
            elif isinstance(func, ast.Name) and func.id == "run_stage":
                method = "run_stage"
            if method not in STAGE_METHODS:
                continue
            reason = f"passed to .{method}()"
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, _FUNC_NODES):
                    name = getattr(arg, "name", "<lambda>")
                    add(arg, name, reason, via_name=False)
                elif isinstance(arg, ast.Name):
                    resolved = self._resolve_function(arg)
                    if resolved is not None:
                        add(resolved, arg.id, reason, via_name=True)

        for class_node in ast.walk(self.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not self._is_hook_class(class_node):
                continue
            for stmt in class_node.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name in HOOK_METHODS
                ):
                    add(
                        stmt,
                        f"{class_node.name}.{stmt.name}",
                        f"task-executed hook of {class_node.name}",
                        via_name=False,
                    )
        return sorted(closures.values(), key=lambda c: (c.node.lineno, c.node.col_offset))

    @staticmethod
    def _is_hook_class(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = dotted_name(base) or ""
            if any(fragment in name for fragment in HOOK_BASE_FRAGMENTS):
                return True
        return False

    def _resolve_function(self, ref: ast.Name):
        """A Name argument -> the FunctionDef it lexically refers to, if any."""
        scope = self._scope_containing(ref)
        while scope is not None:
            binding = scope.bindings.get(ref.id)
            if binding is not None:
                for value in binding.values:
                    if isinstance(value, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        return value
                return None
            scope = scope.parent
        return None

    # -- scope plumbing ----------------------------------------------------------------

    def _scope_containing(self, node: ast.AST) -> _Scope:
        """The innermost scope whose loads/bindings include this node."""
        for scope in self.scopes.values():
            if node in scope.loads:
                return scope
        return self.module_scope

    def _enclosing_scope_node(self, func_node: ast.AST) -> ast.AST:
        """Nearest enclosing *function or module* scope node.

        Comprehension and class scopes are transparent: a method of a
        module-level class is reachable by pickle just like a module-level
        def, so it is not "inline" for serialization purposes.
        """
        scope = self.scope_of(func_node)
        parent = scope.parent
        while parent is not None and isinstance(
            parent.node, _COMPREHENSION_NODES + (ast.ClassDef,)
        ):
            parent = parent.parent
        return parent.node if parent is not None else self.tree

    def scope_of(self, func_node: ast.AST) -> _Scope:
        return self.scopes[id(func_node)]

    # -- capture analysis ---------------------------------------------------------------

    def captures(self, func_node: ast.AST) -> dict[str, Binding]:
        """Free names of a function, resolved to their defining binding.

        Includes loads made by scopes nested inside the function
        (comprehensions, inner lambdas): anything they reach through this
        function's closure counts as captured by the stage closure.
        """
        root_scope = self.scope_of(func_node)
        result: dict[str, Binding] = {}

        def walk(scope: _Scope, bound_below: set[str]) -> None:
            # global/nonlocal declarations re-expose the outer binding even
            # though the name is assigned locally.
            bound_here = bound_below | (
                set(scope.bindings) - scope.globals - scope.nonlocals
            )
            for load in scope.loads:
                name = load.id
                if name in bound_here or name in _BUILTIN_NAMES:
                    continue
                if name in result:
                    continue
                binding = self._lookup_outward(root_scope, name)
                if binding is not None:
                    result[name] = binding
            for child in self.scopes.values():
                if child.parent is scope:
                    walk(child, bound_here)

        walk(root_scope, set())
        return result

    def _lookup_outward(self, scope: _Scope, name: str) -> Binding | None:
        outer = scope.parent
        while outer is not None:
            if isinstance(outer.node, ast.ClassDef):
                outer = outer.parent  # class scopes are skipped by closures
                continue
            binding = outer.bindings.get(name)
            if binding is not None:
                return binding
            outer = outer.parent
        return None

    # -- mutation scanning ---------------------------------------------------------------

    def mutations_of(self, func_node: ast.AST, name: str) -> list[ast.AST]:
        """Statements inside ``func_node`` that mutate captured ``name``.

        Catches ``name[k] = v``, ``name.attr = v``, ``del name[k]``,
        ``name += ...`` (via global/nonlocal), and mutating method calls
        (``name.append(...)`` — see :data:`MUTATING_METHODS`).
        """
        hits: list[ast.AST] = []
        for node in ast.walk(func_node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id == name and base is not target:
                        hits.append(node)
                    elif (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and target.id == name
                    ):
                        hits.append(node)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                    and node.func.attr in MUTATING_METHODS
                ):
                    hits.append(node)
        return hits
