"""File walking, rule execution, and suppression filtering for ``repro lint``."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.closures import ModuleAnalysis
from repro.analysis.findings import Finding, Severity, Suppressions
from repro.analysis.rules import RULES, LintOptions, Rule, rules_by_id

# Importing the concurrency catalogue registers REPRO2xx into RULES.
import repro.analysis.concurrency.rules  # noqa: F401

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        return sorted(self.parse_errors + self.findings)

    def worst_severity(self) -> Severity | None:
        if not self.all_findings:
            return None
        return max(f.severity for f in self.all_findings)

    def fails_at(self, threshold: Severity) -> bool:
        """True when any finding is at or above ``threshold``."""
        worst = self.worst_severity()
        return worst is not None and worst >= threshold

    @property
    def failed(self) -> bool:
        """True when the run should fail a build (warnings and up)."""
        return self.fails_at(Severity.WARNING)


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[Rule]:
    catalogue = rules_by_id()
    unknown = [
        rid.upper()
        for rid in list(select or []) + list(ignore or [])
        if rid.upper() not in catalogue
    ]
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(sorted(catalogue))}"
        )
    active = list(RULES)
    if select:
        wanted = {rid.upper() for rid in select}
        active = [rule for rule in active if rule.id in wanted]
    if ignore:
        dropped = {rid.upper() for rid in ignore}
        active = [rule for rule in active if rule.id not in dropped]
    return active


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    seen.add(child)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    options: LintOptions | None = None,
) -> list[Finding]:
    """Lint one source string — the importable API the tests build on.

    Program-level rules run here too, in single-module mode, so their
    within-module findings still surface when linting a lone string.
    """
    options = options or LintOptions()
    suppressions = Suppressions(source)
    if suppressions.skip_file:
        return []
    tree = ast.parse(source, filename=path)
    module = ModuleAnalysis(path, source, tree)
    findings: list[Finding] = []
    for rule in _select_rules(select, ignore):
        for finding in rule.check(module, options):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    options: LintOptions | None = None,
) -> LintReport:
    """Lint every .py file under ``paths`` and aggregate a report.

    Module-local rules run per file; ``program_level`` rules (e.g. the
    REPRO204 global lock order) run once over every successfully parsed
    module so they can see cross-file inconsistencies.  Suppressions are
    applied per-file in both passes.
    """
    options = options or LintOptions()
    active = _select_rules(select, ignore)
    local_rules = [rule for rule in active if not rule.program_level]
    program_rules = [rule for rule in active if rule.program_level]
    report = LintReport()
    parsed: list[tuple[ModuleAnalysis, Suppressions]] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.parse_errors.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule="REPRO001",
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        suppressions = Suppressions(source)
        if suppressions.skip_file:
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="REPRO002",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        module = ModuleAnalysis(str(path), source, tree)
        parsed.append((module, suppressions))
        for rule in local_rules:
            for finding in rule.check(module, options):
                if not suppressions.suppresses(finding):
                    report.findings.append(finding)
    if program_rules and parsed:
        modules = [module for module, _ in parsed]
        by_path = {module.path: supp for module, supp in parsed}
        for rule in program_rules:
            for finding in rule.check_program(modules, options):
                suppressions = by_path.get(finding.path)
                if suppressions is None or not suppressions.suppresses(finding):
                    report.findings.append(finding)
    report.findings.sort()
    return report
