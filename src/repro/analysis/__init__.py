"""Static analysis for distributed correctness (``repro lint``).

The engine ships user closures into tasks — across threads today, across
processes on the ``process`` backend — and the classic Spark failure
modes (unpicklable captures, nondeterministic stage functions, mutated
broadcast state, impure partitioners) all surface only at run time,
often only at scale.  This package catches them first:

* :func:`lint_paths` / :func:`lint_source` — run the AST rule catalogue
  over files or source text: the REPRO1xx stage-closure rules
  (:mod:`repro.analysis.rules`) and the REPRO2xx lock-discipline rules
  (:mod:`repro.analysis.concurrency`);
* ``repro lint`` — the CLI front end, with ``--format github`` for CI
  annotations, ``--fail-on`` severity gating, and
  ``# repro: noqa[RULE]`` inline suppressions;
* the runtime complements live in :mod:`repro.engine.sanitizer`
  (``EngineContext(strict=True)``: pickle round-trips and captured-state
  snapshots backstop the closure rules) and
  :mod:`repro.engine.lockwatch` (the lock-order sanitizer backstops the
  concurrency rules against actual acquisitions).
"""

from repro.analysis.findings import Finding, Severity, Suppressions
from repro.analysis.formats import FORMATS, render
from repro.analysis.rules import RULES, LintOptions, Rule, rules_by_id
from repro.analysis.runner import (
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "Severity",
    "Suppressions",
    "FORMATS",
    "render",
    "RULES",
    "Rule",
    "LintOptions",
    "rules_by_id",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
