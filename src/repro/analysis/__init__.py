"""Static analysis for distributed correctness (``repro lint``).

The engine ships user closures into tasks — across threads today, across
processes on the ``process`` backend — and the classic Spark failure
modes (unpicklable captures, nondeterministic stage functions, mutated
broadcast state, impure partitioners) all surface only at run time,
often only at scale.  This package catches them first:

* :func:`lint_paths` / :func:`lint_source` — run the AST rule catalogue
  (:mod:`repro.analysis.rules`) over files or source text;
* ``repro lint`` — the CLI front end, with ``--format github`` for CI
  annotations and ``# repro: noqa[RULE]`` inline suppressions;
* the runtime complement lives in :mod:`repro.engine.sanitizer`
  (``EngineContext(strict=True)``): pickle round-trips and captured-state
  snapshots give the static rules a dynamic backstop.
"""

from repro.analysis.findings import Finding, Severity, Suppressions
from repro.analysis.formats import FORMATS, render
from repro.analysis.rules import RULES, LintOptions, Rule, rules_by_id
from repro.analysis.runner import (
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "Severity",
    "Suppressions",
    "FORMATS",
    "render",
    "RULES",
    "Rule",
    "LintOptions",
    "rules_by_id",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
