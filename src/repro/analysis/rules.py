"""The distributed-correctness rule catalogue.

Each rule targets an invariant the engine's execution model depends on.
The rule ids are stable API — suppression comments and CI configuration
reference them — so new rules append, they never renumber.

======== ======================== =========================================
id       name                     invariant protected
======== ======================== =========================================
REPRO101 capture-engine-context   stage closures must not capture the
                                  EngineContext (workers hold a copy; the
                                  driver's pools/metrics don't travel)
REPRO102 capture-rdd              stage closures must not capture an RDD
                                  (re-entrant evaluation inside a task)
REPRO103 capture-open-handle      open file/socket handles don't pickle
                                  and aren't valid in another process
REPRO104 mutable-capture-mutation task-side writes to captured mutable
                                  state are lost on the process backend;
                                  use the accumulator protocol (``.add``)
REPRO105 unpicklable-closure      lambdas / nested defs need cloudpickle
                                  to reach process workers
REPRO106 nondeterministic-time    wall-clock reads make stage output
                                  depend on when a task ran (breaks the
                                  cross-backend determinism contract)
REPRO107 unseeded-random          unseeded RNGs break run-to-run and
                                  cross-backend determinism
REPRO108 set-iteration-order      set iteration order is salted per
                                  process; workers disagree on it
REPRO109 broadcast-mutation       broadcasts are read-only; mutations are
                                  silently local to one worker
REPRO110 partitioner-contract     ``assign`` must be pure and
                                  ``num_partitions`` positive
======== ======================== =========================================

The REPRO2xx concurrency family (lock discipline, lock-order graphs,
condition predicates) lives in :mod:`repro.analysis.concurrency.rules`
and registers into the same catalogue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analysis.closures import (
    CONTEXT_NAMES,
    HOOK_METHODS,
    MUTATING_METHODS,
    Binding,
    ModuleAnalysis,
    RDD_PRODUCER_METHODS,
    StageClosure,
    dotted_name,
)
from repro.analysis.findings import Finding, Severity


@dataclass
class LintOptions:
    """Knobs shared by every rule.

    ``assume_cloudpickle=None`` autodetects the linting environment —
    the same resolution the process backend performs at runtime.
    """

    assume_cloudpickle: bool | None = None

    def cloudpickle_available(self) -> bool:
        if self.assume_cloudpickle is not None:
            return self.assume_cloudpickle
        try:
            import cloudpickle  # noqa: F401

            return True
        except ImportError:  # pragma: no cover - environment-dependent
            return False


class Rule:
    """One lint rule: stable id, default severity, a ``check`` pass.

    Most rules are module-local: ``check`` sees one :class:`ModuleAnalysis`
    at a time.  Rules whose invariant spans files (e.g. the global lock
    order) set ``program_level = True`` and implement ``check_program``;
    ``lint_paths`` runs those once over every successfully parsed module
    instead of per-file.
    """

    id: str = "REPRO000"
    name: str = "abstract"
    severity: Severity = Severity.WARNING
    description: str = ""
    program_level: bool = False

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        raise NotImplementedError

    def check_program(
        self, modules: list[ModuleAnalysis], options: LintOptions
    ) -> Iterator[Finding]:
        """Cross-module pass; only called when ``program_level`` is True."""
        raise NotImplementedError

    def finding(
        self,
        module: ModuleAnalysis,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=severity or self.severity,
            message=message,
        )


RULES: list[Rule] = []


def register(cls: type[Rule]) -> type[Rule]:
    RULES.append(cls())
    return cls


def _closure_label(closure: StageClosure) -> str:
    return f"stage closure {closure.name!r} ({closure.reason})"


def _interesting_captures(
    module: ModuleAnalysis, closure: StageClosure
) -> Iterable[tuple[str, Binding]]:
    """Captured names worth classifying: skip imports and function defs."""
    for name, binding in module.captures(closure.node).items():
        if binding.is_import or binding.is_function_def:
            continue
        yield name, binding


def _value_call_attr(binding: Binding) -> set[str]:
    """Terminal attribute names of call expressions bound to this name."""
    attrs: set[str] = set()
    for value in binding.values:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            attrs.add(value.func.attr)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            attrs.add(value.func.id)
    return attrs


# -- capture-safety rules --------------------------------------------------------------


@register
class CaptureEngineContext(Rule):
    id = "REPRO101"
    name = "capture-engine-context"
    severity = Severity.ERROR
    description = (
        "A stage closure captures the EngineContext.  Workers receive a "
        "pickled copy whose pools, locks, and metrics are severed from the "
        "driver; anything the task does through it is silently lost.  Pass "
        "plain values into the closure instead."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            for name, binding in _interesting_captures(module, closure):
                annotated = binding.annotation or ""
                bound_to_ctx = any(
                    isinstance(v, ast.Call)
                    and (dotted_name(v.func) or "").split(".")[-1] == "EngineContext"
                    for v in binding.values
                )
                if (
                    "EngineContext" in annotated
                    or bound_to_ctx
                    or name in CONTEXT_NAMES
                ):
                    yield self.finding(
                        module,
                        closure.node,
                        f"{_closure_label(closure)} captures engine context "
                        f"{name!r}; pass plain values instead",
                    )


@register
class CaptureRDD(Rule):
    id = "REPRO102"
    name = "capture-rdd"
    severity = Severity.ERROR
    description = (
        "A stage closure captures an RDD.  Evaluating an RDD from inside a "
        "task re-enters the engine (nested stages, or a full re-computation "
        "per worker on the process backend).  Collect or broadcast the data "
        "first."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            for name, binding in _interesting_captures(module, closure):
                annotated = binding.annotation or ""
                looks_like_rdd = (
                    "RDD" in annotated
                    or name == "rdd"
                    or name.endswith("_rdd")
                    or bool(_value_call_attr(binding) & RDD_PRODUCER_METHODS)
                )
                if looks_like_rdd:
                    yield self.finding(
                        module,
                        closure.node,
                        f"{_closure_label(closure)} captures RDD {name!r}; "
                        f"collect() or broadcast the data before the stage",
                    )


@register
class CaptureOpenHandle(Rule):
    id = "REPRO103"
    name = "capture-open-handle"
    severity = Severity.ERROR
    description = (
        "A stage closure captures an open file handle.  Handles don't "
        "pickle and are meaningless in another process; open the file "
        "inside the task, or read the contents up front."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            for name, binding in _interesting_captures(module, closure):
                opened = any(
                    isinstance(v, ast.Call)
                    and (dotted_name(v.func) or "").split(".")[-1] == "open"
                    for v in binding.values
                )
                if opened:
                    yield self.finding(
                        module,
                        closure.node,
                        f"{_closure_label(closure)} captures open handle "
                        f"{name!r}; open it inside the task instead",
                    )


_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque", "bytearray"}
)


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = (dotted_name(value.func) or "").split(".")[-1]
        return name in _MUTABLE_FACTORIES
    return False


@register
class MutableCaptureMutation(Rule):
    id = "REPRO104"
    name = "mutable-capture-mutation"
    severity = Severity.ERROR
    description = (
        "A stage closure mutates captured state.  On the process backend "
        "the mutation happens in a worker's copy and never reaches the "
        "driver; on any backend it makes task output order-dependent.  "
        "Report side-band results through the accumulator protocol "
        "(objects exposing .add(), e.g. engine Accumulator) or return them "
        "from the task.  Capturing module-level mutable state read-only is "
        "reported as a warning: module reloads and workers see different "
        "copies."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            for name, binding in _interesting_captures(module, closure):
                mutations = module.mutations_of(closure.node, name)
                if mutations:
                    yield self.finding(
                        module,
                        mutations[0],
                        f"{_closure_label(closure)} mutates captured "
                        f"{name!r}; the write is lost on the process backend "
                        f"— use an accumulator (.add) or return the value",
                    )
                elif (
                    binding.in_module_scope
                    and not name.isupper()
                    and any(_is_mutable_literal(v) for v in binding.values)
                ):
                    yield self.finding(
                        module,
                        closure.node,
                        f"{_closure_label(closure)} captures module-level "
                        f"mutable {name!r}; workers each see their own copy",
                        severity=Severity.WARNING,
                    )


@register
class UnpicklableClosure(Rule):
    id = "REPRO105"
    name = "unpicklable-closure"
    severity = Severity.WARNING
    description = (
        "A lambda or nested function is shipped to a stage, but cloudpickle "
        "is not available: stdlib pickle only serializes module-level "
        "callables, so the process backend will raise "
        "TaskSerializationError.  Hoist the function to module scope or "
        "install cloudpickle."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        if options.cloudpickle_available():
            return
        for closure in module.stage_closures:
            if closure.is_inline:
                yield self.finding(
                    module,
                    closure.node,
                    f"{_closure_label(closure)} is a lambda/nested def and "
                    f"cloudpickle is unavailable; the process backend cannot "
                    f"ship it — hoist it to module level",
                )


# -- determinism rules ------------------------------------------------------------------

_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
    }
)

_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


def _nondeterministic_call(call: ast.Call) -> str | None:
    """A human-readable reason when a call is a nondeterminism hazard."""
    dn = dotted_name(call.func)
    if dn is None:
        return None
    parts = dn.split(".")
    if dn in _TIME_CALLS:
        return f"{dn}() reads the wall clock"
    if parts[-1] in {"now", "utcnow", "today"} and any(
        p in {"datetime", "date"} for p in parts[:-1]
    ):
        return f"{dn}() reads the wall clock"
    if parts[0] == "random" and len(parts) == 2:
        if parts[1] in _RANDOM_FUNCS:
            return f"{dn}() uses the unseeded module-level RNG"
        if parts[1] in {"Random", "SystemRandom"} and not call.args:
            return f"{dn}() without a seed is nondeterministic"
        return None  # stdlib random fully handled; not the numpy chain
    if "random" in parts[:-1]:  # numpy.random.* / np.random.*
        if parts[-1] == "default_rng":
            return None if call.args else f"{dn}() without a seed is nondeterministic"
        if parts[-1] == "seed":
            return None
        return f"{dn}() uses numpy's unseeded global RNG"
    if dn in {"uuid.uuid4", "os.urandom"} or parts[0] == "secrets":
        return f"{dn}() is entropy-based"
    return None


class _DeterminismRule(Rule):
    """Shared scan: nondeterministic calls inside stage closures."""

    predicate: Callable[[str], bool] = staticmethod(lambda reason: True)

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            for node in ast.walk(closure.node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _nondeterministic_call(node)
                if reason is not None and self.predicate(reason):
                    yield self.finding(
                        module,
                        node,
                        f"{_closure_label(closure)}: {reason}; stage output "
                        f"must be a pure function of the partition",
                    )


@register
class NondeterministicTime(_DeterminismRule):
    id = "REPRO106"
    name = "nondeterministic-time"
    severity = Severity.WARNING
    description = (
        "A stage function reads the wall clock.  Task output then depends "
        "on when (and on which worker) the task ran — retries, speculative "
        "copies, and different backends will disagree.  Compute timestamps "
        "on the driver and pass them in."
    )
    predicate = staticmethod(lambda reason: "wall clock" in reason)


@register
class UnseededRandom(_DeterminismRule):
    id = "REPRO107"
    name = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "A stage function draws from an unseeded RNG.  Use "
        "random.Random(seed derived from the partition index), the pattern "
        "RDD.sample uses, so retries and backends agree."
    )
    predicate = staticmethod(lambda reason: "wall clock" not in reason)


def _is_setish(node: ast.expr, set_names: frozenset[str] = frozenset()) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return isinstance(node, ast.Name) and node.id in set_names


def _setish_names(closure_node: ast.AST) -> frozenset[str]:
    """Local names that are only ever assigned set-valued expressions."""
    setish: set[str] = set()
    other: set[str] = set()
    for node in ast.walk(closure_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            (setish if _is_setish(node.value) else other).add(node.targets[0].id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    other.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in args.args + args.posonlyargs + args.kwonlyargs:
                other.add(arg.arg)
    return frozenset(setish - other)


@register
class SetIterationOrder(Rule):
    id = "REPRO108"
    name = "set-iteration-order"
    severity = Severity.WARNING
    description = (
        "A stage function iterates a set.  Set order depends on the "
        "per-process hash salt, so two workers (or a retry) can emit "
        "elements in different orders.  Iterate sorted(...) instead."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for closure in module.stage_closures:
            set_names = _setish_names(closure.node)
            for node in ast.walk(closure.node):
                hit: ast.AST | None = None
                if isinstance(node, ast.For) and _is_setish(node.iter, set_names):
                    hit = node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if _is_setish(gen.iter, set_names):
                            hit = gen.iter
                            break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in {"list", "tuple", "enumerate", "iter", "next"}
                    and node.args
                    and _is_setish(node.args[0], set_names)
                ):
                    hit = node
                if hit is not None:
                    yield self.finding(
                        module,
                        hit,
                        f"{_closure_label(closure)} iterates a set; order is "
                        f"process-dependent — use sorted(...) for a stable "
                        f"order",
                    )


# -- shared-state rules -------------------------------------------------------------


@register
class BroadcastMutation(Rule):
    id = "REPRO109"
    name = "broadcast-mutation"
    severity = Severity.ERROR
    description = (
        "A broadcast value is mutated.  Broadcasts are read-only shared "
        "state: on the process backend each worker mutates its private "
        "copy, so tasks silently diverge.  Build the final value before "
        "broadcasting."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        broadcast_names = self._broadcast_names(module)
        if not broadcast_names:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # b.value.append(...) / b.value.update(...)
                inner = node.func.value
                if (
                    node.func.attr in (MUTATING_METHODS | {"add"})
                    and isinstance(inner, ast.Attribute)
                    and inner.attr == "value"
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id in broadcast_names
                ):
                    yield self.finding(
                        module,
                        node,
                        f"broadcast {inner.value.id!r} is mutated via "
                        f".value.{node.func.attr}(); broadcasts are read-only",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        if (
                            isinstance(base, ast.Attribute)
                            and base.attr == "value"
                            and isinstance(base.value, ast.Name)
                            and base.value.id in broadcast_names
                        ):
                            yield self.finding(
                                module,
                                node,
                                f"broadcast {base.value.id!r}.value is "
                                f"assigned to; broadcasts are read-only",
                            )
                            break
                        base = base.value

    @staticmethod
    def _broadcast_names(module: ModuleAnalysis) -> set[str]:
        names: set[str] = set()
        for scope in module.scopes.values():
            for name, binding in scope.bindings.items():
                annotated = binding.annotation or ""
                if "Broadcast" in annotated or any(
                    isinstance(v, ast.Call)
                    and isinstance(v.func, ast.Attribute)
                    and v.func.attr == "broadcast"
                    for v in binding.values
                ):
                    names.add(name)
        return names


@register
class PartitionerContract(Rule):
    id = "REPRO110"
    name = "partitioner-contract"
    severity = Severity.ERROR
    description = (
        "A partitioner's assigner must be pure (no writes to self — "
        "assignment runs once per record, concurrently, possibly in "
        "another process) and num_partitions must be positive.  Violations "
        "break the shuffle routing the partition() lifecycle relies on."
    )

    def check(self, module: ModuleAnalysis, options: LintOptions) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not any(
                "Partitioner" in (dotted_name(b) or "") for b in class_node.bases
            ):
                continue
            for stmt in class_node.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                if stmt.name in HOOK_METHODS:
                    yield from self._check_pure_assigner(module, class_node, stmt)
                if stmt.name == "num_partitions":
                    yield from self._check_bounds(module, class_node, stmt)

    def _check_pure_assigner(
        self, module: ModuleAnalysis, class_node: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id == "self"
                        and base is not target
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{class_node.name}.{method.name} writes to self; "
                            f"assigners run per-record and concurrently — "
                            f"they must be pure",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    isinstance(node.func.value, ast.Attribute)
                    and isinstance(node.func.value.value, ast.Name)
                    and node.func.value.value.id == "self"
                    and node.func.attr in MUTATING_METHODS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"{class_node.name}.{method.name} mutates self."
                        f"{node.func.value.attr} via .{node.func.attr}(); "
                        f"assigners must be pure",
                    )

    def _check_bounds(
        self, module: ModuleAnalysis, class_node: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and node.value.value < 1
            ):
                yield self.finding(
                    module,
                    node,
                    f"{class_node.name}.num_partitions returns "
                    f"{node.value.value}; a partitioner must expose at "
                    f"least one partition",
                )


def rules_by_id() -> dict[str, Rule]:
    """Stable id -> rule instance for selection / suppression validation."""
    return {rule.id: rule for rule in RULES}
