"""Finding and severity model for ``repro lint``.

A :class:`Finding` is one diagnostic anchored to a source location.  The
linter's contract mirrors the engine's metrics philosophy: findings are
plain data, fully ordered, and rendering (text / JSON / GitHub
annotations) is a separate concern (:mod:`repro.analysis.formats`).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: rule, location, message.

    Ordering is (path, line, col, rule) so reports are stable regardless
    of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str = field(compare=True)
    severity: Severity = field(compare=False, default=Severity.WARNING)
    message: str = field(compare=False, default="")

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }


#: Inline suppression: ``# repro: noqa`` silences every finding on the
#: line; ``# repro: noqa[R101,R204]`` silences only the named rules.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s-]+)\])?")

#: File-level opt-out, honored within the first ten lines of a file.
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")


class Suppressions:
    """Per-file suppression state parsed from source comments."""

    def __init__(self, source: str):
        lines = source.splitlines()
        self.skip_file = any(
            _SKIP_FILE_RE.search(line) for line in lines[:10]
        )
        #: line number (1-based) -> None (all rules) or set of rule ids
        self.by_line: dict[int, set[str] | None] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            if match.group(1) is None:
                self.by_line[lineno] = None
            else:
                rules = {
                    token.strip().upper()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                existing = self.by_line.get(lineno)
                if existing is None and lineno in self.by_line:
                    continue  # blanket noqa already covers the line
                self.by_line[lineno] = (existing or set()) | rules

    def suppresses(self, finding: Finding) -> bool:
        """True when a noqa comment covers this finding."""
        if self.skip_file:
            return True
        if finding.line not in self.by_line:
            return False
        rules = self.by_line[finding.line]
        return rules is None or finding.rule.upper() in rules
