"""Rendering lint reports: human text, JSON, and GitHub CI annotations."""

from __future__ import annotations

import json

from repro.analysis.findings import Severity
from repro.analysis.runner import LintReport

FORMATS = ("text", "json", "github")


def render(report: LintReport, fmt: str = "text") -> str:
    """Render a report in one of :data:`FORMATS`."""
    if fmt == "text":
        return _render_text(report)
    if fmt == "json":
        return _render_json(report)
    if fmt == "github":
        return _render_github(report)
    raise ValueError(f"unknown format {fmt!r}; choose from {', '.join(FORMATS)}")


def _render_text(report: LintReport) -> str:
    lines = [
        f"{f.location}: {f.severity.label.upper()} {f.rule} {f.message}"
        for f in report.all_findings
    ]
    counts = {
        severity: sum(1 for f in report.all_findings if f.severity == severity)
        for severity in Severity
    }
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.INFO]} note(s)"
    )
    return "\n".join(lines + [summary])


def _render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "files_checked": report.files_checked,
            "findings": [f.as_dict() for f in report.all_findings],
        },
        indent=2,
    )


#: GitHub workflow-command level per severity.
_GITHUB_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "notice",
}


def _render_github(report: LintReport) -> str:
    """``::error file=…,line=…`` workflow commands, one per finding."""
    lines = []
    for f in report.all_findings:
        message = f"{f.rule} {f.message}".replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::{_GITHUB_LEVEL[f.severity]} file={f.path},line={f.line},"
            f"col={f.col},title={f.rule}::{message}"
        )
    return "\n".join(lines)
