"""Polyline geometry."""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.geometry.base import Geometry
from repro.geometry.distance import point_segment_distance, segments_intersect
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point


class LineString(Geometry):
    """An open polyline defined by two or more vertices.

    The paper uses linestrings for road segments (spatial-map cells of the
    road-network raster) and for the database representation of raw
    trajectories.
    """

    __slots__ = ("coords",)

    def __init__(self, coords: Sequence[tuple[float, float]]):
        pts = tuple((float(x), float(y)) for x, y in coords)
        if len(pts) < 2:
            raise ValueError("a linestring needs at least two vertices")
        object.__setattr__(self, "coords", pts)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LineString is immutable")

    @property
    def envelope(self) -> Envelope:
        """The minimum bounding rectangle."""
        return Envelope.of_points(self.coords)

    def centroid(self) -> Point:
        """Length-weighted midpoint of the polyline."""
        total = self.length
        if total == 0.0:
            x, y = self.coords[0]
            return Point(x, y)
        half = total / 2.0
        walked = 0.0
        for (x1, y1), (x2, y2) in self.segments():
            seg = math.hypot(x2 - x1, y2 - y1)
            if walked + seg >= half and seg > 0.0:
                t = (half - walked) / seg
                return Point(x1 + t * (x2 - x1), y1 + t * (y2 - y1))
            walked += seg
        x, y = self.coords[-1]
        return Point(x, y)

    @property
    def length(self) -> float:
        """Planar length of the polyline."""
        return sum(
            math.hypot(x2 - x1, y2 - y1) for (x1, y1), (x2, y2) in self.segments()
        )

    def segments(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        """Consecutive vertex pairs."""
        for i in range(len(self.coords) - 1):
            yield (self.coords[i], self.coords[i + 1])

    def intersects(self, other: Geometry) -> bool:
        """True when the two geometries share any point."""
        from repro.geometry.polygon import Polygon

        if isinstance(other, Point):
            return self.distance_to(other) == 0.0
        if isinstance(other, Envelope):
            if not self.envelope.intersects_envelope(other):
                return False
            # Any vertex inside the envelope, or any segment crossing an edge.
            for x, y in self.coords:
                if other.contains_point(x, y):
                    return True
            corners = list(other.corners())
            edges = [(corners[i], corners[(i + 1) % 4]) for i in range(4)]
            for seg in self.segments():
                for edge in edges:
                    if segments_intersect(seg[0], seg[1], edge[0], edge[1]):
                        return True
            return False
        if isinstance(other, LineString):
            if not self.envelope.intersects_envelope(other.envelope):
                return False
            for seg_a in self.segments():
                for seg_b in other.segments():
                    if segments_intersect(seg_a[0], seg_a[1], seg_b[0], seg_b[1]):
                        return True
            return False
        if isinstance(other, Polygon):
            return other.intersects(self)
        raise TypeError(f"unsupported geometry type: {type(other).__name__}")

    def distance_to(self, other: Geometry) -> float:
        """Minimum planar distance to the other geometry."""
        if isinstance(other, Point):
            return min(
                point_segment_distance(other.x, other.y, x1, y1, x2, y2)
                for (x1, y1), (x2, y2) in self.segments()
            )
        if isinstance(other, LineString):
            if self.intersects(other):
                return 0.0
            best = math.inf
            for x, y in self.coords:
                best = min(best, other.distance_to(Point(x, y)))
            for x, y in other.coords:
                best = min(best, self.distance_to(Point(x, y)))
            return best
        if isinstance(other, Envelope):
            if self.intersects(other):
                return 0.0
            return min(Point(x, y).distance_to(other) for x, y in self.coords)
        return other.distance_to(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        return self.coords == other.coords

    def __hash__(self) -> int:
        return hash(self.coords)

    def __repr__(self) -> str:
        return f"LineString({len(self.coords)} vertices)"

    def __getstate__(self):
        return self.coords

    def __setstate__(self, state):
        object.__setattr__(self, "coords", state)
