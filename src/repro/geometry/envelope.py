"""Axis-aligned minimum bounding rectangles (MBRs)."""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.geometry.base import Geometry


class Envelope(Geometry):
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Envelopes are the workhorse of the whole system: R-tree nodes, partition
    boundaries, raster cells, and query ranges are all envelopes.  They are
    closed on every side, matching the paper's treatment of partition
    boundaries (a record on a shared boundary overlaps both partitions and
    is duplicated only when the partitioner is run with ``duplicate=True``).
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if math.isnan(min_x) or math.isnan(min_y) or math.isnan(max_x) or math.isnan(max_y):
            raise ValueError("envelope coordinates must not be NaN")
        if min_x > max_x or min_y > max_y:
            raise ValueError(
                f"invalid envelope: ({min_x}, {min_y}, {max_x}, {max_y}); "
                "min must not exceed max"
            )
        object.__setattr__(self, "min_x", float(min_x))
        object.__setattr__(self, "min_y", float(min_y))
        object.__setattr__(self, "max_x", float(max_x))
        object.__setattr__(self, "max_y", float(max_y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Envelope is immutable")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of_points(cls, coords: Iterable[tuple[float, float]]) -> "Envelope":
        """Build the tightest envelope covering an iterable of xy pairs."""
        iterator = iter(coords)
        try:
            x0, y0 = next(iterator)
        except StopIteration:
            raise ValueError("cannot build an envelope from zero points") from None
        min_x = max_x = x0
        min_y = max_y = y0
        for x, y in iterator:
            min_x = min(min_x, x)
            max_x = max(max_x, x)
            min_y = min(min_y, y)
            max_y = max(max_y, y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def merge_all(cls, envelopes: Iterable["Envelope"]) -> "Envelope":
        """Return the union MBR of a non-empty iterable of envelopes."""
        iterator = iter(envelopes)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot merge zero envelopes") from None
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for env in iterator:
            min_x = min(min_x, env.min_x)
            min_y = min(min_y, env.min_y)
            max_x = max(max_x, env.max_x)
            max_y = max(max_y, env.max_y)
        return cls(min_x, min_y, max_x, max_y)

    # -- core geometry protocol ----------------------------------------------

    @property
    def envelope(self) -> "Envelope":
        """The minimum bounding rectangle."""
        return self

    @property
    def is_point(self) -> bool:
        """An envelope is its own MBR, so the exact pass is never needed."""
        return True

    def centroid(self):
        """A representative central point."""
        from repro.geometry.point import Point

        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def intersects(self, other: Geometry) -> bool:
        """True when the two geometries share any point."""
        if isinstance(other, Envelope):
            return self.intersects_envelope(other)
        return other.intersects(self)

    def intersects_envelope(self, other: "Envelope") -> bool:
        """Fast rectangle/rectangle overlap test (boundaries included)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when (x, y) lies inside or on the boundary."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_envelope(self, other: "Envelope") -> bool:
        """True when the other rectangle lies fully inside."""
        return (
            self.min_x <= other.min_x
            and self.max_x >= other.max_x
            and self.min_y <= other.min_y
            and self.max_y >= other.max_y
        )

    def distance_to(self, other: Geometry) -> float:
        """Minimum planar distance to the other geometry."""
        if isinstance(other, Envelope):
            dx = max(other.min_x - self.max_x, self.min_x - other.max_x, 0.0)
            dy = max(other.min_y - self.max_y, self.min_y - other.max_y, 0.0)
            return math.hypot(dx, dy)
        return other.distance_to(self)

    # -- measurement and manipulation ------------------------------------------

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Enclosed area."""
        return self.width * self.height

    def merge(self, other: "Envelope") -> "Envelope":
        """Return the smallest envelope covering both operands."""
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Envelope") -> "Envelope | None":
        """Return the overlap region, or ``None`` when the MBRs are disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Envelope(min_x, min_y, max_x, max_y)

    def expanded(self, margin: float) -> "Envelope":
        """Return a copy grown by ``margin`` on every side."""
        return Envelope(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def split(self, nx: int, ny: int) -> list["Envelope"]:
        """Tile this envelope into an ``nx * ny`` regular grid of cells.

        Cells are emitted row-major (y-outer, x-inner) so that regular
        structures built from the result have a predictable cell order,
        which the regular-structure conversion shortcut relies on.
        """
        if nx <= 0 or ny <= 0:
            raise ValueError("grid dimensions must be positive")
        dx = self.width / nx
        dy = self.height / ny
        cells = []
        for j in range(ny):
            for i in range(nx):
                cells.append(
                    Envelope(
                        self.min_x + i * dx,
                        self.min_y + j * dy,
                        self.min_x + (i + 1) * dx,
                        self.min_y + (j + 1) * dy,
                    )
                )
        return cells

    def corners(self) -> Iterator[tuple[float, float]]:
        """The four corners, counter-clockwise from the minimum."""
        yield (self.min_x, self.min_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)
        yield (self.min_x, self.max_y)

    def to_polygon(self):
        """The rectangle as a 4-vertex Polygon."""
        from repro.geometry.polygon import Polygon

        return Polygon(list(self.corners()))

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.max_x == other.max_x
            and self.max_y == other.max_y
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    def __repr__(self) -> str:
        return f"Envelope({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"

    def __getstate__(self):
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def __setstate__(self, state):
        min_x, min_y, max_x, max_y = state
        object.__setattr__(self, "min_x", min_x)
        object.__setattr__(self, "min_y", min_y)
        object.__setattr__(self, "max_x", max_x)
        object.__setattr__(self, "max_y", max_y)
