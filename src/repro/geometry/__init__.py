"""2-d computational geometry substrate.

ST4ML (the Scala original) builds on the JTS topology suite for its spatial
types and predicates.  This package is the pure-Python stand-in: it provides
the small slice of computational geometry the paper actually exercises —
points, polylines, polygons, minimum bounding rectangles (envelopes), the
``intersects`` / ``contains`` / ``distance`` predicates, and both planar and
great-circle metrics.

All geometries are immutable value objects so they can be hashed, shuffled
between engine partitions, and pickled to the on-disk store without
defensive copying.
"""

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.geometry.linestring import LineString
from repro.geometry.polygon import Polygon
from repro.geometry.distance import (
    euclidean_distance,
    haversine_distance,
    point_segment_distance,
    project_point_to_segment,
    EARTH_RADIUS_METERS,
    METERS_PER_DEGREE_LAT,
    meters_per_degree_lon,
)

__all__ = [
    "Geometry",
    "Envelope",
    "Point",
    "LineString",
    "Polygon",
    "euclidean_distance",
    "haversine_distance",
    "point_segment_distance",
    "project_point_to_segment",
    "EARTH_RADIUS_METERS",
    "METERS_PER_DEGREE_LAT",
    "meters_per_degree_lon",
]
