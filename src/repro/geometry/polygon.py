"""Simple polygon geometry."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.geometry.base import Geometry
from repro.geometry.distance import point_segment_distance, segments_intersect
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point


class Polygon(Geometry):
    """A simple (non-self-intersecting, hole-free) polygon.

    The paper uses polygons for districts, postal-code areas, and raster
    cells.  The exterior ring is stored without a closing duplicate vertex;
    ``__init__`` normalizes inputs that repeat the first vertex at the end.
    """

    __slots__ = ("ring",)

    def __init__(self, ring: Sequence[tuple[float, float]]):
        pts = [(float(x), float(y)) for x, y in ring]
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError("a polygon needs at least three distinct vertices")
        object.__setattr__(self, "ring", tuple(pts))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polygon is immutable")

    @classmethod
    def from_envelope(cls, env: Envelope) -> "Polygon":
        """Polygon from a rectangle's corners."""
        return cls(list(env.corners()))

    @property
    def envelope(self) -> Envelope:
        """The minimum bounding rectangle."""
        return Envelope.of_points(self.ring)

    def edges(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        """Ring edges, including the closing edge."""
        n = len(self.ring)
        for i in range(n):
            yield (self.ring[i], self.ring[(i + 1) % n])

    @property
    def area(self) -> float:
        """Unsigned shoelace area."""
        acc = 0.0
        for (x1, y1), (x2, y2) in self.edges():
            acc += x1 * y2 - x2 * y1
        return abs(acc) / 2.0

    def centroid(self) -> Point:
        """Area-weighted centroid; degenerates to the vertex mean for
        zero-area rings."""
        acc = 0.0
        cx = 0.0
        cy = 0.0
        for (x1, y1), (x2, y2) in self.edges():
            cross = x1 * y2 - x2 * y1
            acc += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        if acc == 0.0:
            xs = [x for x, _ in self.ring]
            ys = [y for _, y in self.ring]
            return Point(sum(xs) / len(xs), sum(ys) / len(ys))
        return Point(cx / (3.0 * acc), cy / (3.0 * acc))

    def contains_point(self, x: float, y: float) -> bool:
        """Even-odd ray casting; boundary points count as inside.

        Boundary inclusiveness matters for conversion correctness: an event
        exactly on a district border must land in at least one cell, never
        in zero.
        """
        for (x1, y1), (x2, y2) in self.edges():
            if point_segment_distance(x, y, x1, y1, x2, y2) == 0.0:
                return True
        inside = False
        for (x1, y1), (x2, y2) in self.edges():
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
        return inside

    def intersects(self, other: Geometry) -> bool:
        """True when the two geometries share any point."""
        if isinstance(other, Point):
            return self.contains_point(other.x, other.y)
        if isinstance(other, Envelope):
            if not self.envelope.intersects_envelope(other):
                return False
            for x, y in self.ring:
                if other.contains_point(x, y):
                    return True
            for x, y in other.corners():
                if self.contains_point(x, y):
                    return True
            corners = list(other.corners())
            rect_edges = [(corners[i], corners[(i + 1) % 4]) for i in range(4)]
            for edge in self.edges():
                for rect_edge in rect_edges:
                    if segments_intersect(edge[0], edge[1], rect_edge[0], rect_edge[1]):
                        return True
            return False
        if isinstance(other, LineString):
            if not self.envelope.intersects_envelope(other.envelope):
                return False
            for x, y in other.coords:
                if self.contains_point(x, y):
                    return True
            for seg in other.segments():
                for edge in self.edges():
                    if segments_intersect(seg[0], seg[1], edge[0], edge[1]):
                        return True
            return False
        if isinstance(other, Polygon):
            if not self.envelope.intersects_envelope(other.envelope):
                return False
            for x, y in other.ring:
                if self.contains_point(x, y):
                    return True
            for x, y in self.ring:
                if other.contains_point(x, y):
                    return True
            for edge_a in self.edges():
                for edge_b in other.edges():
                    if segments_intersect(edge_a[0], edge_a[1], edge_b[0], edge_b[1]):
                        return True
            return False
        raise TypeError(f"unsupported geometry type: {type(other).__name__}")

    def distance_to(self, other: Geometry) -> float:
        """Minimum planar distance to the other geometry."""
        if isinstance(other, Point):
            if self.contains_point(other.x, other.y):
                return 0.0
            return min(
                point_segment_distance(other.x, other.y, x1, y1, x2, y2)
                for (x1, y1), (x2, y2) in self.edges()
            )
        if isinstance(other, (LineString, Polygon, Envelope)):
            if self.intersects(other):
                return 0.0
            boundary = LineString(list(self.ring) + [self.ring[0]])
            if isinstance(other, Envelope):
                return boundary.distance_to(other)
            if isinstance(other, Polygon):
                other_boundary = LineString(list(other.ring) + [other.ring[0]])
                return boundary.distance_to(other_boundary)
            return boundary.distance_to(other)
        return other.distance_to(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.ring == other.ring

    def __hash__(self) -> int:
        return hash(self.ring)

    def __repr__(self) -> str:
        return f"Polygon({len(self.ring)} vertices)"

    def __getstate__(self):
        return self.ring

    def __setstate__(self, state):
        object.__setattr__(self, "ring", state)
