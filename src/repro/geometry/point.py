"""Point geometry."""

from __future__ import annotations

import math

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope


class Point(Geometry):
    """A 2-d point.

    Coordinates are interpreted by convention as ``(x=lon, y=lat)`` for the
    geographic datasets but the geometry layer itself is unit-agnostic;
    haversine helpers live in :mod:`repro.geometry.distance`.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        if math.isnan(x) or math.isnan(y):
            raise ValueError("point coordinates must not be NaN")
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    @property
    def envelope(self) -> Envelope:
        """The minimum bounding rectangle."""
        return Envelope(self.x, self.y, self.x, self.y)

    @property
    def is_point(self) -> bool:
        """True when the MBR equals the geometry itself."""
        return True

    def centroid(self) -> "Point":
        """A representative central point."""
        return self

    def intersects(self, other: Geometry) -> bool:
        """True when the two geometries share any point."""
        if isinstance(other, Point):
            return self.x == other.x and self.y == other.y
        if isinstance(other, Envelope):
            return other.contains_point(self.x, self.y)
        return other.intersects(self)

    def distance_to(self, other: Geometry) -> float:
        """Minimum planar distance to the other geometry."""
        if isinstance(other, Point):
            return math.hypot(self.x - other.x, self.y - other.y)
        if isinstance(other, Envelope):
            dx = max(other.min_x - self.x, self.x - other.max_x, 0.0)
            dy = max(other.min_y - self.y, self.y - other.max_y, 0.0)
            return math.hypot(dx, dy)
        return other.distance_to(self)

    def as_tuple(self) -> tuple[float, float]:
        """The (x, y) coordinate pair."""
        return (self.x, self.y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"

    def __getstate__(self):
        return (self.x, self.y)

    def __setstate__(self, state):
        object.__setattr__(self, "x", state[0])
        object.__setattr__(self, "y", state[1])
