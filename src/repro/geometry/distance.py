"""Distance metrics and projections.

The paper's extractors mix two metric spaces: the planar space of whatever
coordinate system the data is in (used for index pruning and regular-grid
arithmetic) and great-circle meters (used for physical thresholds such as
"stay within 200 m for 10 min" and average speeds in km/h).  This module
holds both, plus the point-to-segment machinery needed by HMM map matching.
"""

from __future__ import annotations

import math

#: Mean Earth radius in meters (IUGG value), used by the haversine formula.
EARTH_RADIUS_METERS = 6_371_008.8

#: Meters spanned by one degree of latitude, constant to first order.
METERS_PER_DEGREE_LAT = EARTH_RADIUS_METERS * math.pi / 180.0


def meters_per_degree_lon(lat: float) -> float:
    """Meters spanned by one degree of longitude at the given latitude."""
    return METERS_PER_DEGREE_LAT * math.cos(math.radians(lat))


def euclidean_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar distance between two coordinate pairs."""
    return math.hypot(x1 - x2, y1 - y2)


def haversine_distance(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in meters between two (lon, lat) pairs."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    d_phi = phi2 - phi1
    d_lambda = math.radians(lon2 - lon1)
    a = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(d_lambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(a)))


def project_point_to_segment(
    px: float,
    py: float,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> tuple[float, float, float]:
    """Project point P onto segment AB.

    Returns ``(qx, qy, t)`` where Q is the closest point on the segment and
    ``t`` in ``[0, 1]`` is the normalized position of Q along AB.  Degenerate
    (zero-length) segments project onto A with ``t == 0``.
    """
    dx = bx - ax
    dy = by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return (ax, ay, 0.0)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    return (ax + t * dx, ay + t * dy, t)


def point_segment_distance(
    px: float,
    py: float,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> float:
    """Planar distance from point P to segment AB."""
    qx, qy, _ = project_point_to_segment(px, py, ax, ay, bx, by)
    return math.hypot(px - qx, py - qy)


def segments_intersect(
    p1: tuple[float, float],
    p2: tuple[float, float],
    p3: tuple[float, float],
    p4: tuple[float, float],
) -> bool:
    """Return True when segments p1p2 and p3p4 share at least one point.

    Uses the orientation test with collinear special-casing, which is exact
    for the rational inputs produced by our synthetic generators and robust
    enough for the float inputs of the public datasets.
    """

    def orient(a: tuple[float, float], b: tuple[float, float], c: tuple[float, float]) -> int:
        val = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        if val > 0:
            return 1
        if val < 0:
            return -1
        return 0

    def on_segment(a: tuple[float, float], b: tuple[float, float], c: tuple[float, float]) -> bool:
        return (
            min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
            and min(a[1], b[1]) <= c[1] <= max(a[1], b[1])
        )

    o1 = orient(p1, p2, p3)
    o2 = orient(p1, p2, p4)
    o3 = orient(p3, p4, p1)
    o4 = orient(p3, p4, p2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(p1, p2, p3):
        return True
    if o2 == 0 and on_segment(p1, p2, p4):
        return True
    if o3 == 0 and on_segment(p3, p4, p1):
        return True
    if o4 == 0 and on_segment(p3, p4, p2):
        return True
    return False
