"""Abstract base class shared by every geometry type."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.geometry.envelope import Envelope
    from repro.geometry.point import Point


class Geometry(ABC):
    """Base class for all 2-d geometries.

    A geometry exposes exactly the operations the ST4ML pipeline needs:

    * ``envelope`` — the minimum bounding rectangle, used by every index
      (R-tree, quadtree, grid) and by the regular-structure conversion
      shortcut of the paper's Section 4.2;
    * ``intersects`` — the predicate driving selection and conversion;
    * ``distance_to`` — planar distance, used by extractors (stay points,
      companions) and by HMM map matching;
    * ``centroid`` — the representative coordinate used for STR sorting.
    """

    __slots__ = ()

    @property
    @abstractmethod
    def envelope(self) -> "Envelope":
        """Return the minimum bounding rectangle of this geometry."""

    @abstractmethod
    def intersects(self, other: "Geometry") -> bool:
        """Return ``True`` if this geometry shares any point with ``other``."""

    @abstractmethod
    def distance_to(self, other: "Geometry") -> float:
        """Return the minimum planar distance between the two geometries."""

    @abstractmethod
    def centroid(self) -> "Point":
        """Return a representative interior/central point."""

    @property
    def is_point(self) -> bool:
        """``True`` when the geometry's MBR equals the geometry itself.

        The paper's regular-structure conversion (Section 4.2) skips the
        exact intersection pass for such shapes; points and envelopes
        qualify.
        """
        return False
