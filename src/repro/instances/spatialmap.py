"""SpatialMap — ST data organized by spatial cells."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.instances.base import Entry
from repro.instances.collective import CollectiveInstance
from repro.temporal.duration import Duration

#: Placeholder duration for spatial-map cells: the temporal field is "not a
#: focus" for spatial maps (paper Section 3.2.1); conversions ignore it.
_PLACEHOLDER = Duration.instant(0.0)


class SpatialMap(CollectiveInstance):
    """Cells are explicit geometries: grid squares, road segments, districts."""

    __slots__ = ()

    # -- construction -----------------------------------------------------------

    @classmethod
    def of_geometries(
        cls,
        geometries: Sequence[Geometry],
        value_factory: Callable[[], Any] = list,
        temporal: Duration | None = None,
        data: Any = None,
    ) -> "SpatialMap":
        """Empty spatial map over explicit cell geometries."""
        if not geometries:
            raise ValueError("a spatial map needs at least one cell")
        dur = temporal or _PLACEHOLDER
        return cls([Entry(g, dur, value_factory()) for g in geometries], data)

    @classmethod
    def regular(
        cls,
        extent: Envelope,
        nx: int,
        ny: int,
        value_factory: Callable[[], Any] = list,
        data: Any = None,
    ) -> "SpatialMap":
        """An ``nx * ny`` grid of envelope cells densely tiling ``extent`` —
        eligible for the analytic conversion shortcut of Section 4.2.

        Cell order is row-major matching :meth:`Envelope.split`.
        """
        return cls.of_geometries(extent.split(nx, ny), value_factory, data=data)

    # -- accessors ---------------------------------------------------------------

    def geometries(self) -> list[Geometry]:
        """The cell geometries, in order."""
        return [e.spatial for e in self.entries]

    def cell_of_point(self, x: float, y: float) -> int | None:
        """Index of the first cell containing the point, else None."""
        for i, e in enumerate(self.entries):
            geom = e.spatial
            if isinstance(geom, Envelope):
                if geom.contains_point(x, y):
                    return i
            else:
                from repro.geometry.point import Point

                if geom.intersects(Point(x, y)):
                    return i
        return None

    def __repr__(self) -> str:
        return f"SpatialMap(cells={len(self.entries)}, data={self.data!r})"
