"""TimeSeries — ST data organized by time slots."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.point import Point
from repro.instances.base import Entry
from repro.instances.collective import CollectiveInstance
from repro.temporal.duration import Duration
from repro.temporal.windows import tumbling_windows

#: Placeholder geometry for time-series cells: the paper notes the spatial
#: field of a time series "is not a focus"; conversions never consult it.
_PLACEHOLDER = Point(0.0, 0.0)


class TimeSeries(CollectiveInstance):
    """Cells are consecutive time slots; values hold whatever falls in them."""

    __slots__ = ()

    def __init__(self, entries, data: Any = None):
        entries = tuple(entries)
        for prev, cur in zip(entries, entries[1:]):
            if cur.temporal.start < prev.temporal.start:
                raise ValueError("time-series slots must be time-ordered")
        super().__init__(entries, data)

    # -- construction -----------------------------------------------------------

    @classmethod
    def of_slots(
        cls,
        slots: Sequence[Duration],
        value_factory: Callable[[], Any] = list,
        spatial: Geometry | None = None,
        data: Any = None,
    ) -> "TimeSeries":
        """Empty time series over explicit slots."""
        geom = spatial or _PLACEHOLDER
        return cls([Entry(geom, slot, value_factory()) for slot in slots], data)

    @classmethod
    def regular(
        cls,
        extent: Duration,
        slot_seconds: float,
        value_factory: Callable[[], Any] = list,
        data: Any = None,
    ) -> "TimeSeries":
        """Regular (equal, dense) slots tiling ``extent`` — eligible for the
        analytic conversion shortcut of Section 4.2."""
        return cls.of_slots(
            tumbling_windows(extent, slot_seconds), value_factory, data=data
        )

    # -- accessors ---------------------------------------------------------------

    def slots(self) -> list[Duration]:
        """The time slots, in order."""
        return [e.temporal for e in self.entries]

    def slot_of(self, t: float) -> int | None:
        """Index of the slot containing ``t`` (first match), else None."""
        for i, e in enumerate(self.entries):
            if e.temporal.contains(t):
                return i
        return None

    def __repr__(self) -> str:
        return f"TimeSeries(slots={len(self.entries)}, data={self.data!r})"
