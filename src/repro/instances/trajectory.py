"""Trajectory — time-ordered point sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.geometry.distance import haversine_distance
from repro.geometry.point import Point
from repro.instances.base import Entry, Instance
from repro.temporal.duration import Duration


@dataclass(frozen=True)
class TrajectoryPoint:
    """A convenience record for one sojourn point: (lon, lat, t, value)."""

    lon: float
    lat: float
    t: float
    value: Any = None


class Trajectory(Instance):
    """A sequence of ST points sorted by time (paper Section 3.2.1).

    Entries are restricted to point geometries and must be
    non-time-decreasing; the constructor enforces both so every downstream
    computation (speed, sliding windows, map matching) can rely on the
    invariant.  ``data`` conventionally carries the trip id.
    """

    __slots__ = ()

    is_singular = True

    def __init__(self, entries: Sequence[Entry], data: Any = None):
        entries = tuple(entries)
        for e in entries:
            if not isinstance(e.spatial, Point):
                raise TypeError("trajectory entries must have point geometries")
        for prev, cur in zip(entries, entries[1:]):
            if cur.temporal.start < prev.temporal.start:
                raise ValueError("trajectory entries must be sorted by time")
        super().__init__(entries, data)

    # -- construction -----------------------------------------------------------

    @classmethod
    def of_points(
        cls,
        points: Sequence[TrajectoryPoint] | Sequence[tuple],
        data: Any = None,
        sort: bool = False,
    ) -> "Trajectory":
        """Build from ``TrajectoryPoint`` records or (lon, lat, t[, value]) tuples."""
        normalized: list[TrajectoryPoint] = []
        for p in points:
            if isinstance(p, TrajectoryPoint):
                normalized.append(p)
            else:
                lon, lat, t = p[0], p[1], p[2]
                value = p[3] if len(p) > 3 else None
                normalized.append(TrajectoryPoint(lon, lat, t, value))
        if sort:
            normalized.sort(key=lambda p: p.t)
        entries = [
            Entry(Point(p.lon, p.lat), Duration.instant(p.t), p.value)
            for p in normalized
        ]
        return cls(entries, data)

    # -- accessors ----------------------------------------------------------------

    def points(self) -> list[TrajectoryPoint]:
        """The entries as TrajectoryPoint records."""
        return [
            TrajectoryPoint(e.spatial.x, e.spatial.y, e.temporal.start, e.value)
            for e in self.entries
        ]

    def consecutive(self) -> Iterator[tuple[Entry, Entry]]:
        """Sliding pairs of consecutive entries."""
        for i in range(len(self.entries) - 1):
            yield (self.entries[i], self.entries[i + 1])

    # -- derived measures --------------------------------------------------------------

    def length_meters(self) -> float:
        """Great-circle path length (coordinates are lon/lat)."""
        return sum(
            haversine_distance(a.spatial.x, a.spatial.y, b.spatial.x, b.spatial.y)
            for a, b in self.consecutive()
        )

    def duration_seconds(self) -> float:
        """Elapsed time from first to last entry."""
        return self.temporal_extent.length

    def average_speed_ms(self) -> float:
        """Mean speed in meters/second; 0 for zero-duration trajectories."""
        elapsed = self.duration_seconds()
        if elapsed <= 0:
            return 0.0
        return self.length_meters() / elapsed

    def average_speed_kmh(self) -> float:
        """Mean speed in km/h."""
        return self.average_speed_ms() * 3.6

    def segment_speeds_ms(self) -> list[float]:
        """Per-segment speeds; zero-duration segments yield inf-free 0.0."""
        speeds = []
        for a, b in self.consecutive():
            dt = b.temporal.start - a.temporal.start
            d = haversine_distance(a.spatial.x, a.spatial.y, b.spatial.x, b.spatial.y)
            speeds.append(d / dt if dt > 0 else 0.0)
        return speeds

    def sub_trajectory(self, duration: Duration) -> "Trajectory | None":
        """Entries whose timestamps fall in ``duration``; None if fewer than one."""
        kept = [e for e in self.entries if duration.intersects(e.temporal)]
        if not kept:
            return None
        return Trajectory(kept, self.data)

    def resampled(self, interval: float) -> "Trajectory":
        """Linear-interpolation resample at a fixed time interval.

        Used by dataset enlargement and by the flow-inference example; the
        first and last original points are always retained.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        pts = self.points()
        if len(pts) < 2:
            return self
        out = [pts[0]]
        t = pts[0].t + interval
        i = 0
        while t < pts[-1].t:
            while pts[i + 1].t < t:
                i += 1
            a, b = pts[i], pts[i + 1]
            frac = (t - a.t) / (b.t - a.t) if b.t > a.t else 0.0
            out.append(
                TrajectoryPoint(
                    a.lon + frac * (b.lon - a.lon),
                    a.lat + frac * (b.lat - a.lat),
                    t,
                    a.value,
                )
            )
            t += interval
        out.append(pts[-1])
        return Trajectory.of_points(out, self.data)

    def __repr__(self) -> str:
        return (
            f"Trajectory(points={len(self.entries)}, data={self.data!r}, "
            f"span={self.duration_seconds():.0f}s)"
        )
