"""Event — the atomic singular instance."""

from __future__ import annotations

from typing import Any

from repro.geometry.base import Geometry
from repro.geometry.point import Point
from repro.instances.base import Entry, Instance
from repro.temporal.duration import Duration


class Event(Instance):
    """A single geometry with a single duration (paper: entry count = 1).

    The typical case — a taxi pick-up, a check-in, an air-quality sample —
    is a point with an instant, built via :meth:`of_point`.  ``data``
    conventionally carries the record id or an attribute dict.
    """

    __slots__ = ()

    is_singular = True

    def __init__(self, spatial: Geometry, temporal: Duration, value: Any = None, data: Any = None):
        super().__init__([Entry(spatial, temporal, value)], data)

    @classmethod
    def of_point(
        cls,
        lon: float,
        lat: float,
        t: float,
        value: Any = None,
        data: Any = None,
    ) -> "Event":
        """The common point-at-instant event."""
        return cls(Point(lon, lat), Duration.instant(t), value, data)

    @property
    def entry(self) -> Entry:
        """The single entry."""
        return self.entries[0]

    @property
    def spatial(self) -> Geometry:
        """The single entry's geometry."""
        return self.entries[0].spatial

    @property
    def temporal(self) -> Duration:
        """The single entry's duration."""
        return self.entries[0].temporal

    @property
    def value(self) -> Any:
        """The single entry's value field."""
        return self.entries[0].value

    def _replace(self, entries, data):
        entries = tuple(entries)
        if len(entries) != 1:
            raise ValueError("an event must keep exactly one entry")
        e = entries[0]
        clone = Event(e.spatial, e.temporal, e.value, data)
        clone.dup_primary = self.dup_primary
        return clone

    def __repr__(self) -> str:
        return f"Event({self.spatial!r}, {self.temporal!r}, data={self.data!r})"
