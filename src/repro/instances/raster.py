"""Raster — geometries with temporal depth."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.instances.base import Entry
from repro.instances.collective import CollectiveInstance
from repro.temporal.duration import Duration
from repro.temporal.windows import tumbling_windows


class Raster(CollectiveInstance):
    """Cells are (geometry, duration) pairs — both ST fields significant.

    The paper's running example is a city divided into districts with
    one-hour temporal slots; a raster's cells carry both the spatial and
    the temporal boundary and both are used during allocation.
    """

    __slots__ = ()

    # -- construction -----------------------------------------------------------

    @classmethod
    def of_cells(
        cls,
        cells: Sequence[tuple[Geometry, Duration]],
        value_factory: Callable[[], Any] = list,
        data: Any = None,
    ) -> "Raster":
        """Empty raster over explicit (geometry, duration) cells."""
        if not cells:
            raise ValueError("a raster needs at least one cell")
        return cls([Entry(g, d, value_factory()) for g, d in cells], data)

    @classmethod
    def of_product(
        cls,
        geometries: Sequence[Geometry],
        durations: Sequence[Duration],
        value_factory: Callable[[], Any] = list,
        data: Any = None,
    ) -> "Raster":
        """The cross product of spatial cells and temporal slots.

        Cell order is geometry-major: cell ``i * len(durations) + j`` is
        (geometry i, duration j) — the layout the raster→spatial-map and
        raster→time-series conversions rely on.
        """
        cells = [(g, d) for g in geometries for d in durations]
        return cls.of_cells(cells, value_factory, data)

    @classmethod
    def regular(
        cls,
        extent: Envelope,
        duration: Duration,
        nx: int,
        ny: int,
        nt: int,
        value_factory: Callable[[], Any] = list,
        data: Any = None,
    ) -> "Raster":
        """A dense regular ``nx * ny * nt`` raster — eligible for the
        analytic conversion shortcut of Section 4.2.

        Cell order is spatial-row-major then temporal, matching
        :meth:`of_product` applied to ``extent.split(nx, ny)`` and
        ``duration.split(nt)``.
        """
        return cls.of_product(
            extent.split(nx, ny),
            tumbling_windows(duration, duration.length / nt),
            value_factory,
            data,
        )

    # -- accessors ---------------------------------------------------------------

    def cells(self) -> list[tuple[Geometry, Duration]]:
        """The (geometry, duration) cells, in order."""
        return [(e.spatial, e.temporal) for e in self.entries]

    def spatial_cells(self) -> list[Geometry]:
        """Distinct geometries in first-appearance order."""
        seen: list[Geometry] = []
        for e in self.entries:
            if e.spatial not in seen:
                seen.append(e.spatial)
        return seen

    def temporal_slots(self) -> list[Duration]:
        """Distinct durations in first-appearance order."""
        seen: list[Duration] = []
        for e in self.entries:
            if e.temporal not in seen:
                seen.append(e.temporal)
        return seen

    def __repr__(self) -> str:
        return f"Raster(cells={len(self.entries)}, data={self.data!r})"
