"""The five ST instances (paper Section 3.2.1).

Every piece of ST data in the system is an :class:`Instance`: an array of
:class:`Entry` objects (each a geometry + duration + value) plus an
instance-level ``data`` field.  The five concrete instances split into two
categories that drive the conversion matrix of Section 3.2.2:

singular (one real-world record per instance)
    :class:`Event` — one entry;
    :class:`Trajectory` — time-ordered point entries.

collective (one structure of parallel cells per instance)
    :class:`TimeSeries` — cells are time slots;
    :class:`SpatialMap` — cells are geometries;
    :class:`Raster` — cells are (geometry, duration) pairs.
"""

from repro.instances.base import Entry, Instance
from repro.instances.event import Event
from repro.instances.trajectory import Trajectory, TrajectoryPoint
from repro.instances.timeseries import TimeSeries
from repro.instances.spatialmap import SpatialMap
from repro.instances.raster import Raster

__all__ = [
    "Entry",
    "Instance",
    "Event",
    "Trajectory",
    "TrajectoryPoint",
    "TimeSeries",
    "SpatialMap",
    "Raster",
]
