"""``Entry`` and the ``Instance`` base class.

Mirrors the Scala definitions of Section 3.2.1::

    class Entry[S <: Geometry, V](spatial: S, temporal: Duration, value: V)
    class Instance[S <: Geometry, V, D](entries: Array[Entry[S, V]], data: D)

Python being unityped, the S/V/D parameters become documentation-level
contracts enforced where they matter (e.g. a trajectory's entries must be
point-shaped and time-ordered).
"""

from __future__ import annotations

import hashlib
import math
import pickle
from typing import Any, Callable, Iterable, Sequence

from repro.geometry.base import Geometry
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.index.boxes import STBox
from repro.temporal.duration import Duration


class Entry:
    """One (geometry, duration, value) triple inside an instance."""

    __slots__ = ("spatial", "temporal", "value")

    def __init__(self, spatial: Geometry, temporal: Duration, value: Any = None):
        if not isinstance(spatial, Geometry):
            raise TypeError(f"spatial must be a Geometry, got {type(spatial).__name__}")
        if not isinstance(temporal, Duration):
            raise TypeError(
                f"temporal must be a Duration, got {type(temporal).__name__}"
            )
        self.spatial = spatial
        self.temporal = temporal
        self.value = value

    def with_value(self, value: Any) -> "Entry":
        """Copy with a replaced value field."""
        return Entry(self.spatial, self.temporal, value)

    def st_box(self) -> STBox:
        """The (x, y, t) bounding box."""
        return STBox.from_st(self.spatial.envelope, self.temporal)

    def intersects(self, spatial: Envelope | Geometry, temporal: Duration) -> bool:
        """True when the two geometries share any point."""
        return self.temporal.intersects(temporal) and self.spatial.intersects(
            spatial if isinstance(spatial, Geometry) else spatial
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return (
            self.spatial == other.spatial
            and self.temporal == other.temporal
            and self.value == other.value
        )

    def __repr__(self) -> str:
        return f"Entry({self.spatial!r}, {self.temporal!r}, value={self.value!r})"


class Instance:
    """Base class of the five ST instances.

    An instance offers uniform access to its ST extent (for indexing and
    selection) and the ``map_data`` "syntactic sugar" the paper gives
    application programmers for manipulating the data field in place.
    """

    __slots__ = ("entries", "data", "dup_primary")

    #: Overridden by subclasses; singular instances are atomic records,
    #: collective instances are structures of parallel cells.
    is_singular = True

    def __init__(self, entries: Sequence[Entry], data: Any = None):
        entries = tuple(entries)
        if not entries:
            raise ValueError(f"{type(self).__name__} needs at least one entry")
        self.entries = entries
        self.data = data
        # True on the original copy of an instance; duplicate-mode
        # partitioning (Algorithm 1's ``duplicate`` flag) marks the extra
        # per-partition replicas False so aggregate consumers can count
        # each instance exactly once while local-neighborhood consumers
        # (companion search) still see every copy.  Excluded from ``__eq__``:
        # a replica *is* its original, value-wise.
        self.dup_primary = True

    # -- ST extent -----------------------------------------------------------

    @property
    def spatial_extent(self) -> Envelope:
        """MBR of all entry geometries."""
        return Envelope.merge_all(e.spatial.envelope for e in self.entries)

    @property
    def temporal_extent(self) -> Duration:
        """Smallest duration covering all entry durations."""
        return Duration.merge_all(e.temporal for e in self.entries)

    def st_bounds(self) -> tuple[float, float, float, float, float, float]:
        """``(xmin, ymin, tmin, xmax, ymax, tmax)`` as plain floats.

        Exactly the values of ``spatial_extent``/``temporal_extent``, but
        without materializing an Envelope + Duration per call — the
        columnar extraction loops run this once per instance, where those
        allocations would dominate the whole vectorized pass.
        """
        xmin = ymin = tmin = math.inf
        xmax = ymax = tmax = -math.inf
        for e in self.entries:
            g = e.spatial
            if type(g) is Point:
                x = g.x
                y = g.y
                if x < xmin:
                    xmin = x
                if x > xmax:
                    xmax = x
                if y < ymin:
                    ymin = y
                if y > ymax:
                    ymax = y
            else:
                env = g.envelope
                if env.min_x < xmin:
                    xmin = env.min_x
                if env.max_x > xmax:
                    xmax = env.max_x
                if env.min_y < ymin:
                    ymin = env.min_y
                if env.max_y > ymax:
                    ymax = env.max_y
            t = e.temporal
            if t.start < tmin:
                tmin = t.start
            if t.end > tmax:
                tmax = t.end
        return xmin, ymin, tmin, xmax, ymax, tmax

    def st_box(self) -> STBox:
        """The (x, y, t) bounding box."""
        return STBox.from_st(self.spatial_extent, self.temporal_extent)

    def intersects(self, spatial: Envelope, temporal: Duration) -> bool:
        """True when *any* entry intersects the given ST range.

        This is the selection predicate of Section 3.1: a trajectory
        qualifies if any of its points falls in the range, an event if its
        single entry does.
        """
        if not self.temporal_extent.intersects(temporal):
            return False
        if not self.spatial_extent.intersects_envelope(spatial):
            return False
        return any(
            e.temporal.intersects(temporal) and e.spatial.intersects(spatial)
            for e in self.entries
        )

    # -- functional sugar ---------------------------------------------------------

    def map_data(self, f: Callable[[Any], Any]) -> "Instance":
        """Transform the data field, keeping entries unchanged (paper §3.2.2)."""
        return self._replace(entries=self.entries, data=f(self.data))

    def map_entries(self, f: Callable[[Entry], Entry]) -> "Instance":
        """Copy with ``f`` applied to each entry."""
        return self._replace(entries=tuple(f(e) for e in self.entries), data=self.data)

    def map_values(self, f: Callable[[Any], Any]) -> "Instance":
        """Transform every entry value, keeping geometry/duration unchanged."""
        return self._replace(
            entries=tuple(e.with_value(f(e.value)) for e in self.entries),
            data=self.data,
        )

    def _replace(self, entries: Iterable[Entry], data: Any) -> "Instance":
        """Rebuild the same concrete type with new contents."""
        clone = object.__new__(type(self))
        Instance.__init__(clone, tuple(entries), data)
        clone.dup_primary = self.dup_primary
        return clone

    def replica(self) -> "Instance":
        """A shallow copy marked as a non-primary duplicate.

        Used by duplicate-mode partitioning for the extra copies routed to
        secondary partitions; see :attr:`dup_primary`.
        """
        clone = self._replace(self.entries, self.data)
        clone.dup_primary = False
        return clone

    def identity(self) -> bytes:
        """A stable value-identity key, independent of the replica flag.

        Two instances that compare ``==`` produce the same digest (modulo
        pickle canonicalization of the ``data`` payload), so this is the
        natural ``distinct_by`` key for collapsing duplicate-mode replicas
        driver-side or across partitions.
        """
        payload = pickle.dumps(
            (
                type(self).__name__,
                tuple(
                    (
                        e.spatial.envelope.min_x,
                        e.spatial.envelope.min_y,
                        e.spatial.envelope.max_x,
                        e.spatial.envelope.max_y,
                        e.temporal.start,
                        e.temporal.end,
                        e.value,
                    )
                    for e in self.entries
                ),
                self.data,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return hashlib.blake2b(payload, digest_size=16).digest()

    # -- value semantics ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.entries == other.entries and self.data == other.data

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={len(self.entries)}, data={self.data!r})"
        )
