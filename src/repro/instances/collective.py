"""Shared behaviour of the collective instances.

A collective instance is a structure of parallel cells; each cell's value
usually holds either an aggregate or an array of singular instances
allocated into it by a converter.  The cell-level functional operators here
back the RDD extension APIs of Table 4 (``mapValue`` / ``mapValuePlus`` /
``mapData`` / ``mapDataPlus``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry.base import Geometry
from repro.instances.base import Entry, Instance
from repro.temporal.duration import Duration


class CollectiveInstance(Instance):
    """Base class for TimeSeries, SpatialMap, and Raster."""

    __slots__ = ()

    is_singular = False

    # -- cell access -------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of structure cells."""
        return len(self.entries)

    def cell_values(self) -> list:
        """Every cell's value, in cell order."""
        return [e.value for e in self.entries]

    def cell(self, index: int) -> Entry:
        """The entry of one cell."""
        return self.entries[index]

    # -- cell-level functional operators ------------------------------------------

    def map_value(self, f: Callable[[Any], Any]) -> "CollectiveInstance":
        """Transform each cell value (Table 4 ``mapValue``)."""
        return self.map_values(f)

    def map_value_plus(
        self, f: Callable[[Any, Geometry, Duration], Any]
    ) -> "CollectiveInstance":
        """Transform each cell value with its ST boundaries available
        (Table 4 ``mapValuePlus``)."""
        return self._replace(
            entries=tuple(
                e.with_value(f(e.value, e.spatial, e.temporal)) for e in self.entries
            ),
            data=self.data,
        )

    def map_data_plus(
        self, f: Callable[[Any, list[Geometry], list[Duration]], Any]
    ) -> "CollectiveInstance":
        """Transform the data field with the full structure boundaries
        (Table 4 ``mapDataPlus``)."""
        spatials = [e.spatial for e in self.entries]
        temporals = [e.temporal for e in self.entries]
        return self._replace(
            entries=self.entries, data=f(self.data, spatials, temporals)
        )

    # -- merging -------------------------------------------------------------------

    def merge_with(
        self,
        other: "CollectiveInstance",
        combine: Callable[[Any, Any], Any],
    ) -> "CollectiveInstance":
        """Cell-wise merge of two instances over the *same* structure.

        This is how per-executor partial structures are folded into the
        final collective instance after a broadcast-structure conversion.
        """
        if type(other) is not type(self):
            raise TypeError("can only merge collective instances of the same type")
        if len(other.entries) != len(self.entries):
            raise ValueError("cannot merge instances with different cell counts")
        merged = []
        for mine, theirs in zip(self.entries, other.entries):
            if mine.spatial != theirs.spatial or mine.temporal != theirs.temporal:
                raise ValueError("cannot merge instances over different structures")
            merged.append(mine.with_value(combine(mine.value, theirs.value)))
        return self._replace(entries=merged, data=self.data)

    def with_cell_values(self, values: Sequence) -> "CollectiveInstance":
        """Replace all cell values positionally."""
        if len(values) != len(self.entries):
            raise ValueError("value count must match cell count")
        return self._replace(
            entries=tuple(e.with_value(v) for e, v in zip(self.entries, values)),
            data=self.data,
        )
