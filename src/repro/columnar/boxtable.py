"""The BoxTable — structure-of-arrays ST extents for one partition.

A BoxTable is the columnar mirror of ``[inst.st_box() for inst in
partition]``: six float64 columns (``xmin/ymin/tmin/xmax/ymax/tmax``) plus
a row→instance indirection, extracted once per partition so every
subsequent box test over the partition is a handful of numpy comparisons
instead of a Python loop over ``STBox`` objects.

``box_exact`` additionally marks the rows whose MBR *is* their shape
(single-entry instances with Point or Envelope geometry): for those rows a
box-intersection hit is already the exact selection predicate, so the
scalar refinement pass can skip them entirely — the fallback contract of
the columnar path is "exact tests still run scalar, but only on the
vectorized candidate set, and only for rows that need them".
"""

from __future__ import annotations

from typing import Sequence

from repro._deps import require_numpy
from repro.geometry.envelope import Envelope
from repro.geometry.point import Point
from repro.index.boxes import STBox
from repro.instances.base import Instance


class BoxTable:
    """Columnar (x, y, t) extents of one partition's instances."""

    __slots__ = (
        "xmin", "ymin", "tmin", "xmax", "ymax", "tmax", "rows", "box_exact"
    )

    def __init__(self, xmin, ymin, tmin, xmax, ymax, tmax, rows, box_exact):
        self.xmin = xmin
        self.ymin = ymin
        self.tmin = tmin
        self.xmax = xmax
        self.ymax = ymax
        self.tmax = tmax
        #: Row → instance indirection (row i's columns describe rows[i]).
        self.rows = rows
        #: True where the instance's MBR equals its shape, so the box test
        #: is exact and no scalar refinement is needed.
        self.box_exact = box_exact

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table's own storage, in bytes.

        Counts the six extent columns, the ``box_exact`` mask, and the
        ``rows`` indirection list (8 bytes per reference).  The instances
        themselves are *not* counted: they belong to the partition, which
        outlives the table.  This is what byte-budgeted caches charge per
        entry.
        """
        columns = (self.xmin, self.ymin, self.tmin, self.xmax, self.ymax, self.tmax)
        return sum(int(c.nbytes) for c in columns) + int(self.box_exact.nbytes) + 8 * len(self.rows)

    @classmethod
    def from_instances(cls, instances: Sequence[Instance]) -> "BoxTable":
        """Extract the six extent columns in one pass over the partition."""
        np = require_numpy("repro.columnar.BoxTable")
        n = len(instances)
        xmin = np.empty(n, dtype=np.float64)
        ymin = np.empty(n, dtype=np.float64)
        tmin = np.empty(n, dtype=np.float64)
        xmax = np.empty(n, dtype=np.float64)
        ymax = np.empty(n, dtype=np.float64)
        tmax = np.empty(n, dtype=np.float64)
        box_exact = np.zeros(n, dtype=bool)
        rows = list(instances)
        for i, inst in enumerate(rows):
            xmin[i], ymin[i], tmin[i], xmax[i], ymax[i], tmax[i] = inst.st_bounds()
            entries = inst.entries
            box_exact[i] = len(entries) == 1 and isinstance(
                entries[0].spatial, (Point, Envelope)
            )
        return cls(xmin, ymin, tmin, xmax, ymax, tmax, rows, box_exact)

    # -- kernels ------------------------------------------------------------------

    def intersects_box(self, box: STBox):
        """Vectorized closed-interval ST-range predicate: one bool per row.

        Mirrors ``STBox.intersects`` (closed on every side), so a query
        value exactly on a row's boundary matches — the same semantics the
        scalar selection filter and the metadata pruner share.
        """
        if box.ndim != 3:
            raise ValueError("BoxTable queries need a 3-d (x, y, t) box")
        (qx0, qy0, qt0), (qx1, qy1, qt1) = box.mins, box.maxs
        return (
            (self.xmin <= qx1)
            & (self.xmax >= qx0)
            & (self.ymin <= qy1)
            & (self.ymax >= qy0)
            & (self.tmin <= qt1)
            & (self.tmax >= qt0)
        )

    def candidate_rows(self, box: STBox):
        """Sorted row indices whose boxes intersect the query box."""
        np = require_numpy("repro.columnar.BoxTable")
        return np.nonzero(self.intersects_box(box))[0]

    def coords(self):
        """(mins, maxs) as two (n, 3) arrays in (x, y, t) order."""
        np = require_numpy("repro.columnar.BoxTable")
        mins = np.stack((self.xmin, self.ymin, self.tmin), axis=1)
        maxs = np.stack((self.xmax, self.ymax, self.tmax), axis=1)
        return mins, maxs


def intersects_box(table: BoxTable, box: STBox):
    """Module-level alias of :meth:`BoxTable.intersects_box`."""
    return table.intersects_box(box)
