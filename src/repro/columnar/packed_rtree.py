"""STR bulk-loaded R-tree packed into per-level coordinate arrays.

The scalar :class:`~repro.index.rtree.RTree` walks a tree of Python node
objects; this variant stores each level's MBRs as ``(m, d)`` min/max
arrays plus child-range arrays, so a query descends the tree with one
vectorized intersection test per level instead of one Python call per
node.  Packing uses the same Sort-Tile-Recursive slab recursion as the
scalar tree (Leutenegger et al.), implemented over ``argsort`` index
arrays.

Candidate *sets* are identical to the scalar tree's for any query — MBR
intersection is deterministic — but probe counts (``node_tests`` /
``entry_tests``) depend on tree shape and differ between the two
implementations; parity suites compare ``stats.candidates``, which both
trees count identically.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro._deps import require_numpy
from repro.index.boxes import STBox
from repro.index.rtree import RTreeStats


def _str_order(np, centers, capacity: int):
    """STR packing: (row order, leaf group start offsets) for ``centers``.

    Mirrors the slab recursion of ``RTree._str_tile``: sort by the current
    dimension, split into ``ceil(n_groups ** (1/(d-dim)))`` slabs, recurse
    into the next dimension per slab.
    """
    ndim = centers.shape[1]
    groups: list = []

    def tile(idx, dim: int) -> None:
        n = len(idx)
        if n <= capacity:
            groups.append(idx)
            return
        if dim >= ndim:
            for i in range(0, n, capacity):
                groups.append(idx[i : i + capacity])
            return
        n_groups = math.ceil(n / capacity)
        n_slabs = max(1, math.ceil(n_groups ** (1.0 / (ndim - dim))))
        slab_size = math.ceil(n / n_slabs)
        idx = idx[np.argsort(centers[idx, dim], kind="stable")]
        for i in range(0, n, slab_size):
            tile(idx[i : i + slab_size], dim + 1)

    tile(np.arange(len(centers), dtype=np.int64), 0)
    order = np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
    starts = np.zeros(len(groups), dtype=np.int64)
    if groups:
        sizes = np.array([len(g) for g in groups], dtype=np.int64)
        starts[1:] = np.cumsum(sizes)[:-1]
    return order, starts


def _concat_ranges(np, starts, ends):
    """Concatenate ``arange(s, e)`` for each (s, e) pair, vectorized."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    offsets[1:] = np.cumsum(counts)[:-1]
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


class _Level:
    """One tree level: node MBR arrays + child ranges into the level below."""

    __slots__ = ("mins", "maxs", "starts", "ends")

    def __init__(self, mins, maxs, starts, ends):
        self.mins = mins
        self.maxs = maxs
        self.starts = starts
        self.ends = ends


class PackedRTree:
    """A static R-tree over ``(n, d)`` box arrays, queried level-at-a-time.

    ``query_rows`` returns *row indices* into the arrays the tree was
    built from (callers keep their own payload indirection, e.g. a
    :class:`~repro.columnar.boxtable.BoxTable`'s ``rows`` list).
    """

    def __init__(self, mins, maxs, capacity: int = 16):
        np = require_numpy("repro.columnar.PackedRTree")
        if capacity < 2:
            raise ValueError("node capacity must be at least 2")
        mins = np.asarray(mins, dtype=np.float64)
        maxs = np.asarray(maxs, dtype=np.float64)
        if mins.shape != maxs.shape or mins.ndim != 2:
            raise ValueError("mins/maxs must be matching (n, d) arrays")
        self._np = np
        self._size, self._ndim = mins.shape
        self._capacity = capacity
        self.stats = RTreeStats()
        if self._size == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._emins = mins
            self._emaxs = maxs
            self._levels: list[_Level] = []
            return
        order, starts = _str_order(np, (mins + maxs) / 2.0, capacity)
        self._order = order
        # Entry arrays reordered into packed (leaf-contiguous) position.
        self._emins = mins[order]
        self._emaxs = maxs[order]
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = self._size
        levels = [
            _Level(
                np.minimum.reduceat(self._emins, starts, axis=0),
                np.maximum.reduceat(self._emaxs, starts, axis=0),
                starts,
                ends,
            )
        ]
        while len(levels[-1].mins) > 1:
            level = levels[-1]
            order, starts = _str_order(
                np, (level.mins + level.maxs) / 2.0, capacity
            )
            # Permute this level so each parent's children are contiguous;
            # the per-node child ranges travel with the permutation.
            levels[-1] = _Level(
                level.mins[order], level.maxs[order],
                level.starts[order], level.ends[order],
            )
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:]
            ends[-1] = len(order)
            levels.append(
                _Level(
                    np.minimum.reduceat(levels[-1].mins, starts, axis=0),
                    np.maximum.reduceat(levels[-1].maxs, starts, axis=0),
                    starts,
                    ends,
                )
            )
        self._levels = levels

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._ndim

    @property
    def height(self) -> int:
        """Number of levels; 0 for an empty tree."""
        return len(self._levels)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed arrays, in bytes.

        Sums the entry arrays (reordered mins/maxs plus the row-order
        permutation) and every level's MBR + child-range arrays — the
        whole tree is arrays, so this is exact, and it is the per-entry
        charge byte-budgeted index caches account for.
        """
        total = int(self._order.nbytes) + int(self._emins.nbytes) + int(self._emaxs.nbytes)
        for level in self._levels:
            total += sum(
                int(a.nbytes)
                for a in (level.mins, level.maxs, level.starts, level.ends)
            )
        return total

    # -- queries ------------------------------------------------------------------

    def query_rows(self, box: STBox):
        """Sorted row indices whose boxes intersect ``box``."""
        if self._size and box.ndim != self._ndim:
            raise ValueError(
                f"query box has {box.ndim} dimensions, index has {self._ndim}"
            )
        np = self._np
        return self.query_coords(
            np.asarray(box.mins, dtype=np.float64),
            np.asarray(box.maxs, dtype=np.float64),
        )

    def query_coords(self, qmin, qmax):
        """:meth:`query_rows` on raw ``(d,)`` coordinate arrays (no STBox)."""
        np = self._np
        self.stats.queries += 1
        if self._size == 0:
            return np.empty(0, dtype=np.int64)
        sel = np.arange(len(self._levels[-1].mins), dtype=np.int64)
        for li in range(len(self._levels) - 1, 0, -1):
            level = self._levels[li]
            self.stats.node_tests += len(sel)
            hit = np.all(
                (level.mins[sel] <= qmax) & (level.maxs[sel] >= qmin), axis=1
            )
            nodes = sel[hit]
            sel = _concat_ranges(np, level.starts[nodes], level.ends[nodes])
        leaves = self._levels[0]
        self.stats.node_tests += len(sel)
        hit = np.all(
            (leaves.mins[sel] <= qmax) & (leaves.maxs[sel] >= qmin), axis=1
        )
        nodes = sel[hit]
        pos = _concat_ranges(np, leaves.starts[nodes], leaves.ends[nodes])
        self.stats.entry_tests += len(pos)
        emask = np.all(
            (self._emins[pos] <= qmax) & (self._emaxs[pos] >= qmin), axis=1
        )
        rows = self._order[pos[emask]]
        rows.sort()
        self.stats.candidates += len(rows)
        return rows

    def query_batch(self, boxes: Sequence[STBox]) -> list:
        """``query_rows`` for many boxes (one row-index array per box)."""
        return [self.query_rows(box) for box in boxes]

    # -- pickling: the numpy module handle must not travel -------------------------

    def __getstate__(self) -> dict:
        return {
            slot: getattr(self, slot)
            for slot in (
                "_size", "_ndim", "_capacity", "stats",
                "_order", "_emins", "_emaxs", "_levels",
            )
        }

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._np = require_numpy("repro.columnar.PackedRTree")

    def __repr__(self) -> str:
        return (
            f"PackedRTree(size={self._size}, ndim={self._ndim}, "
            f"height={self.height}, capacity={self._capacity})"
        )


def packed_tree_from_boxes(boxes: Sequence[STBox], capacity: int = 16) -> PackedRTree:
    """Build a PackedRTree from a sequence of same-dimension ``STBox``es."""
    np = require_numpy("repro.columnar.PackedRTree")
    if not boxes:
        return PackedRTree(
            np.empty((0, 1), dtype=np.float64),
            np.empty((0, 1), dtype=np.float64),
            capacity,
        )
    mins = np.array([b.mins for b in boxes], dtype=np.float64)
    maxs = np.array([b.maxs for b in boxes], dtype=np.float64)
    return PackedRTree(mins, maxs, capacity)
