"""Per-partition selection-index cache, keyed on partition identity.

The selector builds its per-partition index "on the fly" (Section 3.1) —
which meant a fresh R-tree per ``select()`` call even when the same
materialized partition is queried repeatedly in one pipeline.  This cache
keys indexes on the partition *list object* itself:

* the key is ``id(partition)`` and the entry keeps a strong reference to
  the list, so a hit is validated with ``entry.partition is partition`` —
  an ``id()`` reused after garbage collection can never alias a live
  entry;
* a repartition produces new list objects, so stale entries simply stop
  hitting; :func:`invalidate_partition_indexes` is additionally called on
  every repartition to release the strong references promptly (bounding
  memory, not correctness — a stale entry is unreachable, never wrong);
* the cache is a module-level singleton reached via in-function import
  from stage closures.  That keeps it out of the closure's captured cells
  (strict mode fingerprints captures before/after stages) and makes it
  naturally worker-local on the process backend: each worker re-imports
  the module and warms its own cache.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Callable, Hashable


class PartitionIndexCache:
    """Bounded LRU of per-partition indexes with identity validation."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._lock = Lock()
        self._entries: "OrderedDict[tuple, tuple[list, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self,
        partition: list,
        kind: Hashable,
        builder: Callable[[list], Any],
    ) -> tuple[Any, bool]:
        """Return ``(index, was_cached)`` for one partition and index kind.

        ``builder`` runs outside the lock; concurrent builders for the same
        key may race, in which case the last store wins (both values are
        equivalent — indexes are pure functions of the partition).
        """
        key = (id(partition), kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is partition:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1], True
        value = builder(partition)
        with self._lock:
            self.misses += 1
            self._entries[key] = (partition, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return value, False

    def clear(self) -> None:
        """Drop every entry (and the strong partition references)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide singleton shared by scalar and columnar selection paths.
_SELECTION_CACHE = PartitionIndexCache()


def selection_cache() -> PartitionIndexCache:
    """The process-wide per-partition selection-index cache."""
    return _SELECTION_CACHE


def invalidate_partition_indexes() -> None:
    """Drop all cached per-partition indexes (called on repartition)."""
    _SELECTION_CACHE.clear()


def partition_rtree(partition: list, capacity: int = 32):
    """The partition's scalar 3-d R-tree, cached: ``(tree, was_cached)``."""
    from repro.index.rtree import RTree

    def build(p: list):
        return RTree.build(((inst.st_box(), inst) for inst in p), capacity=capacity)

    return _SELECTION_CACHE.get_or_build(partition, ("rtree", capacity), build)


def partition_boxtable(partition: list):
    """The partition's BoxTable, cached: ``(table, was_cached)``."""
    from repro.columnar.boxtable import BoxTable

    return _SELECTION_CACHE.get_or_build(partition, "boxtable", BoxTable.from_instances)


def partition_packed_tree(partition: list, capacity: int = 32):
    """The partition's packed R-tree over its BoxTable, cached.

    Returns ``(table, tree, was_cached)`` where ``was_cached`` reflects the
    tree entry (the table may have been cached earlier by an unindexed
    selection).
    """
    from repro.columnar.packed_rtree import PackedRTree

    table, _ = partition_boxtable(partition)

    def build(_p: list):
        mins, maxs = table.coords()
        return PackedRTree(mins, maxs, capacity=capacity)

    tree, hit = _SELECTION_CACHE.get_or_build(partition, ("packed", capacity), build)
    return table, tree, hit
