"""Per-partition selection-index cache, keyed on partition identity.

The selector builds its per-partition index "on the fly" (Section 3.1) —
which meant a fresh R-tree per ``select()`` call even when the same
materialized partition is queried repeatedly in one pipeline.  This cache
keys indexes on the partition *list object* itself:

* the key is ``id(partition)`` and the entry keeps a strong reference to
  the list, so a hit is validated with ``entry.partition is partition`` —
  an ``id()`` reused after garbage collection can never alias a live
  entry;
* a repartition produces new list objects, so stale entries simply stop
  hitting; :func:`invalidate_partition_indexes` is additionally called on
  every repartition to release the strong references promptly (bounding
  memory, not correctness — a stale entry is unreachable, never wrong);
* the cache is a module-level singleton reached via in-function import
  from stage closures.  That keeps it out of the closure's captured cells
  (strict mode fingerprints captures before/after stages) and makes it
  naturally worker-local on the process backend: each worker re-imports
  the module and warms its own cache.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Callable, Hashable


#: Flat byte charge for cached values that do not report ``nbytes``.
_DEFAULT_ENTRY_COST = 256


def _value_nbytes(value: Any) -> int:
    """Byte charge for one cached index value.

    Every index the cache holds — :class:`~repro.columnar.boxtable.BoxTable`,
    :class:`~repro.columnar.packed_rtree.PackedRTree`, the scalar
    :class:`~repro.index.rtree.RTree` — reports its own footprint through
    an ``nbytes`` attribute; anything else is charged a small flat cost so
    the accounting never under-reports to zero.
    """
    size = getattr(value, "nbytes", None)
    try:
        return int(size) if size is not None else _DEFAULT_ENTRY_COST
    except (TypeError, ValueError):
        return _DEFAULT_ENTRY_COST


class PartitionIndexCache:
    """Bounded LRU of per-partition indexes with identity validation.

    Two eviction knobs compose (either may be the binding one):

    * ``capacity`` — maximum entry count, the original bound;
    * ``max_bytes`` — maximum summed :func:`_value_nbytes` of the cached
      values (``None`` means unbounded).  This is the knob that lets a
      long-lived process — the ``repro serve`` daemon above all — enforce
      a real memory budget rather than hoping 64 entries happen to fit.

    Entries are evicted least-recently-used until both bounds hold; the
    most recent entry is always kept, even when it alone exceeds
    ``max_bytes`` — a cache that refuses the index it just built would
    force an immediate rebuild on the very next query.
    """

    def __init__(self, capacity: int = 64, max_bytes: int | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        self._capacity = capacity
        self._max_bytes = max_bytes
        self._lock = Lock()
        self._entries: "OrderedDict[tuple, tuple[list, Any, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0

    @property
    def capacity(self) -> int:
        """Maximum entry count."""
        return self._capacity

    @property
    def max_bytes(self) -> int | None:
        """Byte budget for cached values (``None`` = unbounded)."""
        return self._max_bytes

    def configure(
        self, capacity: int | None = None, max_bytes: int | None | ellipsis = ...
    ) -> None:
        """Adjust the bounds in place (evicting immediately if needed).

        ``capacity=None`` leaves the count bound unchanged; ``max_bytes``
        uses ``...`` as the "unchanged" sentinel because ``None`` is a
        meaningful value (unbounded).
        """
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("cache capacity must be positive")
                self._capacity = capacity
            if max_bytes is not ...:
                if max_bytes is not None and max_bytes < 1:
                    raise ValueError("max_bytes must be positive (or None)")
                self._max_bytes = max_bytes
            self._evict_locked()

    def _evict_locked(self) -> None:
        while len(self._entries) > 1 and (
            len(self._entries) > self._capacity
            or (self._max_bytes is not None and self.bytes > self._max_bytes)
        ):
            _, (_, _, dropped) = self._entries.popitem(last=False)
            self.bytes -= dropped
            self.evictions += 1

    def get_or_build(
        self,
        partition: list,
        kind: Hashable,
        builder: Callable[[list], Any],
    ) -> tuple[Any, bool]:
        """Return ``(index, was_cached)`` for one partition and index kind.

        ``builder`` runs outside the lock; concurrent builders for the same
        key may race, in which case the last store wins (both values are
        equivalent — indexes are pure functions of the partition).
        """
        key = (id(partition), kind)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is partition:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[1], True
        value = builder(partition)
        size = _value_nbytes(value)
        with self._lock:
            self.misses += 1
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes -= previous[2]
            self._entries[key] = (partition, value, size)
            self.bytes += size
            self._evict_locked()
        return value, False

    def put(self, partition: list, kind: Hashable, value: Any) -> None:
        """Store a ready-made index for ``partition`` without building.

        The seeding entry point for indexes that arrive from outside the
        builder path — above all the mmapped BoxTables a v2 block hands
        back at decode time: the serve daemon plants them here so the
        first query over a freshly resident partition hits instead of
        re-extracting bounds instance-by-instance.  Counted as neither
        hit nor miss (no lookup happened).
        """
        key = (id(partition), kind)
        size = _value_nbytes(value)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes -= previous[2]
            self._entries[key] = (partition, value, size)
            self.bytes += size
            self._evict_locked()

    def clear(self) -> None:
        """Drop every entry (and the strong partition references)."""
        with self._lock:
            self._entries.clear()
            self.bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide singleton shared by scalar and columnar selection paths.
_SELECTION_CACHE = PartitionIndexCache()


def selection_cache() -> PartitionIndexCache:
    """The process-wide per-partition selection-index cache."""
    return _SELECTION_CACHE


def invalidate_partition_indexes() -> None:
    """Drop all cached per-partition indexes (called on repartition)."""
    _SELECTION_CACHE.clear()


def configure_selection_cache(
    capacity: int | None = None, max_bytes: int | None | ellipsis = ...
) -> PartitionIndexCache:
    """Rebound the process-wide selection-index cache; returns it.

    The ``repro serve`` daemon calls this at startup to put the shared
    index tier under an explicit byte budget.
    """
    _SELECTION_CACHE.configure(capacity=capacity, max_bytes=max_bytes)
    return _SELECTION_CACHE


def partition_rtree(partition: list, capacity: int = 32):
    """The partition's scalar 3-d R-tree, cached: ``(tree, was_cached)``."""
    from repro.index.rtree import RTree

    def build(p: list):
        return RTree.build(((inst.st_box(), inst) for inst in p), capacity=capacity)

    return _SELECTION_CACHE.get_or_build(partition, ("rtree", capacity), build)


def partition_boxtable(partition: list):
    """The partition's BoxTable, cached: ``(table, was_cached)``."""
    from repro.columnar.boxtable import BoxTable

    return _SELECTION_CACHE.get_or_build(partition, "boxtable", BoxTable.from_instances)


def seed_partition_boxtable(partition: list, table) -> None:
    """Plant a ready-made BoxTable for ``partition`` (v2 mmapped columns).

    Subsequent :func:`partition_boxtable` calls for the *same list object*
    hit immediately; :func:`partition_packed_tree` then builds its tree
    over the seeded (mmapped) coordinates rather than re-extracted ones.
    """
    _SELECTION_CACHE.put(partition, "boxtable", table)


def partition_packed_tree(partition: list, capacity: int = 32):
    """The partition's packed R-tree over its BoxTable, cached.

    Returns ``(table, tree, was_cached)`` where ``was_cached`` reflects the
    tree entry (the table may have been cached earlier by an unindexed
    selection).
    """
    from repro.columnar.packed_rtree import PackedRTree

    table, _ = partition_boxtable(partition)

    def build(_p: list):
        mins, maxs = table.coords()
        return PackedRTree(mins, maxs, capacity=capacity)

    tree, hit = _SELECTION_CACHE.get_or_build(partition, ("packed", capacity), build)
    return table, tree, hit
