"""Columnar fast path: structure-of-arrays kernels for the pipeline hot loops.

The scalar pipeline spends its time in per-object Python loops —
``STBox.intersects`` per instance during selection, per-node calls during
R-tree descent, per-instance partition-id assignment, per-cell loops
during singular→collective allocation.  This package mirrors those loops
as numpy kernels over a per-partition :class:`BoxTable` (six float64
extent columns plus a row→instance indirection):

* :meth:`BoxTable.intersects_box` — vectorized closed-interval ST-range
  predicate (the selection filter without an index);
* :class:`PackedRTree` — STR bulk-load packed into per-level MBR arrays,
  queried level-at-a-time (the selection filter with an index, and the
  irregular-structure allocation path);
* batched partition-id assignment (``Partitioner.assign_batch``) feeding
  ``RDD.shuffle_by_batch``;
* an analytic row→cell range kernel for regular structures
  (``Grid.candidate_ranges_batch``);
* extraction aggregation (:mod:`repro.columnar.aggregate`) — per-partition
  :class:`CellTable` partials built with scatter-add kernels and an
  :class:`AggSpec` per extractor, merged through ``RDD.tree_reduce``.

Everything is gated on numpy being importable (:func:`available`) and on
``use_columnar=True`` flags at the API surface; the scalar paths remain
the semantics reference and the automatic fallback.  Exact geometry tests
(LineString/Polygon containment, trajectory cell matching) always run
scalar — the kernels only shrink the candidate set they run on.
"""

from __future__ import annotations

from repro._deps import has_numpy
from repro.columnar.aggregate import (
    AggSpec,
    CellTable,
    CountSpec,
    FieldMeanSpec,
    PortionSpeedSpec,
    TransitSpec,
    WholeTrajSpeedSpec,
)
from repro.columnar.boxtable import BoxTable, intersects_box
from repro.columnar.cache import (
    PartitionIndexCache,
    configure_selection_cache,
    invalidate_partition_indexes,
    partition_boxtable,
    partition_packed_tree,
    partition_rtree,
    seed_partition_boxtable,
    selection_cache,
)
from repro.columnar.packed_rtree import PackedRTree, packed_tree_from_boxes


def available() -> bool:
    """True when the columnar kernels can run (numpy importable)."""
    return has_numpy()


def selection_index(partition: list, with_tree: bool, capacity: int = 32):
    """The partition's cached columnar selection index.

    Returns ``(table, tree, was_cached)``; ``tree`` is ``None`` when
    ``with_tree`` is false (plain BoxTable scan selection).
    """
    if with_tree:
        return partition_packed_tree(partition, capacity=capacity)
    table, hit = partition_boxtable(partition)
    return table, None, hit


__all__ = [
    "AggSpec",
    "BoxTable",
    "CellTable",
    "CountSpec",
    "FieldMeanSpec",
    "PackedRTree",
    "PartitionIndexCache",
    "PortionSpeedSpec",
    "TransitSpec",
    "WholeTrajSpeedSpec",
    "available",
    "configure_selection_cache",
    "intersects_box",
    "invalidate_partition_indexes",
    "packed_tree_from_boxes",
    "partition_boxtable",
    "partition_packed_tree",
    "partition_rtree",
    "seed_partition_boxtable",
    "selection_cache",
    "selection_index",
]
